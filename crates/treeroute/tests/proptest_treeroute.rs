//! Property-based tests for the three tree-routing schemes: exactness
//! of labeled routing, the Lemma 4 hit/miss guarantees, and the
//! Lemma 7 cost budget — on arbitrary random trees.

use graphkit::{dijkstra, Graph, NodeId, Tree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treeroute::cover_router::CoverTreeRouter;
use treeroute::labeled::LabeledTree;
use treeroute::laing::{ErrorReportingTree, SearchOutcome};
use treeroute::names::Naming;

/// Random tree with mixed topology: attach node i to a random earlier
/// node, with a "star bias" knob that concentrates attachments.
fn arb_tree() -> impl Strategy<Value = Graph> {
    (5usize..80, any::<u64>(), 0u8..3, 1u64..50).prop_map(|(n, seed, bias, wmax)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let mut b = graphkit::GraphBuilder::with_nodes(n);
        for i in 1..n {
            let parent = match bias {
                0 => rng.gen_range(0..i), // uniform recursive
                1 => 0,                   // star
                _ => i - 1,               // path
            };
            let w = rng.gen_range(1..=wmax);
            b.add_edge(NodeId(i as u32), NodeId(parent as u32), w);
        }
        b.build()
    })
}

fn rooted(g: &Graph, root: u32) -> Tree {
    let sp = dijkstra::dijkstra(g, NodeId(root));
    Tree::from_sssp(g, &sp, g.nodes())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Lemma 5: labeled routing is exact between all sampled pairs.
    #[test]
    fn labeled_routing_exact(g in arb_tree(), root_pick in any::<u32>()) {
        let root = root_pick % g.n() as u32;
        let lt = LabeledTree::new(rooted(&g, root));
        let m = lt.tree().size() as u32;
        for s in (0..m).step_by(3) {
            for t in (0..m).step_by(5) {
                let (path, cost) = lt.route(s, lt.label(t)).expect("in-tree");
                prop_assert_eq!(*path.last().unwrap(), t);
                prop_assert_eq!(cost, lt.tree().tree_distance(s, t));
            }
        }
    }

    /// Lemma 4(a): every tree node with name length ≤ j is found by a
    /// j-bounded search with stretch ≤ 2j−1.
    #[test]
    fn laing_hits_within_stretch(g in arb_tree(), k in 1usize..4, seed in any::<u64>()) {
        let ert = ErrorReportingTree::new(rooted(&g, 0), k, seed);
        let m = ert.labeled().tree().size();
        for rank in (0..m).step_by(2) {
            let t = ert.node_at_rank(rank);
            let level = ert.naming().level_of_rank(rank).max(1).min(k);
            let target = ert.labeled().tree().graph_id(t);
            let (outcome, _) = ert.search(target, level);
            match outcome {
                SearchOutcome::Found { cost, delivered_at } => {
                    prop_assert_eq!(delivered_at, t);
                    let depth = ert.labeled().tree().depth(t);
                    prop_assert!(cost <= ((2 * level as u64).saturating_sub(1)) * depth.max(1));
                }
                SearchOutcome::NotFound { .. } =>
                    prop_assert!(false, "rank {} missed at its own level", rank),
            }
        }
    }

    /// Lemma 4(b): absent ids always produce a negative response back
    /// at the root, within the (2j−2)·maxdepth bound.
    #[test]
    fn laing_misses_bounded(g in arb_tree(), k in 1usize..4, seed in any::<u64>()) {
        let ert = ErrorReportingTree::new(rooted(&g, 0), k, seed);
        for j in 1..=k {
            let (outcome, visited) = ert.search(NodeId(10_000_000), j);
            match outcome {
                SearchOutcome::Found { .. } =>
                    prop_assert!(false, "found an absent id"),
                SearchOutcome::NotFound { cost } => {
                    prop_assert_eq!(*visited.last().unwrap(), ert.labeled().tree().root());
                    let bound = ((2 * j as u64).saturating_sub(2))
                        * ert.max_depth_in_level(j - 1).max(1);
                    prop_assert!(cost <= bound, "miss cost {} > {}", cost, bound);
                }
            }
        }
    }

    /// Lemma 7: lookups (hits and misses, from every 7th source) stay
    /// within the 4·rad + 2k·maxE budget.
    #[test]
    fn cover_router_budget(g in arb_tree(), sigma in 2u64..6, seed in any::<u64>()) {
        let r = CoverTreeRouter::new(rooted(&g, 0), sigma, seed);
        let m = r.labeled().tree().size() as u32;
        let budget = r.cost_budget();
        for from in (0..m).step_by(7) {
            for t in (0..m).step_by(11) {
                let target = r.labeled().tree().graph_id(t);
                let (outcome, path) = r.route(from, target);
                prop_assert!(outcome.is_found());
                prop_assert!(outcome.cost() <= budget,
                    "cost {} > budget {}", outcome.cost(), budget);
                prop_assert_eq!(*path.last().unwrap(), t);
            }
            let (miss, mpath) = r.route(from, NodeId(20_000_000));
            prop_assert!(!miss.is_found());
            prop_assert!(miss.cost() <= budget);
            prop_assert_eq!(*mpath.last().unwrap(), from, "miss must return to source");
        }
    }

    /// Naming: rank ↔ name bijection for arbitrary alphabet sizes.
    #[test]
    fn naming_bijective(count in 1usize..500, sigma in 1u64..40) {
        let nm = Naming::new(count, sigma);
        for rank in 0..count {
            let name = nm.name_of_rank(rank);
            prop_assert_eq!(nm.rank_of_name(&name), Some(rank));
            prop_assert!(name.iter().all(|&d| (d as u64) < sigma));
        }
        // One past the end must not decode.
        let mut names: Vec<_> = (0..count).map(|r| nm.name_of_rank(r)).collect();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), count, "names must be unique");
    }
}

// ---- out-of-tree degradation (panic-free-serve regressions) ------------
//
// The labeled-route path used to index `locals[at]` and panic on a
// node id past the tree; after the call-graph lint pass it returns
// `None`/`NotInTree`. Pin that contract.

#[test]
fn labeled_route_from_out_of_tree_node_is_none() {
    let g = graphkit::gen::Family::Grid.generate(36, 0x0FF);
    let lt = LabeledTree::new(rooted(&g, 0));
    let m = lt.tree().size() as u32;
    for bad in [m, m + 1, u32::MAX] {
        assert!(lt.route(bad, lt.label(0)).is_none(), "route from {bad} must degrade");
        assert!(matches!(lt.route_step(bad, lt.label(0)), treeroute::labeled::Step::NotInTree));
    }
    // In-range routing is unaffected.
    assert!(lt.route(m - 1, lt.label(0)).is_some());
}
