//! Name-independent **error-reporting** tree routing — the paper's
//! Lemma 4 (an enhancement of Laing's scheme \[21\]).
//!
//! On a rooted weighted tree with `m` nodes and alphabet
//! `Σ = {0, …, σ−1}`:
//!
//! * nodes are *primary-named* by distance rank from the root
//!   ([`crate::names::Naming`]): the root is ε, the next σ nodes get
//!   1-digit names, the next σ² get 2-digit names, …;
//! * a Θ(log n)-wise independent hash ([`crate::hashing::PolyHash`])
//!   maps arbitrary network ids to digit strings in Σ^k;
//! * the node named `(x₁…x_j)` stores (1) its labeled-routing info
//!   `µ(T,u)`, (2) the labels of all nodes named `(x₁…x_j, y)`, and
//!   (3) a directory with the labels of the `σ·log n` closest-to-root
//!   nodes whose hash starts with `(x₁…x_j)`.
//!
//! A *j-bounded search* from the root follows the target's hash digits
//! through at most `j−1` named hops; Lemma 4 guarantees it finds any
//! node of `V_j` (the `Σ_{t≤j} σ^t` closest nodes) with stretch
//! `2j−1`, and otherwise reports failure back to the root at cost
//! `(2j−2)·max{d(root,v) : v ∈ V_{j−1}}`. Both bounds are asserted by
//! the test-suite and re-measured by experiment L4.

use std::collections::HashMap;

use graphkit::bits::{bits_for_node, StorageCost};
use graphkit::ids::ceil_log2;
use graphkit::{Cost, NodeId, Tree, TreeIx};

use crate::hashing::PolyHash;
use crate::labeled::{LabeledTree, RouteLabel};
use crate::names::Naming;

/// Per-node storage of the Lemma 4 scheme (beyond `µ(T,u)`).
#[derive(Clone, Debug, Default)]
pub struct LaingNode {
    /// Item (2): labels of the name-children `(x₁…x_j, y)`, keyed by the
    /// extra digit `y`. Sparse: only digits whose name exists.
    pub name_children: Vec<(u32, RouteLabel)>,
    /// Item (3): `graph id → label` for the `σ·log n` closest-to-root
    /// nodes whose hash extends this node's name.
    pub hash_dir: Vec<(u32, RouteLabel)>,
}

/// Outcome of a j-bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Target reached; `cost` is the total weighted path cost from the
    /// root, `delivered_at` the tree index of the target.
    Found {
        /// Total weighted cost of the search walk.
        cost: Cost,
        /// Tree index of the target.
        delivered_at: TreeIx,
    },
    /// Target not found within the bound; the search returned to the
    /// root having paid `cost` in total (the closed-path cost).
    NotFound {
        /// Total cost of the closed path back to the root.
        cost: Cost,
    },
}

impl SearchOutcome {
    /// Total cost paid, found or not.
    pub fn cost(&self) -> Cost {
        match *self {
            SearchOutcome::Found { cost, .. } => cost,
            SearchOutcome::NotFound { cost } => cost,
        }
    }

    /// Did the search deliver?
    pub fn is_found(&self) -> bool {
        matches!(self, SearchOutcome::Found { .. })
    }
}

/// A tree equipped with the Lemma 4 name-independent error-reporting
/// scheme.
#[derive(Clone, Debug)]
pub struct ErrorReportingTree {
    labeled: LabeledTree,
    naming: Naming,
    hash: PolyHash,
    k: usize,
    sigma: u64,
    max_load: usize,
    /// rank (depth order) → tree index.
    node_of_rank: Vec<TreeIx>,
    /// tree index → rank.
    rank_of: Vec<u32>,
    nodes: Vec<LaingNode>,
    /// Whether the hash verification succeeded within the retry budget.
    hash_verified: bool,
}

impl ErrorReportingTree {
    /// Build with `σ = ⌈m^{1/k}⌉` (the paper's choice uses the *graph*
    /// size; pass it explicitly via [`ErrorReportingTree::with_sigma`]).
    pub fn new(tree: Tree, k: usize, seed: u64) -> Self {
        let sigma = graphkit::ids::nth_root_ceil(tree.size() as u64, k as u32).max(2);
        Self::with_sigma(tree, k, sigma, seed)
    }

    /// Build with an explicit alphabet size.
    pub fn with_sigma(tree: Tree, k: usize, sigma: u64, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(sigma >= 1);
        let m = tree.size();
        let order = tree.nodes_by_depth();
        let mut rank_of = vec![0u32; m];
        for (r, &t) in order.iter().enumerate() {
            rank_of[t as usize] = r as u32;
        }
        let naming = Naming::new(m, sigma);
        let labeled = LabeledTree::new(tree);
        // σ·log n directory budget (≥ σ + 2 so tiny trees stay correct).
        let max_load = ((sigma as usize) * (ceil_log2(m.max(2) as u64) as usize).max(1))
            .max(sigma as usize + 2);
        // Hash selection with verification + reseeding.
        let degree = PolyHash::degree_for(m);
        let mut chosen: Option<PolyHash> = None;
        let mut best: Option<(usize, PolyHash)> = None;
        let mut verified = false;
        for attempt in 0..32u64 {
            let h = PolyHash::new(degree, seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9)));
            let load = Self::max_prefix_load(&h, &labeled, &order, &naming, k, sigma);
            if load <= max_load {
                chosen = Some(h);
                verified = true;
                break;
            }
            if best.as_ref().is_none_or(|(bl, _)| load < *bl) {
                best = Some((load, h));
            }
        }
        let hash = chosen.unwrap_or_else(|| best.expect("at least one attempt").1);
        let mut s = ErrorReportingTree {
            labeled,
            naming,
            hash,
            k,
            sigma,
            max_load,
            node_of_rank: order,
            rank_of,
            nodes: vec![LaingNode::default(); m],
            hash_verified: verified,
        };
        s.build_directories();
        s
    }

    /// Worst prefix load of `h` over all levels (the quantity the paper
    /// bounds by `σ·log n` w.h.p.).
    fn max_prefix_load(
        h: &PolyHash,
        labeled: &LabeledTree,
        order: &[TreeIx],
        naming: &Naming,
        k: usize,
        sigma: u64,
    ) -> usize {
        let mut worst = 0usize;
        for plen in 0..k.min(naming.max_level() + 1) {
            let vj = naming.level_capacity(plen + 1);
            let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
            for &t in order.iter().take(vj) {
                let gid = labeled.tree().graph_id(t).0 as u64;
                let digits = h.digits(gid, sigma, k);
                *counts.entry(digits[..plen].to_vec()).or_insert(0) += 1;
            }
            worst = worst.max(counts.values().copied().max().unwrap_or(0));
        }
        worst
    }

    fn build_directories(&mut self) {
        let m = self.labeled.tree().size();
        // Item (2): name-children labels.
        for rank in 0..m {
            let name = self.naming.name_of_rank(rank);
            if name.len() >= self.k {
                continue; // names never exceed k digits in searches
            }
            let mut kids = Vec::new();
            for y in 0..self.sigma as u32 {
                let mut child = name.clone();
                child.push(y);
                if let Some(cr) = self.naming.rank_of_name(&child) {
                    let ct = self.node_of_rank[cr];
                    kids.push((y, self.labeled.label(ct).clone()));
                }
            }
            let t = self.node_of_rank[rank];
            self.nodes[t as usize].name_children = kids;
        }
        // Item (3): hash directories. Group nodes by full digit string
        // once, then for each node-with-name collect matching prefixes in
        // rank order. Simpler: for each rank r (close to far), push its
        // label into every ancestor-prefix node's directory that still
        // has budget.
        let digits_of: Vec<Vec<u32>> = (0..m)
            .map(|rank| {
                let gid = self.labeled.tree().graph_id(self.node_of_rank[rank]).0 as u64;
                self.hash.digits(gid, self.sigma, self.k)
            })
            .collect();
        // Map name -> tree index for prefix owners.
        let mut owner_of_name: HashMap<Vec<u32>, TreeIx> = HashMap::new();
        for rank in 0..m {
            let name = self.naming.name_of_rank(rank);
            if name.len() < self.k {
                owner_of_name.insert(name, self.node_of_rank[rank]);
            }
        }
        for rank in 0..m {
            let t = self.node_of_rank[rank];
            let gid = self.labeled.tree().graph_id(t).0;
            let label = self.labeled.label(t).clone();
            for plen in 0..=self.k.min(digits_of[rank].len()) {
                let prefix = digits_of[rank][..plen.min(digits_of[rank].len())].to_vec();
                if prefix.len() != plen {
                    break;
                }
                if let Some(&owner) = owner_of_name.get(&prefix) {
                    let dir = &mut self.nodes[owner as usize].hash_dir;
                    if dir.len() < self.max_load {
                        dir.push((gid, label.clone()));
                    }
                }
            }
        }
    }

    /// The underlying labeled scheme (and physical tree).
    pub fn labeled(&self) -> &LabeledTree {
        &self.labeled
    }

    /// The naming plan.
    pub fn naming(&self) -> &Naming {
        &self.naming
    }

    /// Alphabet size σ.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Directory budget σ·log n.
    pub fn max_load(&self) -> usize {
        self.max_load
    }

    /// Did the hash pass the prefix-load verification?
    pub fn hash_verified(&self) -> bool {
        self.hash_verified
    }

    /// Distance rank of tree node `t` (0 = root).
    pub fn rank(&self, t: TreeIx) -> u32 {
        self.rank_of[t as usize]
    }

    /// Tree node at distance rank `r`.
    pub fn node_at_rank(&self, r: usize) -> TreeIx {
        self.node_of_rank[r]
    }

    /// Depth of the farthest node in `V_j` (used by the Lemma 4 cost
    /// bound on negative responses).
    pub fn max_depth_in_level(&self, j: usize) -> Cost {
        let cap = self.naming.level_capacity(j);
        (0..cap).map(|r| self.labeled.tree().depth(self.node_of_rank[r])).max().unwrap_or(0)
    }

    /// Smallest `j` such that a j-bounded search finds every node in
    /// `members` (tree indices). This is the paper's `b(u,i)` quantity:
    /// the level that covers a given set. Computed structurally (the
    /// level of the deepest-ranked member's *hash discovery round*).
    pub fn level_covering(&self, members: impl IntoIterator<Item = TreeIx>) -> usize {
        let mut j = 1usize;
        for t in members {
            let rank = self.rank_of[t as usize] as usize;
            j = j.max(self.naming.level_of_rank(rank).max(1));
        }
        j.min(self.k)
    }

    /// Execute a `j`-bounded search from the root for the node whose
    /// network id is `target`. Pure simulation: every decision uses only
    /// the current node's stored directories. Returns the outcome and
    /// the sequence of tree nodes visited.
    pub fn search(&self, target: NodeId, j: usize) -> (SearchOutcome, Vec<TreeIx>) {
        assert!(j >= 1, "searches must be at least 1-bounded");
        let j = j.min(self.k);
        let y = self.hash.digits(target.0 as u64, self.sigma, self.k);
        let root = self.labeled.tree().root();
        let mut current = root;
        let mut cost: Cost = 0;
        let mut visited = vec![root];
        let mut round = 1usize;
        loop {
            // Does `current` know the target?
            let known = self.lookup_at(current, target);
            if let Some(label) = known {
                let (mut path, c) = self
                    .labeled
                    .route(current, &label)
                    .expect("stored label must belong to this tree");
                cost += c;
                let delivered_at = *path.last().unwrap();
                path.remove(0);
                visited.extend(path);
                return (SearchOutcome::Found { cost, delivered_at }, visited);
            }
            if round >= j {
                // Bounded out: report failure back to the root.
                let (mut path, c) =
                    self.labeled.route(current, self.labeled.label(root)).expect("root label");
                cost += c;
                path.remove(0);
                visited.extend(path);
                return (SearchOutcome::NotFound { cost }, visited);
            }
            // Move to the node named (y_1 … y_round).
            let digit = y[round - 1];
            let next_label = self.nodes[current as usize]
                .name_children
                .iter()
                .find(|(d, _)| *d == digit)
                .map(|(_, l)| l.clone());
            match next_label {
                Some(label) => {
                    let (mut path, c) = self.labeled.route(current, &label).expect("child label");
                    cost += c;
                    current = *path.last().unwrap();
                    path.remove(0);
                    visited.extend(path);
                    round += 1;
                }
                None => {
                    // The name does not exist ⇒ the target is not in the
                    // tree at all (names fill rank-by-rank; see module
                    // docs). Report failure.
                    let (mut path, c) =
                        self.labeled.route(current, self.labeled.label(root)).expect("root label");
                    cost += c;
                    path.remove(0);
                    visited.extend(path);
                    return (SearchOutcome::NotFound { cost }, visited);
                }
            }
        }
    }

    /// Local lookup: does tree node `t` store the target's label?
    fn lookup_at(&self, t: TreeIx, target: NodeId) -> Option<RouteLabel> {
        if self.labeled.tree().graph_id(t) == target {
            return Some(self.labeled.label(t).clone());
        }
        self.nodes[t as usize]
            .hash_dir
            .iter()
            .find(|(gid, _)| *gid == target.0)
            .map(|(_, l)| l.clone())
    }

    /// Storage bits of tree node `t` under this scheme: µ(T,t) + the two
    /// directories + the hash description (τ(T,t) in the paper's
    /// notation).
    pub fn node_bits(&self, t: TreeIx) -> u64 {
        let m = self.labeled.tree().size();
        let id_bits = bits_for_node(m);
        let node = &self.nodes[t as usize];
        let mut bits = self.labeled.local_bits(t) + self.hash.storage_bits();
        for (_, label) in &node.name_children {
            bits += ceil_log2(self.sigma) as u64 + label_bits(label, m);
        }
        for (_, label) in &node.hash_dir {
            bits += id_bits + label_bits(label, m);
        }
        bits
    }

    /// Total storage over all nodes.
    pub fn total_bits(&self) -> u64 {
        (0..self.labeled.tree().size() as u32).map(|t| self.node_bits(t)).sum()
    }
}

/// Bits of a label in an `m`-node tree.
fn label_bits(label: &RouteLabel, m: usize) -> u64 {
    let b = bits_for_node(m);
    b + label.light_path.len() as u64 * 2 * b + b
}

impl StorageCost for ErrorReportingTree {
    fn storage_bits(&self) -> u64 {
        self.total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{self, WeightDist};
    use graphkit::{dijkstra, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spanning_tree(g: &Graph, root: NodeId) -> Tree {
        let sp = dijkstra::dijkstra(g, root);
        Tree::from_sssp(g, &sp, g.nodes())
    }

    fn build(g: &Graph, root: NodeId, k: usize, seed: u64) -> ErrorReportingTree {
        ErrorReportingTree::new(spanning_tree(g, root), k, seed)
    }

    /// Lemma 4(a): every node of V_j is found by a j-bounded search with
    /// stretch ≤ 2j−1 (w.r.t. its tree depth), for every j.
    fn check_hit_guarantee(s: &ErrorReportingTree) {
        let m = s.labeled().tree().size();
        for rank in 0..m {
            let t = s.node_at_rank(rank);
            let target = s.labeled().tree().graph_id(t);
            let level = s.naming().level_of_rank(rank).max(1);
            for j in level..=s.k {
                let (outcome, _) = s.search(target, j);
                match outcome {
                    SearchOutcome::Found { cost, delivered_at } => {
                        assert_eq!(delivered_at, t, "delivered to wrong node");
                        let depth = s.labeled().tree().depth(t);
                        let bound = (2 * level as u64).saturating_sub(1) * depth;
                        if depth > 0 {
                            assert!(
                                cost <= bound.max(depth),
                                "stretch violated: rank={rank} level={level} j={j} \
                                 cost={cost} depth={depth}"
                            );
                        } else {
                            assert_eq!(cost, 0);
                        }
                    }
                    SearchOutcome::NotFound { .. } => {
                        panic!("rank {rank} in V_{j} not found by {j}-bounded search")
                    }
                }
            }
        }
    }

    /// Lemma 4(b): a j-bounded search that misses costs at most
    /// (2j−2)·max{d(r,v) : v ∈ V_{j−1}} and ends back at the root.
    fn check_miss_guarantee(s: &ErrorReportingTree, absent: &[u32]) {
        for &gid in absent {
            for j in 1..=s.k {
                let (outcome, visited) = s.search(NodeId(gid), j);
                match outcome {
                    SearchOutcome::Found { .. } => panic!("found a node not in the tree"),
                    SearchOutcome::NotFound { cost } => {
                        assert_eq!(
                            *visited.last().unwrap(),
                            s.labeled().tree().root(),
                            "negative response must return to the root"
                        );
                        let bound = (2 * j as u64).saturating_sub(2)
                            * s.max_depth_in_level(j.saturating_sub(1)).max(1);
                        assert!(
                            cost <= bound,
                            "miss cost {cost} exceeds (2j-2)*maxdepth bound {bound} (j={j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn path_tree_searches() {
        let g = gen::path(30, 2);
        let s = build(&g, NodeId(0), 3, 1);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[1000, 2000]);
    }

    #[test]
    fn star_tree_searches() {
        let g = gen::star(40, 3);
        let s = build(&g, NodeId(0), 2, 2);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[999]);
    }

    #[test]
    fn random_tree_searches_k3() {
        let mut rng = SmallRng::seed_from_u64(40);
        let g = gen::random_tree(120, WeightDist::UniformInt { lo: 1, hi: 12 }, &mut rng);
        let s = build(&g, NodeId(0), 3, 3);
        assert!(s.hash_verified());
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[5000, 5001, 5002]);
    }

    #[test]
    fn random_tree_searches_k1() {
        // k = 1: the root stores everything; stretch 1.
        let mut rng = SmallRng::seed_from_u64(41);
        let g = gen::random_tree(50, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 1, 4);
        check_hit_guarantee(&s);
        for rank in 0..50 {
            let t = s.node_at_rank(rank);
            let (outcome, _) = s.search(s.labeled().tree().graph_id(t), 1);
            // 1-bounded: found exactly at optimal cost from the root.
            assert_eq!(outcome.cost(), s.labeled().tree().depth(t));
        }
    }

    #[test]
    fn caterpillar_searches_k4() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = gen::caterpillar(12, 5, WeightDist::UniformInt { lo: 1, hi: 4 }, &mut rng);
        let s = build(&g, NodeId(3), 4, 5);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[77777]);
    }

    #[test]
    fn bounded_search_misses_deep_nodes() {
        // With k = 3 and sigma = ceil(100^{1/3}) = 5, V_1 holds 6 nodes:
        // a 1-bounded search must miss nodes of rank >= 6.
        let mut rng = SmallRng::seed_from_u64(43);
        let g = gen::random_tree(100, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 6);
        let cap1 = s.naming().level_capacity(1);
        let mut missed = 0;
        for rank in cap1..100 {
            let t = s.node_at_rank(rank);
            let (outcome, _) = s.search(s.labeled().tree().graph_id(t), 1);
            if !outcome.is_found() {
                missed += 1;
            }
        }
        // Nodes outside V_1 may still be found via the root's hash
        // directory, but far-ranked ones must eventually be missed.
        assert!(missed > 0, "1-bounded search implausibly found every node");
    }

    #[test]
    fn rank_order_is_depth_order() {
        let mut rng = SmallRng::seed_from_u64(44);
        let g = gen::random_tree(60, WeightDist::UniformInt { lo: 1, hi: 5 }, &mut rng);
        let s = build(&g, NodeId(0), 3, 7);
        let mut prev = 0;
        for rank in 0..60 {
            let d = s.labeled().tree().depth(s.node_at_rank(rank));
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(s.rank(s.labeled().tree().root()), 0);
    }

    #[test]
    fn level_covering_bounds() {
        let mut rng = SmallRng::seed_from_u64(45);
        let g = gen::random_tree(80, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 8);
        // Root alone is covered by level 1.
        assert_eq!(s.level_covering([s.labeled().tree().root()]), 1);
        // Everything is covered by at most k.
        let all: Vec<TreeIx> = (0..80u32).collect();
        assert!(s.level_covering(all) <= 3);
    }

    #[test]
    fn storage_within_lemma_bound() {
        // Lemma 4: O(k · n^{1/k} · log² n) bits per node. Check against
        // the explicit constant-free form with a generous constant.
        let mut rng = SmallRng::seed_from_u64(46);
        let g = gen::random_tree(200, WeightDist::Unit, &mut rng);
        let k = 3;
        let s = build(&g, NodeId(0), k, 9);
        let m = 200u64;
        let sigma = s.sigma();
        let log = ceil_log2(m) as u64;
        let bound = 64 * (k as u64) * sigma * log * log;
        for t in 0..200u32 {
            assert!(
                s.node_bits(t) <= bound,
                "node {t} stores {} bits > bound {bound}",
                s.node_bits(t)
            );
        }
    }

    #[test]
    fn directory_budget_respected() {
        let mut rng = SmallRng::seed_from_u64(47);
        let g = gen::random_tree(300, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 10);
        for t in 0..300usize {
            assert!(s.nodes[t].hash_dir.len() <= s.max_load());
            assert!(s.nodes[t].name_children.len() <= s.sigma() as usize);
        }
    }

    #[test]
    fn searches_deterministic() {
        let mut rng = SmallRng::seed_from_u64(48);
        let g = gen::random_tree(70, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 11);
        for gid in [0u32, 10, 42, 9999] {
            let a = s.search(NodeId(gid), 3);
            let b = s.search(NodeId(gid), 3);
            assert_eq!(a, b);
        }
    }
}
