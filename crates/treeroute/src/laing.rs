//! Name-independent **error-reporting** tree routing — the paper's
//! Lemma 4 (an enhancement of Laing's scheme \[21\]).
//!
//! On a rooted weighted tree with `m` nodes and alphabet
//! `Σ = {0, …, σ−1}`:
//!
//! * nodes are *primary-named* by distance rank from the root
//!   ([`crate::names::Naming`]): the root is ε, the next σ nodes get
//!   1-digit names, the next σ² get 2-digit names, …;
//! * a Θ(log n)-wise independent hash ([`crate::hashing::PolyHash`])
//!   maps arbitrary network ids to digit strings in Σ^k;
//! * the node named `(x₁…x_j)` stores (1) its labeled-routing info
//!   `µ(T,u)`, (2) the labels of all nodes named `(x₁…x_j, y)`, and
//!   (3) a directory with the labels of the `σ·log n` closest-to-root
//!   nodes whose hash starts with `(x₁…x_j)`.
//!
//! A *j-bounded search* from the root follows the target's hash digits
//! through at most `j−1` named hops; Lemma 4 guarantees it finds any
//! node of `V_j` (the `Σ_{t≤j} σ^t` closest nodes) with stretch
//! `2j−1`, and otherwise reports failure back to the root at cost
//! `(2j−2)·max{d(root,v) : v ∈ V_{j−1}}`. Both bounds are asserted by
//! the test-suite and re-measured by experiment L4.
//!
//! ## Storage layout
//!
//! Directories are flat: both per-node stores are CSR arrays indexed by
//! distance **rank**, and every entry refers to its target by tree
//! index (the label itself stays in the [`LabeledTree`]'s shared hop
//! arena). Name lookups use pure rank arithmetic
//! ([`Naming::child_rank`] / [`Naming::rank_of_name`] on a borrowed
//! digit slice) — no `Vec<u32>`-keyed hash maps anywhere, so building a
//! tree's directories performs O(1) allocations total.

use graphkit::bits::{bits_for_node, StorageCost};
use graphkit::ids::ceil_log2;
use graphkit::{wire, Cost, NodeId, Tree, TreeIx};
use std::io;

use crate::hashing::PolyHash;
use crate::labeled::LabeledTree;
use crate::names::Naming;

/// Outcome of a j-bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// Target reached; `cost` is the total weighted path cost from the
    /// root, `delivered_at` the tree index of the target.
    Found {
        /// Total weighted cost of the search walk.
        cost: Cost,
        /// Tree index of the target.
        delivered_at: TreeIx,
    },
    /// Target not found within the bound; the search returned to the
    /// root having paid `cost` in total (the closed-path cost).
    NotFound {
        /// Total cost of the closed path back to the root.
        cost: Cost,
    },
}

impl SearchOutcome {
    /// Total cost paid, found or not.
    pub fn cost(&self) -> Cost {
        match *self {
            SearchOutcome::Found { cost, .. } => cost,
            SearchOutcome::NotFound { cost } => cost,
        }
    }

    /// Did the search deliver?
    pub fn is_found(&self) -> bool {
        matches!(self, SearchOutcome::Found { .. })
    }
}

/// The plain-old-data half of an [`ErrorReportingTree`]: the labeled
/// store plus every Lemma-4 directory arena, already assembled. A store
/// serializes as flat arrays and deserializes in one pass — no
/// re-running of naming, labeling, or directory assembly — which is
/// what makes spill reloads and snapshot loads cheap.
#[derive(Clone, Debug)]
pub struct ErtStore {
    labeled: LabeledTree,
    hash: PolyHash,
    k: usize,
    sigma: u64,
    max_load: usize,
    /// rank (depth order) → tree index.
    node_of_rank: Vec<TreeIx>,
    /// tree index → rank.
    rank_of: Vec<u32>,
    /// Item (2), CSR indexed by rank: `(digit y, name-child tree ix)`.
    nc_off: Vec<u32>,
    nc: Vec<(u32, TreeIx)>,
    /// Item (3), CSR indexed by rank: `(target graph id, target tree ix)`.
    hd_off: Vec<u32>,
    hd: Vec<(u32, TreeIx)>,
    /// Whether the hash verification succeeded within the retry budget.
    hash_verified: bool,
}

impl ErtStore {
    /// Serialize every arena verbatim — the record a spill file or a
    /// snapshot section holds. Decoding is one pass plus bounds checks;
    /// nothing is recomputed.
    pub fn to_wire(&self, w: &mut wire::Writer) {
        w.u64(self.k as u64);
        w.u64(self.sigma);
        w.u8(self.hash_verified as u8);
        w.slice_u64(self.hash.coeffs());
        self.labeled.store().to_wire(w);
        w.slice_u32(&self.node_of_rank);
        w.slice_u32(&self.rank_of);
        w.slice_u32(&self.nc_off);
        w.slice_pairs(&self.nc);
        w.slice_u32(&self.hd_off);
        w.slice_pairs(&self.hd);
    }

    /// Inverse of [`ErtStore::to_wire`] with O(m + directory) validation:
    /// corrupt bytes are an [`io::Error`], never a panic or a latent
    /// out-of-bounds index.
    // lint:allow-fn(panic-free-serve): validate-then-index — CSR bounds and directory ranges are checked before the indexing passes below
    pub fn from_wire(r: &mut wire::Reader) -> io::Result<Self> {
        use graphkit::wire::invalid;
        let k = r.u64()? as usize;
        let sigma = r.u64()?;
        let verified = r.u8()? != 0;
        let coeffs = r.slice_u64()?;
        if k == 0 || sigma == 0 || coeffs.is_empty() {
            return Err(invalid("bad ERT record header"));
        }
        let hash = PolyHash::from_coeffs(coeffs);
        let labeled = LabeledTree::from_store(crate::labeled::LabeledStore::from_wire(r)?);
        let m = labeled.tree().size();
        let node_of_rank = r.slice_u32()?;
        let rank_of = r.slice_u32()?;
        let nc_off = r.slice_u32()?;
        let nc = r.slice_pairs()?;
        let hd_off = r.slice_u32()?;
        let hd = r.slice_pairs()?;
        if node_of_rank.len() != m || rank_of.len() != m {
            return Err(invalid("ERT rank arrays have mismatched lengths"));
        }
        for (rank, &t) in node_of_rank.iter().enumerate() {
            if t as usize >= m || rank_of[t as usize] as usize != rank {
                return Err(invalid("ERT rank order is not a permutation"));
            }
        }
        let check_csr = |off: &[u32], arena: &[(u32, TreeIx)], what: &str| {
            if off.len() != m + 1
                || off[0] != 0
                || off[m] as usize != arena.len()
                || off.windows(2).any(|w| w[0] > w[1])
            {
                return Err(invalid(&format!("ERT {what} directory offsets corrupt")));
            }
            if arena.iter().any(|&(_, ix)| ix as usize >= m) {
                return Err(invalid(&format!("ERT {what} directory entry out of range")));
            }
            Ok(())
        };
        check_csr(&nc_off, &nc, "name-child")?;
        check_csr(&hd_off, &hd, "hash")?;
        let max_load = ErrorReportingTree::load_budget(m, sigma);
        Ok(ErtStore {
            labeled,
            hash,
            k,
            sigma,
            max_load,
            node_of_rank,
            rank_of,
            nc_off,
            nc,
            hd_off,
            hd,
            hash_verified: verified,
        })
    }
}

/// A tree equipped with the Lemma 4 name-independent error-reporting
/// scheme: the thin read-path half over an [`ErtStore`], plus the
/// (cheaply re-derivable) naming plan.
#[derive(Clone, Debug)]
pub struct ErrorReportingTree {
    store: ErtStore,
    naming: Naming,
}

impl ErrorReportingTree {
    /// Build with `σ = ⌈m^{1/k}⌉` (the paper's choice uses the *graph*
    /// size; pass it explicitly via [`ErrorReportingTree::with_sigma`]).
    pub fn new(tree: Tree, k: usize, seed: u64) -> Self {
        let sigma = graphkit::ids::nth_root_ceil(tree.size() as u64, k as u32).max(2);
        Self::with_sigma(tree, k, sigma, seed)
    }

    /// Build with an explicit alphabet size.
    pub fn with_sigma(tree: Tree, k: usize, sigma: u64, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(sigma >= 1);
        let m = tree.size();
        let order = tree.nodes_by_depth();
        let naming = Naming::new(m, sigma);
        let labeled = LabeledTree::new(tree);
        // Hash selection with verification + reseeding.
        let max_load = Self::load_budget(m, sigma);
        let degree = PolyHash::degree_for(m);
        let mut chosen: Option<PolyHash> = None;
        let mut best: Option<(usize, PolyHash)> = None;
        let mut verified = false;
        for attempt in 0..32u64 {
            let h = PolyHash::new(degree, seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9)));
            let load = Self::max_prefix_load(&h, &labeled, &order, &naming, k, sigma);
            if load <= max_load {
                chosen = Some(h);
                verified = true;
                break;
            }
            if best.as_ref().is_none_or(|(bl, _)| load < *bl) {
                best = Some((load, h));
            }
        }
        // 32 attempts guarantee `best` when nothing verified; the
        // final fallback (fresh seed-0 hash) is unreachable but keeps
        // this total — an over-budget hash costs search time, not a
        // panic.
        let hash = chosen.or(best.map(|(_, h)| h)).unwrap_or_else(|| PolyHash::new(degree, seed));
        Self::assemble(labeled, naming, order, k, sigma, hash, verified)
    }

    /// Deterministically rebuild the full scheme from its irreducible
    /// parts: the physical tree plus the already-selected hash. This is
    /// the spill-file read path — everything else (naming, labels,
    /// directories) is a pure function of these and is reconstructed
    /// bit-identically.
    pub fn from_parts(tree: Tree, k: usize, sigma: u64, hash: PolyHash, verified: bool) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(sigma >= 1);
        let order = tree.nodes_by_depth();
        let naming = Naming::new(tree.size(), sigma);
        let labeled = LabeledTree::new(tree);
        Self::assemble(labeled, naming, order, k, sigma, hash, verified)
    }

    /// σ·log n directory budget (≥ σ + 2 so tiny trees stay correct).
    fn load_budget(m: usize, sigma: u64) -> usize {
        ((sigma as usize) * (ceil_log2(m.max(2) as u64) as usize).max(1)).max(sigma as usize + 2)
    }

    fn assemble(
        labeled: LabeledTree,
        naming: Naming,
        node_of_rank: Vec<TreeIx>,
        k: usize,
        sigma: u64,
        hash: PolyHash,
        hash_verified: bool,
    ) -> Self {
        let m = labeled.tree().size();
        let max_load = Self::load_budget(m, sigma);
        let mut rank_of = vec![0u32; m];
        for (r, &t) in node_of_rank.iter().enumerate() {
            rank_of[t as usize] = r as u32;
        }
        // Item (2): name-children. Child names of rank r are contiguous
        // ranks at the next level, so this is a straight CSR append in
        // (rank, digit) order.
        let mut nc_off = vec![0u32; m + 1];
        let mut nc: Vec<(u32, TreeIx)> = Vec::new();
        for rank in 0..m {
            if naming.level_of_rank(rank) < k {
                for y in 0..sigma as u32 {
                    match naming.child_rank(rank, y) {
                        Some(cr) => nc.push((y, node_of_rank[cr])),
                        // Child ranks grow with y; past capacity, all
                        // larger digits are absent too.
                        None => break,
                    }
                }
            }
            nc_off[rank + 1] = nc.len() as u32;
        }
        // Item (3): hash directories. Collect (owner rank, target rank)
        // pairs — a target's prefix of length j is owned by the node
        // whose *name* equals those j digits — sort, and keep the first
        // `max_load` targets (closest-to-root first) per owner.
        let mut digits = vec![0u32; k];
        let mut pairs: Vec<u64> = Vec::new();
        for (rank, &tix) in node_of_rank.iter().enumerate().take(m) {
            let gid = labeled.tree().graph_id(tix).0 as u64;
            hash.digits_into(gid, sigma, &mut digits);
            for plen in 0..k {
                if let Some(owner) = naming.rank_of_name(&digits[..plen]) {
                    pairs.push((owner as u64) << 32 | rank as u64);
                }
            }
        }
        pairs.sort_unstable();
        let mut hd_off = vec![0u32; m + 1];
        let mut hd: Vec<(u32, TreeIx)> = Vec::new();
        let mut p = 0usize;
        for owner in 0..m {
            let start = p;
            while p < pairs.len() && (pairs[p] >> 32) as usize == owner {
                p += 1;
            }
            for &pair in &pairs[start..(start + max_load).min(p)] {
                let t = node_of_rank[(pair & 0xFFFF_FFFF) as usize];
                hd.push((labeled.tree().graph_id(t).0, t));
            }
            hd_off[owner + 1] = hd.len() as u32;
        }
        ErrorReportingTree {
            store: ErtStore {
                labeled,
                hash,
                k,
                sigma,
                max_load,
                node_of_rank,
                rank_of,
                nc_off,
                nc,
                hd_off,
                hd,
                hash_verified,
            },
            naming,
        }
    }

    /// Wrap a deserialized [`ErtStore`], re-deriving only the naming
    /// plan (pure rank arithmetic, O(1) state). No directory assembly —
    /// this is the snapshot/spill read path.
    pub fn from_store(store: ErtStore) -> Self {
        let naming = Naming::new(store.labeled.tree().size(), store.sigma);
        ErrorReportingTree { store, naming }
    }

    /// The plain-old-data half (for serialization).
    pub fn store(&self) -> &ErtStore {
        &self.store
    }

    /// Worst prefix load of `h` over all levels (the quantity the paper
    /// bounds by `σ·log n` w.h.p.). Prefixes are interned as base-σ
    /// codes (σ^k ≤ p < 2^64 by the hashing contract), so each level is
    /// a sort + run-length scan over a reused `u64` buffer.
    fn max_prefix_load(
        h: &PolyHash,
        labeled: &LabeledTree,
        order: &[TreeIx],
        naming: &Naming,
        k: usize,
        sigma: u64,
    ) -> usize {
        let levels = k.min(naming.max_level() + 1);
        let v_max = naming.level_capacity(levels);
        let mut digits = vec![0u32; v_max * k];
        for (i, &t) in order.iter().take(v_max).enumerate() {
            let gid = labeled.tree().graph_id(t).0 as u64;
            h.digits_into(gid, sigma, &mut digits[i * k..(i + 1) * k]);
        }
        let mut worst = 0usize;
        let mut codes: Vec<u64> = Vec::with_capacity(v_max);
        for plen in 0..levels {
            let vj = naming.level_capacity(plen + 1);
            codes.clear();
            for i in 0..vj {
                codes.push(
                    digits[i * k..i * k + plen].iter().fold(0u64, |a, &d| a * sigma + d as u64),
                );
            }
            codes.sort_unstable();
            let mut run = 1usize;
            let mut best = 1usize;
            for w in codes.windows(2) {
                if w[0] == w[1] {
                    run += 1;
                    best = best.max(run);
                } else {
                    run = 1;
                }
            }
            worst = worst.max(best);
        }
        worst
    }

    /// The underlying labeled scheme (and physical tree).
    pub fn labeled(&self) -> &LabeledTree {
        &self.store.labeled
    }

    /// The naming plan.
    pub fn naming(&self) -> &Naming {
        &self.naming
    }

    /// Search depth bound k.
    pub fn k(&self) -> usize {
        self.store.k
    }

    /// Alphabet size σ.
    pub fn sigma(&self) -> u64 {
        self.store.sigma
    }

    /// Directory budget σ·log n.
    pub fn max_load(&self) -> usize {
        self.store.max_load
    }

    /// Did the hash pass the prefix-load verification?
    pub fn hash_verified(&self) -> bool {
        self.store.hash_verified
    }

    /// Distance rank of tree node `t` (0 = root).
    pub fn rank(&self, t: TreeIx) -> u32 {
        self.store.rank_of[t as usize]
    }

    /// Tree node at distance rank `r`.
    pub fn node_at_rank(&self, r: usize) -> TreeIx {
        self.store.node_of_rank[r]
    }

    /// Item (2) of node `t`'s storage: `(digit, name-child tree index)`.
    // lint:allow-fn(panic-free-serve): validate-then-index — from_wire checks rank_of < n and nc_off monotone/in-bounds for every rank
    pub fn name_children(&self, t: TreeIx) -> &[(u32, TreeIx)] {
        let s = &self.store;
        let r = s.rank_of[t as usize] as usize;
        &s.nc[s.nc_off[r] as usize..s.nc_off[r + 1] as usize]
    }

    /// Item (3) of node `t`'s storage: `(target graph id, tree index)`.
    // lint:allow-fn(panic-free-serve): validate-then-index — from_wire checks rank_of < n and hd_off monotone/in-bounds for every rank
    pub fn hash_dir(&self, t: TreeIx) -> &[(u32, TreeIx)] {
        let s = &self.store;
        let r = s.rank_of[t as usize] as usize;
        &s.hd[s.hd_off[r] as usize..s.hd_off[r + 1] as usize]
    }

    /// Depth of the farthest node in `V_j` (used by the Lemma 4 cost
    /// bound on negative responses).
    pub fn max_depth_in_level(&self, j: usize) -> Cost {
        let cap = self.naming.level_capacity(j);
        (0..cap)
            .map(|r| self.store.labeled.tree().depth(self.store.node_of_rank[r]))
            .max()
            .unwrap_or(0)
    }

    /// Smallest `j` such that a j-bounded search finds every node in
    /// `members` (tree indices). This is the paper's `b(u,i)` quantity:
    /// the level that covers a given set. Computed structurally (the
    /// level of the deepest-ranked member's *hash discovery round*).
    pub fn level_covering(&self, members: impl IntoIterator<Item = TreeIx>) -> usize {
        let mut j = 1usize;
        for t in members {
            let rank = self.store.rank_of[t as usize] as usize;
            j = j.max(self.naming.level_of_rank(rank).max(1));
        }
        j.min(self.store.k)
    }

    /// Execute a `j`-bounded search from the root for the node whose
    /// network id is `target`. Pure simulation: every decision uses only
    /// the current node's stored directories. Returns the outcome and
    /// the sequence of tree nodes visited.
    pub fn search(&self, target: NodeId, j: usize) -> (SearchOutcome, Vec<TreeIx>) {
        assert!(j >= 1, "searches must be at least 1-bounded");
        let ErtStore { labeled, hash, k, sigma, .. } = &self.store;
        let j = j.min(*k);
        let y = hash.digits(target.0 as u64, *sigma, *k);
        let root = labeled.tree().root();
        let mut current = root;
        let mut cost: Cost = 0;
        // lint:allow(no-alloc-in-route): the returned search owns its visited path; one Vec per search is the API
        let mut visited = vec![root];
        let mut round = 1usize;
        // Every stored label below routes inside this tree by
        // construction; a label that no longer routes means a corrupt
        // store, and the search degrades to a failure from where it
        // stands — never a panicked serving thread.
        loop {
            // Does `current` know the target?
            if let Some(tix) = self.lookup_at(current, target) {
                let Some((mut path, c)) = labeled.route(current, labeled.label(tix)) else {
                    return (SearchOutcome::NotFound { cost }, visited);
                };
                cost += c;
                let delivered_at = path.last().copied().unwrap_or(current);
                path.remove(0);
                visited.extend(path);
                return (SearchOutcome::Found { cost, delivered_at }, visited);
            }
            if round >= j {
                // Bounded out: report failure back to the root.
                if let Some((mut path, c)) = labeled.route(current, labeled.label(root)) {
                    cost += c;
                    path.remove(0);
                    visited.extend(path);
                }
                return (SearchOutcome::NotFound { cost }, visited);
            }
            // Move to the node named (y_1 … y_round). A missing digit
            // (impossible for round < j ≤ k) falls through to the
            // name-miss arm below.
            let digit = y.get(round - 1).copied().unwrap_or(u32::MAX);
            let next =
                self.name_children(current).iter().find(|(d, _)| *d == digit).map(|&(_, c)| c);
            match next {
                Some(child) => {
                    let Some((mut path, c)) = labeled.route(current, labeled.label(child)) else {
                        return (SearchOutcome::NotFound { cost }, visited);
                    };
                    cost += c;
                    current = path.last().copied().unwrap_or(current);
                    path.remove(0);
                    visited.extend(path);
                    round += 1;
                }
                None => {
                    // The name does not exist ⇒ the target is not in the
                    // tree at all (names fill rank-by-rank; see module
                    // docs). Report failure.
                    if let Some((mut path, c)) = labeled.route(current, labeled.label(root)) {
                        cost += c;
                        path.remove(0);
                        visited.extend(path);
                    }
                    return (SearchOutcome::NotFound { cost }, visited);
                }
            }
        }
    }

    /// Local lookup: does tree node `t` store the target's label? The
    /// returned tree index resolves to a label via the shared arena.
    fn lookup_at(&self, t: TreeIx, target: NodeId) -> Option<TreeIx> {
        if self.store.labeled.tree().graph_id(t) == target {
            return Some(t);
        }
        self.hash_dir(t).iter().find(|(gid, _)| *gid == target.0).map(|&(_, ix)| ix)
    }

    /// Storage bits of tree node `t` under this scheme: µ(T,t) + the two
    /// directories + the hash description (τ(T,t) in the paper's
    /// notation).
    pub fn node_bits(&self, t: TreeIx) -> u64 {
        let labeled = &self.store.labeled;
        let m = labeled.tree().size();
        let id_bits = bits_for_node(m);
        let mut bits = labeled.local_bits(t) + self.store.hash.storage_bits();
        for &(_, child) in self.name_children(t) {
            bits += ceil_log2(self.store.sigma) as u64 + labeled.label_bits(child);
        }
        for &(_, ix) in self.hash_dir(t) {
            bits += id_bits + labeled.label_bits(ix);
        }
        bits
    }

    /// Total storage over all nodes.
    pub fn total_bits(&self) -> u64 {
        (0..self.store.labeled.tree().size() as u32).map(|t| self.node_bits(t)).sum()
    }

    /// Serialize the full [`ErtStore`] — every directory arena verbatim,
    /// so [`ErrorReportingTree::from_wire`] is a one-pass decode with no
    /// reassembly. (Earlier revisions wrote only the irreducible parts
    /// and re-ran [`ErrorReportingTree::from_parts`] on every reload;
    /// the full-store record trades bytes for O(m log m) rebuild work,
    /// and lets a snapshot copy a spilled record without decoding it.)
    pub fn to_wire(&self, w: &mut wire::Writer) {
        self.store.to_wire(w);
    }

    /// Inverse of [`ErrorReportingTree::to_wire`].
    pub fn from_wire(r: &mut wire::Reader) -> io::Result<Self> {
        Ok(Self::from_store(ErtStore::from_wire(r)?))
    }
}

impl StorageCost for ErrorReportingTree {
    fn storage_bits(&self) -> u64 {
        self.total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{self, WeightDist};
    use graphkit::{dijkstra, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spanning_tree(g: &Graph, root: NodeId) -> Tree {
        let sp = dijkstra::dijkstra(g, root);
        Tree::from_sssp(g, &sp, g.nodes())
    }

    fn build(g: &Graph, root: NodeId, k: usize, seed: u64) -> ErrorReportingTree {
        ErrorReportingTree::new(spanning_tree(g, root), k, seed)
    }

    /// Lemma 4(a): every node of V_j is found by a j-bounded search with
    /// stretch ≤ 2j−1 (w.r.t. its tree depth), for every j.
    fn check_hit_guarantee(s: &ErrorReportingTree) {
        let m = s.labeled().tree().size();
        for rank in 0..m {
            let t = s.node_at_rank(rank);
            let target = s.labeled().tree().graph_id(t);
            let level = s.naming().level_of_rank(rank).max(1);
            for j in level..=s.k() {
                let (outcome, _) = s.search(target, j);
                match outcome {
                    SearchOutcome::Found { cost, delivered_at } => {
                        assert_eq!(delivered_at, t, "delivered to wrong node");
                        let depth = s.labeled().tree().depth(t);
                        let bound = (2 * level as u64).saturating_sub(1) * depth;
                        if depth > 0 {
                            assert!(
                                cost <= bound.max(depth),
                                "stretch violated: rank={rank} level={level} j={j} \
                                 cost={cost} depth={depth}"
                            );
                        } else {
                            assert_eq!(cost, 0);
                        }
                    }
                    SearchOutcome::NotFound { .. } => {
                        panic!("rank {rank} in V_{j} not found by {j}-bounded search")
                    }
                }
            }
        }
    }

    /// Lemma 4(b): a j-bounded search that misses costs at most
    /// (2j−2)·max{d(r,v) : v ∈ V_{j−1}} and ends back at the root.
    fn check_miss_guarantee(s: &ErrorReportingTree, absent: &[u32]) {
        for &gid in absent {
            for j in 1..=s.k() {
                let (outcome, visited) = s.search(NodeId(gid), j);
                match outcome {
                    SearchOutcome::Found { .. } => panic!("found a node not in the tree"),
                    SearchOutcome::NotFound { cost } => {
                        assert_eq!(
                            *visited.last().unwrap(),
                            s.labeled().tree().root(),
                            "negative response must return to the root"
                        );
                        let bound = (2 * j as u64).saturating_sub(2)
                            * s.max_depth_in_level(j.saturating_sub(1)).max(1);
                        assert!(
                            cost <= bound,
                            "miss cost {cost} exceeds (2j-2)*maxdepth bound {bound} (j={j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn path_tree_searches() {
        let g = gen::path(30, 2);
        let s = build(&g, NodeId(0), 3, 1);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[1000, 2000]);
    }

    #[test]
    fn star_tree_searches() {
        let g = gen::star(40, 3);
        let s = build(&g, NodeId(0), 2, 2);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[999]);
    }

    #[test]
    fn random_tree_searches_k3() {
        let mut rng = SmallRng::seed_from_u64(40);
        let g = gen::random_tree(120, WeightDist::UniformInt { lo: 1, hi: 12 }, &mut rng);
        let s = build(&g, NodeId(0), 3, 3);
        assert!(s.hash_verified());
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[5000, 5001, 5002]);
    }

    #[test]
    fn random_tree_searches_k1() {
        // k = 1: the root stores everything; stretch 1.
        let mut rng = SmallRng::seed_from_u64(41);
        let g = gen::random_tree(50, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 1, 4);
        check_hit_guarantee(&s);
        for rank in 0..50 {
            let t = s.node_at_rank(rank);
            let (outcome, _) = s.search(s.labeled().tree().graph_id(t), 1);
            // 1-bounded: found exactly at optimal cost from the root.
            assert_eq!(outcome.cost(), s.labeled().tree().depth(t));
        }
    }

    #[test]
    fn caterpillar_searches_k4() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = gen::caterpillar(12, 5, WeightDist::UniformInt { lo: 1, hi: 4 }, &mut rng);
        let s = build(&g, NodeId(3), 4, 5);
        check_hit_guarantee(&s);
        check_miss_guarantee(&s, &[77777]);
    }

    #[test]
    fn bounded_search_misses_deep_nodes() {
        // With k = 3 and sigma = ceil(100^{1/3}) = 5, V_1 holds 6 nodes:
        // a 1-bounded search must miss nodes of rank >= 6.
        let mut rng = SmallRng::seed_from_u64(43);
        let g = gen::random_tree(100, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 6);
        let cap1 = s.naming().level_capacity(1);
        let mut missed = 0;
        for rank in cap1..100 {
            let t = s.node_at_rank(rank);
            let (outcome, _) = s.search(s.labeled().tree().graph_id(t), 1);
            if !outcome.is_found() {
                missed += 1;
            }
        }
        // Nodes outside V_1 may still be found via the root's hash
        // directory, but far-ranked ones must eventually be missed.
        assert!(missed > 0, "1-bounded search implausibly found every node");
    }

    #[test]
    fn rank_order_is_depth_order() {
        let mut rng = SmallRng::seed_from_u64(44);
        let g = gen::random_tree(60, WeightDist::UniformInt { lo: 1, hi: 5 }, &mut rng);
        let s = build(&g, NodeId(0), 3, 7);
        let mut prev = 0;
        for rank in 0..60 {
            let d = s.labeled().tree().depth(s.node_at_rank(rank));
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(s.rank(s.labeled().tree().root()), 0);
    }

    #[test]
    fn level_covering_bounds() {
        let mut rng = SmallRng::seed_from_u64(45);
        let g = gen::random_tree(80, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 8);
        // Root alone is covered by level 1.
        assert_eq!(s.level_covering([s.labeled().tree().root()]), 1);
        // Everything is covered by at most k.
        let all: Vec<TreeIx> = (0..80u32).collect();
        assert!(s.level_covering(all) <= 3);
    }

    #[test]
    fn storage_within_lemma_bound() {
        // Lemma 4: O(k · n^{1/k} · log² n) bits per node. Check against
        // the explicit constant-free form with a generous constant.
        let mut rng = SmallRng::seed_from_u64(46);
        let g = gen::random_tree(200, WeightDist::Unit, &mut rng);
        let k = 3;
        let s = build(&g, NodeId(0), k, 9);
        let m = 200u64;
        let sigma = s.sigma();
        let log = ceil_log2(m) as u64;
        let bound = 64 * (k as u64) * sigma * log * log;
        for t in 0..200u32 {
            assert!(
                s.node_bits(t) <= bound,
                "node {t} stores {} bits > bound {bound}",
                s.node_bits(t)
            );
        }
    }

    #[test]
    fn directory_budget_respected() {
        let mut rng = SmallRng::seed_from_u64(47);
        let g = gen::random_tree(300, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 10);
        for t in 0..300u32 {
            assert!(s.hash_dir(t).len() <= s.max_load());
            assert!(s.name_children(t).len() <= s.sigma() as usize);
        }
    }

    #[test]
    fn searches_deterministic() {
        let mut rng = SmallRng::seed_from_u64(48);
        let g = gen::random_tree(70, WeightDist::Unit, &mut rng);
        let s = build(&g, NodeId(0), 3, 11);
        for gid in [0u32, 10, 42, 9999] {
            let a = s.search(NodeId(gid), 3);
            let b = s.search(NodeId(gid), 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn wire_roundtrip_preserves_behavior() {
        let mut rng = SmallRng::seed_from_u64(49);
        let g = gen::random_tree(150, WeightDist::UniformInt { lo: 1, hi: 7 }, &mut rng);
        let s = build(&g, NodeId(0), 3, 12);
        let mut w = wire::Writer::new();
        s.to_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = wire::Reader::new(&bytes);
        let s2 = ErrorReportingTree::from_wire(&mut r).unwrap();
        assert!(r.is_empty(), "record fully consumed");
        assert_eq!(s2.sigma(), s.sigma());
        assert_eq!(s2.max_load(), s.max_load());
        assert_eq!(s2.hash_verified(), s.hash_verified());
        for t in 0..150u32 {
            assert_eq!(s2.rank(t), s.rank(t));
            assert_eq!(s2.node_bits(t), s.node_bits(t));
            assert_eq!(s2.name_children(t), s.name_children(t));
            assert_eq!(s2.hash_dir(t), s.hash_dir(t));
        }
        for gid in [0u32, 7, 42, 149, 5000] {
            for j in 1..=3 {
                assert_eq!(s2.search(NodeId(gid), j), s.search(NodeId(gid), j));
            }
        }
    }

    #[test]
    fn prefix_load_matches_reference_counting() {
        // The interned-code fast path must agree with a naive
        // HashMap-of-name-vectors count (the shape of the code it
        // replaced).
        use std::collections::HashMap;
        let mut rng = SmallRng::seed_from_u64(50);
        let g = gen::random_tree(90, WeightDist::Unit, &mut rng);
        let tree = spanning_tree(&g, NodeId(0));
        let order = tree.nodes_by_depth();
        let k = 3usize;
        let sigma = 5u64;
        let naming = Naming::new(tree.size(), sigma);
        let labeled = LabeledTree::new(tree);
        for seed in 0..4u64 {
            let h = PolyHash::new(PolyHash::degree_for(90), seed);
            let fast = ErrorReportingTree::max_prefix_load(&h, &labeled, &order, &naming, k, sigma);
            let mut slow = 0usize;
            for plen in 0..k.min(naming.max_level() + 1) {
                let vj = naming.level_capacity(plen + 1);
                let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
                for &t in order.iter().take(vj) {
                    let gid = labeled.tree().graph_id(t).0 as u64;
                    let digits = h.digits(gid, sigma, k);
                    *counts.entry(digits[..plen].to_vec()).or_insert(0) += 1;
                }
                slow = slow.max(counts.values().copied().max().unwrap_or(0));
            }
            assert_eq!(fast, slow, "seed={seed}");
        }
    }
}
