//! Σ-ary primary naming of tree nodes by distance rank (Lemma 4).
//!
//! Sort the tree's nodes by increasing distance from the root (ties by
//! id). The root gets the empty name; the next |Σ| nodes get 1-digit
//! names; the next |Σ|² get 2-digit names, and so on, where
//! |Σ| = ⌈n^{1/k}⌉. A node's name length therefore certifies its
//! distance rank: `V_j`, the nodes with ≤ j digits, are exactly the
//! `Σ_{t≤j} |Σ|^t` closest nodes to the root.

/// A primary name: between 0 (the root) and k digits, each in `0..sigma`.
pub type Name = Vec<u32>;

/// Assignment of Σ-ary names to ranks `0..count`.
#[derive(Clone, Debug)]
pub struct Naming {
    sigma: u64,
    count: usize,
    /// `level_end[l]` = number of nodes with names of length ≤ l
    /// (capped at `count`). `level_end\[0\] == 1` (just the root).
    level_end: Vec<usize>,
}

impl Naming {
    /// Plan names for `count` ranked nodes with alphabet size `sigma`.
    pub fn new(count: usize, sigma: u64) -> Self {
        assert!(count >= 1);
        assert!(sigma >= 1);
        let mut level_end = vec![1usize];
        let mut total = 1u128;
        let mut level_size = 1u128;
        let mut end = 1usize;
        while end < count {
            level_size = level_size.saturating_mul(sigma as u128);
            total = total.saturating_add(level_size);
            end = total.min(count as u128) as usize;
            level_end.push(end);
            // Guard: sigma == 1 grows levels by one node each; fine, but
            // cap the loop at count iterations via the level_end growth.
            if level_end.len() > count + 1 {
                break;
            }
        }
        Naming { sigma, count, level_end }
    }

    /// Alphabet size |Σ|.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Number of named nodes.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of digit levels in use (max name length).
    pub fn max_level(&self) -> usize {
        self.level_end.len() - 1
    }

    /// How many nodes have names of length ≤ `level` (the size of `V_level`).
    pub fn level_capacity(&self, level: usize) -> usize {
        if level >= self.level_end.len() {
            self.count
        } else {
            self.level_end[level]
        }
    }

    /// Name length of the node with distance rank `rank`.
    pub fn level_of_rank(&self, rank: usize) -> usize {
        assert!(rank < self.count);
        self.level_end.partition_point(|&e| e <= rank)
    }

    /// The name of the node with distance rank `rank`.
    pub fn name_of_rank(&self, rank: usize) -> Name {
        let level = self.level_of_rank(rank);
        if level == 0 {
            return Vec::new();
        }
        let base = self.level_end[level - 1];
        let mut offset = (rank - base) as u64;
        let mut name = vec![0u32; level];
        for d in name.iter_mut().rev() {
            *d = (offset % self.sigma) as u32;
            offset /= self.sigma;
        }
        debug_assert_eq!(offset, 0, "rank exceeds level capacity");
        name
    }

    /// Rank of the name-child `(name(rank), y)` — the node whose name is
    /// `rank`'s name with digit `y` appended — or `None` if no such node
    /// exists. Pure index arithmetic: names enumerate lexicographically
    /// within each level, so the child of `(level, offset)` under digit
    /// `y` sits at offset `offset·σ + y` of level + 1. Replaces
    /// `rank_of_name(name_of_rank(rank) ++ [y])` without materializing
    /// either name.
    pub fn child_rank(&self, rank: usize, y: u32) -> Option<usize> {
        if y as u64 >= self.sigma {
            return None;
        }
        let level = self.level_of_rank(rank);
        if level + 1 >= self.level_end.len() {
            return None;
        }
        let base = if level == 0 { 0 } else { self.level_end[level - 1] };
        let child_offset = (rank - base) as u64 * self.sigma + y as u64;
        let child = self.level_end[level] as u64 + child_offset;
        if child < self.level_capacity(level + 1) as u64 {
            Some(child as usize)
        } else {
            None
        }
    }

    /// Inverse of [`Naming::name_of_rank`]: the rank carrying `name`, or
    /// `None` if no such node exists (name beyond `count`).
    pub fn rank_of_name(&self, name: &[u32]) -> Option<usize> {
        let level = name.len();
        if level == 0 {
            return Some(0);
        }
        if level >= self.level_end.len() {
            return None;
        }
        let mut offset = 0u64;
        for &d in name {
            if d as u64 >= self.sigma {
                return None;
            }
            offset = offset * self.sigma + d as u64;
        }
        let rank = self.level_end[level - 1] as u64 + offset;
        if (rank as usize) < self.level_capacity(level) {
            Some(rank as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_empty() {
        let nm = Naming::new(10, 3);
        assert_eq!(nm.name_of_rank(0), Vec::<u32>::new());
        assert_eq!(nm.rank_of_name(&[]), Some(0));
        assert_eq!(nm.level_of_rank(0), 0);
    }

    #[test]
    fn level_sizes_follow_powers() {
        let nm = Naming::new(1 + 3 + 9 + 27, 3);
        assert_eq!(nm.level_capacity(0), 1);
        assert_eq!(nm.level_capacity(1), 4);
        assert_eq!(nm.level_capacity(2), 13);
        assert_eq!(nm.level_capacity(3), 40);
        assert_eq!(nm.max_level(), 3);
    }

    #[test]
    fn names_enumerate_lexicographically() {
        let nm = Naming::new(13, 3);
        assert_eq!(nm.name_of_rank(1), vec![0]);
        assert_eq!(nm.name_of_rank(3), vec![2]);
        assert_eq!(nm.name_of_rank(4), vec![0, 0]);
        assert_eq!(nm.name_of_rank(5), vec![0, 1]);
        assert_eq!(nm.name_of_rank(7), vec![1, 0]);
        assert_eq!(nm.name_of_rank(12), vec![2, 2]);
    }

    #[test]
    fn rank_name_roundtrip() {
        for sigma in [1u64, 2, 3, 5, 16] {
            let nm = Naming::new(100, sigma);
            for rank in 0..100 {
                let name = nm.name_of_rank(rank);
                assert_eq!(
                    nm.rank_of_name(&name),
                    Some(rank),
                    "sigma={sigma} rank={rank} name={name:?}"
                );
                assert_eq!(name.len(), nm.level_of_rank(rank));
            }
        }
    }

    #[test]
    fn child_rank_matches_name_arithmetic() {
        for sigma in [1u64, 2, 3, 5, 16, 1000] {
            for count in [1usize, 2, 6, 50, 100] {
                let nm = Naming::new(count, sigma);
                for rank in 0..count {
                    for y in 0..sigma.min(20) as u32 {
                        let mut name = nm.name_of_rank(rank);
                        name.push(y);
                        assert_eq!(
                            nm.child_rank(rank, y),
                            nm.rank_of_name(&name),
                            "sigma={sigma} count={count} rank={rank} y={y}"
                        );
                    }
                    assert_eq!(nm.child_rank(rank, sigma as u32), None);
                }
            }
        }
    }

    #[test]
    fn nonexistent_names_rejected() {
        let nm = Naming::new(6, 3); // levels: 1 + 3 + (2 of 9)
        assert_eq!(nm.rank_of_name(&[0, 2]), None); // only [0,0],[0,1] exist
        assert_eq!(nm.rank_of_name(&[9]), None); // digit out of alphabet
        assert_eq!(nm.rank_of_name(&[0, 0, 0]), None); // level too deep
    }

    #[test]
    fn sigma_one_chain() {
        // Degenerate alphabet (k >= log n case): each level holds one node.
        let nm = Naming::new(5, 1);
        for rank in 0..5 {
            assert_eq!(nm.level_of_rank(rank), rank);
            assert_eq!(nm.name_of_rank(rank), vec![0u32; rank]);
        }
    }

    #[test]
    fn big_sigma_single_level() {
        let nm = Naming::new(50, 1000);
        for rank in 1..50 {
            assert_eq!(nm.level_of_rank(rank), 1);
        }
        assert_eq!(nm.max_level(), 1);
    }
}
