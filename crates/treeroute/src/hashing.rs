//! Θ(log n)-wise independent hashing into Σ^k digit strings (Lemma 4).
//!
//! The paper requires a hash `h : V → Σ^k` such that for every prefix
//! length `j`, no `(j-1)`-digit prefix is shared by more than
//! `|Σ| · log n` of the nodes in `V_j`, and cites the classic
//! polynomial construction (Carter–Wegman '79, Motwani–Raghavan '95):
//! a degree-`Θ(log n)` polynomial over a prime field is Θ(log n)-wise
//! independent. We evaluate over the Mersenne prime `p = 2^61 − 1` and
//! expand the field element in base |Σ| to obtain the digits.
//!
//! The construction is randomized; callers *verify* the load property
//! (`Lemma 4` building code does) and re-seed on failure — the paper's
//! "with high probability" made effective.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime 2^61 − 1.
pub const FIELD_P: u64 = (1 << 61) - 1;

/// Degree-d polynomial hash over GF(p), p = 2^61 − 1.
#[derive(Clone, Debug)]
pub struct PolyHash {
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Fresh hash with `degree + 1` random coefficients. `degree` should
    /// be Θ(log n) for the independence the analysis needs.
    pub fn new(degree: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let coeffs = (0..=degree).map(|_| rng.gen_range(0..FIELD_P)).collect();
        PolyHash { coeffs }
    }

    /// Conventional degree for an n-element universe: `ceil(log2 n) + 2`.
    pub fn degree_for(n: usize) -> usize {
        (graphkit::ids::ceil_log2(n.max(2) as u64) + 2) as usize
    }

    /// Evaluate the polynomial at `x` (Horner over GF(p)).
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % FIELD_P;
        let mut acc: u64 = 0;
        for &c in &self.coeffs {
            acc = mul_mod(acc, x);
            acc = add_mod(acc, c);
        }
        acc
    }

    /// Hash `x` to `k` digits, each in `0..sigma` (most significant
    /// first). Requires `sigma^k ≤ p` so digits are near-uniform.
    pub fn digits(&self, x: u64, sigma: u64, k: usize) -> Vec<u32> {
        assert!(sigma >= 1);
        let mut v = self.eval(x);
        // lint:allow(no-alloc-in-route): k-word digit buffer (k ≤ ~8) allocated once per bounded search, returned to the caller
        let mut out = vec![0u32; k];
        for d in out.iter_mut().rev() {
            *d = (v % sigma) as u32;
            v /= sigma;
        }
        out
    }

    /// Allocation-free variant of [`PolyHash::digits`]: write `out.len()`
    /// digits (most significant first) into `out`. The hot path of bulk
    /// directory building, where a `Vec` per hashed id would dominate.
    pub fn digits_into(&self, x: u64, sigma: u64, out: &mut [u32]) {
        assert!(sigma >= 1);
        let mut v = self.eval(x);
        for d in out.iter_mut().rev() {
            *d = (v % sigma) as u32;
            v /= sigma;
        }
    }

    /// The coefficient vector (for serialization).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Rebuild from a serialized coefficient vector.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        assert!(!coeffs.is_empty(), "polynomial needs at least one coefficient");
        assert!(coeffs.iter().all(|&c| c < FIELD_P), "coefficient outside GF(p)");
        PolyHash { coeffs }
    }

    /// Bits to store the hash description (the coefficient vector) —
    /// Θ(log² n) when degree = Θ(log n).
    pub fn storage_bits(&self) -> u64 {
        self.coeffs.len() as u64 * 61
    }
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2^61, no overflow in u64
    if s >= FIELD_P {
        s - FIELD_P
    } else {
        s
    }
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    (((a as u128) * (b as u128)) % (FIELD_P as u128)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic() {
        assert_eq!(add_mod(FIELD_P - 1, 1), 0);
        assert_eq!(add_mod(FIELD_P - 1, 2), 1);
        assert_eq!(mul_mod(FIELD_P - 1, 2), FIELD_P - 2); // (-1)*2 = -2
        assert_eq!(mul_mod(0, 12345), 0);
    }

    #[test]
    fn eval_is_deterministic_and_seeded() {
        let h1 = PolyHash::new(8, 42);
        let h2 = PolyHash::new(8, 42);
        let h3 = PolyHash::new(8, 43);
        assert_eq!(h1.eval(999), h2.eval(999));
        assert_ne!(h1.eval(999), h3.eval(999)); // overwhelmingly likely
    }

    #[test]
    fn digits_in_range_and_consistent() {
        let h = PolyHash::new(10, 7);
        for x in 0..200u64 {
            let d = h.digits(x, 16, 5);
            assert_eq!(d.len(), 5);
            assert!(d.iter().all(|&x| x < 16));
            assert_eq!(d, h.digits(x, 16, 5));
        }
    }

    #[test]
    fn digits_roughly_uniform() {
        let h = PolyHash::new(PolyHash::degree_for(4096), 11);
        let sigma = 8u64;
        let mut counts = vec![0usize; sigma as usize];
        let samples = 8000u64;
        for x in 0..samples {
            counts[h.digits(x, sigma, 4)[0] as usize] += 1;
        }
        let expect = samples as f64 / sigma as f64;
        for &c in &counts {
            assert!(
                (c as f64) > 0.5 * expect && (c as f64) < 1.5 * expect,
                "first digit skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn degree_for_scales() {
        assert!(PolyHash::degree_for(2) >= 3);
        assert!(PolyHash::degree_for(1 << 20) >= 22);
    }

    #[test]
    fn storage_bits_matches_degree() {
        let h = PolyHash::new(12, 1);
        assert_eq!(h.storage_bits(), 13 * 61);
    }

    #[test]
    fn single_digit_base_one_is_zero() {
        let h = PolyHash::new(4, 9);
        assert_eq!(h.digits(55, 1, 3), vec![0, 0, 0]);
    }
}
