//! Labeled (topology-dependent-name) tree routing — the paper's Lemma 5
//! (Fraigniaud–Gavoille ICALP'01, Thorup–Zwick SPAA'01).
//!
//! Given a rooted weighted tree, every node gets a *label*; a message
//! carrying the destination label is forwarded along the unique tree
//! path using only the local node's O(log n)-bit routing info plus the
//! label. Our variant is the heavy-path scheme:
//!
//! * nodes are numbered by heavy-first DFS, so each subtree is a
//!   contiguous interval;
//! * per-node info `µ(T,u)`: own interval, heavy-child interval, light
//!   depth — O(log n) bits;
//! * label `λ(T,v)`: v's DFS number plus one entry per *light* edge on
//!   the root→v path — O(log² n) bits worst case.
//!
//! Lemma 5 as stated trades storage `O(m^{1/k} log m)` against labels
//! `O(k log m)`; our point on the frontier has strictly smaller storage
//! (`O(log m)`) and `O(log² m)` labels, which keeps every storage bound
//! downstream within Theorem 1's `O(k² n^{1/k} log³ n)` (see DESIGN.md).

use graphkit::bits::{bits_for_node, StorageCost};
use graphkit::wire::{self, Reader, Writer};
use graphkit::{Cost, Tree, TreeIx};
use std::io;

/// One light edge on the root→v path: the light child entered, plus its
/// DFS number (used to sanity-check foreign labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LightHop {
    /// DFS number of the light child entered.
    pub child_dfs: u32,
    /// Physical port: the tree index of that child.
    pub child: TreeIx,
}

/// Destination label `λ(T,v)`, owned. Inside a [`LabeledTree`] labels
/// live in one contiguous hop arena and are handed out as borrowing
/// [`LabelRef`]s; this owned form exists for callers that persist a
/// label beyond the tree's lifetime (message headers, baselines).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteLabel {
    /// DFS number of the destination.
    pub dfs: u32,
    /// Light edges on the root→destination path, in order.
    pub light_path: Vec<LightHop>,
}

impl RouteLabel {
    /// Borrow as a [`LabelRef`] for routing calls.
    pub fn as_ref(&self) -> LabelRef<'_> {
        LabelRef { dfs: self.dfs, light_path: &self.light_path }
    }
}

/// Borrowed destination label: a view into the tree's shared hop arena
/// (or into an owned [`RouteLabel`]). `Copy`, 16 bytes — routing with
/// one allocates nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelRef<'a> {
    /// DFS number of the destination.
    pub dfs: u32,
    /// Light edges on the root→destination path, in order.
    pub light_path: &'a [LightHop],
}

impl LabelRef<'_> {
    /// Copy into an owned [`RouteLabel`].
    pub fn to_owned(self) -> RouteLabel {
        RouteLabel { dfs: self.dfs, light_path: self.light_path.to_vec() }
    }
}

/// Per-node routing information `µ(T,u)`.
#[derive(Clone, Debug)]
pub struct NodeLocal {
    /// Own DFS number (= interval start).
    pub dfs_in: u32,
    /// Interval end, exclusive: the subtree of `u` is `[dfs_in, dfs_out)`.
    pub dfs_out: u32,
    /// Heavy child's `(dfs_in, dfs_out, tree index)`, absent at leaves.
    pub heavy: Option<(u32, u32, TreeIx)>,
    /// Number of light edges on the root→u path.
    pub light_depth: u32,
}

/// Outcome of a single local forwarding decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The current node is the destination.
    Deliver,
    /// Forward to this tree neighbor.
    Forward(TreeIx),
    /// The label does not belong to this tree (or is corrupt).
    NotInTree,
}

/// The plain-old-data half of a [`LabeledTree`]: the physical tree plus
/// the flat µ/λ arenas the read path routes against. Everything here is
/// CSR-shaped — no per-node allocations — so a store serializes as a
/// handful of flat arrays and a snapshot load is one pass back into the
/// same shape, no preprocessing rerun.
///
/// Labels are stored flat: one hop arena (`light_hops`) plus an offset
/// table (`light_off`), CSR-style, instead of a `Vec<LightHop>` per
/// node — label storage is two allocations per tree regardless of size,
/// and a node's label is a 16-byte [`LabelRef`] view.
#[derive(Clone, Debug)]
pub struct LabeledStore {
    tree: Tree,
    locals: Vec<NodeLocal>,
    /// CSR offsets: node `t`'s light path is
    /// `light_hops[light_off[t]..light_off[t + 1]]`.
    light_off: Vec<u32>,
    light_hops: Vec<LightHop>,
    /// `dfs_order[d]` = tree index of the node with DFS number `d`.
    dfs_order: Vec<TreeIx>,
}

impl LabeledStore {
    /// The underlying physical tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Serialize as flat arrays (structure-of-arrays for the locals,
    /// `u32::MAX` heavy-child sentinel for leaves).
    pub fn to_wire(&self, w: &mut Writer) {
        wire::write_tree(w, &self.tree);
        let m = self.tree.size();
        let mut dfs_in = Vec::with_capacity(m);
        let mut dfs_out = Vec::with_capacity(m);
        let mut light_depth = Vec::with_capacity(m);
        let mut heavy = Vec::with_capacity(m);
        for l in &self.locals {
            dfs_in.push(l.dfs_in);
            dfs_out.push(l.dfs_out);
            light_depth.push(l.light_depth);
            let (hi, ho, hc) = l.heavy.unwrap_or((0, 0, u32::MAX));
            heavy.push(hi);
            heavy.push(ho);
            heavy.push(hc);
        }
        w.slice_u32(&dfs_in);
        w.slice_u32(&dfs_out);
        w.slice_u32(&light_depth);
        w.slice_u32(&heavy);
        w.slice_u32(&self.light_off);
        let hops: Vec<(u32, u32)> =
            self.light_hops.iter().map(|h| (h.child_dfs, h.child)).collect();
        w.slice_pairs(&hops);
        w.slice_u32(&self.dfs_order);
    }

    /// Inverse of [`LabeledStore::to_wire`]: one decode pass plus O(m)
    /// invariant checks, so a corrupt record errors instead of leaving
    /// out-of-bounds indices for the read path to trip over.
    // lint:allow-fn(panic-free-serve): validate-then-index — every array is length- and range-checked before the indexing passes below
    pub fn from_wire(r: &mut Reader) -> io::Result<Self> {
        use wire::invalid;
        let tree = wire::read_tree(r)?;
        let m = tree.size();
        let dfs_in = r.slice_u32()?;
        let dfs_out = r.slice_u32()?;
        let light_depth = r.slice_u32()?;
        let heavy = r.slice_u32()?;
        let light_off = r.slice_u32()?;
        let hops = r.slice_pairs()?;
        let dfs_order = r.slice_u32()?;
        if dfs_in.len() != m
            || dfs_out.len() != m
            || light_depth.len() != m
            || heavy.len() != 3 * m
            || light_off.len() != m + 1
            || dfs_order.len() != m
        {
            return Err(invalid("labeled store arrays have mismatched lengths"));
        }
        // dfs_order must be a permutation inverse to dfs_in.
        for (t, &d) in dfs_in.iter().enumerate() {
            if d as usize >= m || dfs_order[d as usize] as usize != t {
                return Err(invalid("labeled store DFS order is not a permutation"));
            }
        }
        if light_off[0] != 0 || light_off[m] as usize != hops.len() {
            return Err(invalid("labeled store light-path arena bounds"));
        }
        let mut locals = Vec::with_capacity(m);
        for t in 0..m {
            if dfs_out[t] <= dfs_in[t] || dfs_out[t] as usize > m {
                return Err(invalid("labeled store subtree interval out of range"));
            }
            if light_off[t + 1] < light_off[t] || light_off[t + 1] - light_off[t] != light_depth[t]
            {
                return Err(invalid("labeled store light offsets disagree with depths"));
            }
            let hc = heavy[3 * t + 2];
            let h = if hc == u32::MAX {
                None
            } else if (hc as usize) < m {
                Some((heavy[3 * t], heavy[3 * t + 1], hc))
            } else {
                return Err(invalid("labeled store heavy child out of range"));
            };
            locals.push(NodeLocal {
                dfs_in: dfs_in[t],
                dfs_out: dfs_out[t],
                heavy: h,
                light_depth: light_depth[t],
            });
        }
        let light_hops: Vec<LightHop> =
            hops.into_iter().map(|(child_dfs, child)| LightHop { child_dfs, child }).collect();
        if light_hops.iter().any(|h| h.child as usize >= m) {
            return Err(invalid("labeled store light hop out of range"));
        }
        Ok(LabeledStore { tree, locals, light_off, light_hops, dfs_order })
    }
}

/// A tree equipped with the labeled routing scheme: the thin read-path
/// half over a [`LabeledStore`]. [`LabeledTree::new`] preprocesses a
/// fresh tree; [`LabeledTree::from_store`] wraps a deserialized store
/// with zero rebuild — the same routing code serves both.
#[derive(Clone, Debug)]
pub struct LabeledTree {
    store: LabeledStore,
}

impl LabeledTree {
    /// Preprocess `tree` for labeled routing. O(m) time.
    pub fn new(tree: Tree) -> Self {
        let m = tree.size();
        // Subtree sizes by iterative post-order.
        let mut sizes = vec![1u32; m];
        let order = post_order(&tree);
        for &t in &order {
            if let Some(p) = tree.parent(t) {
                sizes[p as usize] += sizes[t as usize];
            }
        }
        // Heavy child per node: max subtree size, ties to smaller index.
        let mut heavy_child: Vec<Option<TreeIx>> = vec![None; m];
        for t in 0..m as u32 {
            let mut best: Option<TreeIx> = None;
            for &c in tree.children(t) {
                let better = match best {
                    None => true,
                    Some(b) => {
                        sizes[c as usize] > sizes[b as usize]
                            || (sizes[c as usize] == sizes[b as usize] && c < b)
                    }
                };
                if better {
                    best = Some(c);
                }
            }
            heavy_child[t as usize] = best;
        }
        // Heavy-first DFS: assign dfs_in/out and light depths. Light
        // paths are NOT materialized per node here; they land in one
        // shared arena below.
        let mut locals: Vec<NodeLocal> = (0..m)
            .map(|_| NodeLocal { dfs_in: 0, dfs_out: 0, heavy: None, light_depth: 0 })
            .collect();
        let mut dfs_order = vec![0 as TreeIx; m];
        let mut counter: u32 = 0;
        // Stack carries (node, light depth).
        let mut stack: Vec<(TreeIx, u32)> = vec![(tree.root(), 0)];
        while let Some((t, ld)) = stack.pop() {
            let dfs = counter;
            counter += 1;
            dfs_order[dfs as usize] = t;
            locals[t as usize].dfs_in = dfs;
            locals[t as usize].light_depth = ld;
            // Push children: light ones (reverse order) then heavy, so the
            // heavy child is visited first and gets dfs_in + 1.
            let hc = heavy_child[t as usize];
            let mut lights: Vec<TreeIx> =
                tree.children(t).iter().copied().filter(|&c| Some(c) != hc).collect();
            lights.sort_unstable_by(|a, b| b.cmp(a)); // reversed push order
            for c in lights {
                stack.push((c, ld + 1));
            }
            if let Some(h) = hc {
                stack.push((h, ld));
            }
        }
        debug_assert_eq!(counter as usize, m);
        // dfs_out by post-order accumulation: out = max over subtree + 1.
        let mut outs: Vec<u32> = locals.iter().map(|l| l.dfs_in + 1).collect();
        for &t in &order {
            if let Some(p) = tree.parent(t) {
                outs[p as usize] = outs[p as usize].max(outs[t as usize]);
            }
        }
        for t in 0..m {
            locals[t].dfs_out = outs[t];
        }
        // Fill heavy intervals.
        for t in 0..m as u32 {
            if let Some(h) = heavy_child[t as usize] {
                locals[t as usize].heavy =
                    Some((locals[h as usize].dfs_in, locals[h as usize].dfs_out, h));
            }
        }
        // Light-path arena: a node's path is its parent's path plus one
        // hop if the edge from the parent is light, so path length ==
        // light_depth and the CSR offsets are a prefix sum. Fill parent
        // before child (preorder walk): copy the parent's slice, then
        // append the light hop. Same O(m log m) total size as before,
        // but in exactly two allocations.
        let mut light_off = vec![0u32; m + 1];
        for t in 0..m {
            light_off[t + 1] = light_off[t] + locals[t].light_depth;
        }
        let mut light_hops = vec![LightHop { child_dfs: 0, child: 0 }; light_off[m] as usize];
        let mut walk = vec![tree.root()];
        while let Some(t) = walk.pop() {
            let (ps, pe) = (light_off[t as usize] as usize, light_off[t as usize + 1] as usize);
            for &c in tree.children(t) {
                let cs = light_off[c as usize] as usize;
                light_hops.copy_within(ps..pe, cs);
                if heavy_child[t as usize] != Some(c) {
                    light_hops[cs + (pe - ps)] =
                        LightHop { child_dfs: locals[c as usize].dfs_in, child: c };
                }
                walk.push(c);
            }
        }
        LabeledTree { store: LabeledStore { tree, locals, light_off, light_hops, dfs_order } }
    }

    /// Wrap an already-built (typically snapshot-loaded) store. No
    /// preprocessing happens here — the store *is* the routing state.
    pub fn from_store(store: LabeledStore) -> Self {
        LabeledTree { store }
    }

    /// The plain-old-data half (for serialization).
    pub fn store(&self) -> &LabeledStore {
        &self.store
    }

    /// The underlying physical tree.
    pub fn tree(&self) -> &Tree {
        &self.store.tree
    }

    /// Label of tree node `t`: a zero-copy view into the hop arena.
    pub fn label(&self, t: TreeIx) -> LabelRef<'_> {
        let s = &self.store;
        let (a, b) = (s.light_off[t as usize] as usize, s.light_off[t as usize + 1] as usize);
        LabelRef { dfs: s.locals[t as usize].dfs_in, light_path: &s.light_hops[a..b] }
    }

    /// Local routing info of tree node `t`.
    pub fn local(&self, t: TreeIx) -> &NodeLocal {
        &self.store.locals[t as usize]
    }

    /// Tree node with DFS number `d`.
    pub fn node_at_dfs(&self, d: u32) -> TreeIx {
        self.store.dfs_order[d as usize]
    }

    /// One forwarding decision at `at` toward `label` — uses only
    /// `µ(T,at)` and the label (plus physical ports).
    pub fn route_step(&self, at: TreeIx, label: LabelRef<'_>) -> Step {
        // An out-of-range position (corrupt caller state) is "not in
        // this tree", not a panic.
        let Some(me) = self.store.locals.get(at as usize) else {
            return Step::NotInTree;
        };
        if label.dfs == me.dfs_in {
            return Step::Deliver;
        }
        if label.dfs < me.dfs_in || label.dfs >= me.dfs_out {
            // Destination outside my subtree: go up.
            return match self.store.tree.parent(at) {
                Some(p) => Step::Forward(p),
                None => Step::NotInTree,
            };
        }
        if let Some((hi, ho, hc)) = me.heavy {
            if label.dfs >= hi && label.dfs < ho {
                return Step::Forward(hc);
            }
        }
        // Destination is in one of my light subtrees; the light path
        // entry at index `light_depth` is the edge leaving me.
        match label.light_path.get(me.light_depth as usize) {
            Some(hop) if hop.child_dfs > me.dfs_in && hop.child_dfs < me.dfs_out => {
                Step::Forward(hop.child)
            }
            _ => Step::NotInTree,
        }
    }

    /// Route from `from` to the node carrying `label`. Returns the visited
    /// tree path (inclusive) and its cost, or `None` for foreign labels.
    pub fn route(&self, from: TreeIx, label: LabelRef<'_>) -> Option<(Vec<TreeIx>, Cost)> {
        let mut at = from;
        // lint:allow(no-alloc-in-route): the returned walk owns its path; one Vec per tree route is the API
        let mut path = vec![at];
        let mut cost: Cost = 0;
        // A tree walk never revisits nodes; size() + 1 steps means the
        // label's invariants are broken (corrupt light path). Treat it
        // like any other foreign label — undeliverable, not a panic.
        for _ in 0..=self.store.tree.size() {
            match self.route_step(at, label) {
                Step::Deliver => return Some((path, cost)),
                Step::NotInTree => return None,
                Step::Forward(next) => {
                    cost += edge_weight(&self.store.tree, at, next);
                    at = next;
                    path.push(at);
                }
            }
        }
        None
    }

    /// Max light-path length over all labels (≤ ceil(log2 m)).
    pub fn max_light_depth(&self) -> u32 {
        self.store.locals.iter().map(|l| l.light_depth).max().unwrap_or(0)
    }

    /// Storage bits of `µ(T,t)` for one node.
    pub fn local_bits(&self, t: TreeIx) -> u64 {
        let b = bits_for_node(self.store.tree.size());
        // dfs_in + dfs_out + heavy option (2 interval ends + port) + light depth.
        let heavy = 1 + if self.store.locals[t as usize].heavy.is_some() { 3 * b } else { 0 };
        2 * b + heavy + b
    }

    /// Storage bits of `λ(T,t)`.
    pub fn label_bits(&self, t: TreeIx) -> u64 {
        let b = bits_for_node(self.store.tree.size());
        let off = &self.store.light_off;
        let hops = (off[t as usize + 1] - off[t as usize]) as u64;
        b + hops * 2 * b + bits_for_node(self.store.tree.size()) // dfs + hops + length field
    }
}

impl StorageCost for RouteLabel {
    fn storage_bits(&self) -> u64 {
        // Conservative: 32-bit fields; schemes that know their tree size
        // should prefer `LabeledTree::label_bits`.
        32 + self.light_path.len() as u64 * 64
    }
}

/// Weight of the tree edge between adjacent nodes `a` and `b`.
fn edge_weight(tree: &Tree, a: TreeIx, b: TreeIx) -> Cost {
    if tree.parent(a) == Some(b) {
        tree.parent_weight(a)
    } else {
        debug_assert_eq!(tree.parent(b), Some(a), "route step between non-adjacent nodes");
        tree.parent_weight(b)
    }
}

/// Iterative post-order (children before parents).
fn post_order(tree: &Tree) -> Vec<TreeIx> {
    let m = tree.size();
    let mut order = Vec::with_capacity(m);
    let mut stack = vec![tree.root()];
    while let Some(t) = stack.pop() {
        order.push(t);
        stack.extend_from_slice(tree.children(t));
    }
    order.reverse(); // reverse preorder = valid post-order for size sums
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{self, WeightDist};
    use graphkit::{dijkstra, Graph, NodeId, Tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spanning_tree(g: &Graph, root: NodeId) -> Tree {
        let sp = dijkstra::dijkstra(g, root);
        Tree::from_sssp(g, &sp, g.nodes())
    }

    fn check_all_pairs(lt: &LabeledTree) {
        let m = lt.tree().size() as u32;
        for s in 0..m {
            for t in 0..m {
                let (path, cost) = lt.route(s, lt.label(t)).expect("in-tree label must route");
                assert_eq!(*path.first().unwrap(), s);
                assert_eq!(*path.last().unwrap(), t);
                // Optimality: cost equals the unique tree distance.
                assert_eq!(cost, lt.tree().tree_distance(s, t), "suboptimal {s}->{t}");
                // Path length equals tree path length (no detours).
                assert_eq!(path.len(), lt.tree().tree_path(s, t).len());
            }
        }
    }

    #[test]
    fn path_tree_routes_exactly() {
        let g = gen::path(10, 3);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        check_all_pairs(&lt);
    }

    #[test]
    fn star_routes_exactly() {
        let g = gen::star(12, 2);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        check_all_pairs(&lt);
    }

    #[test]
    fn balanced_tree_routes_exactly() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = gen::balanced_tree(3, 3, WeightDist::UniformInt { lo: 1, hi: 9 }, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        check_all_pairs(&lt);
    }

    #[test]
    fn random_trees_route_exactly() {
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::random_tree(60, WeightDist::UniformInt { lo: 1, hi: 20 }, &mut rng);
            // Root somewhere non-trivial.
            let lt = LabeledTree::new(spanning_tree(&g, NodeId(7)));
            check_all_pairs(&lt);
        }
    }

    #[test]
    fn caterpillar_routes_exactly() {
        let mut rng = SmallRng::seed_from_u64(32);
        let g = gen::caterpillar(8, 4, WeightDist::Unit, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        check_all_pairs(&lt);
    }

    #[test]
    fn dfs_numbers_are_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(33);
        let g = gen::random_tree(100, WeightDist::Unit, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        let mut seen = [false; 100];
        for t in 0..100u32 {
            let d = lt.local(t).dfs_in as usize;
            assert!(!seen[d]);
            seen[d] = true;
            assert_eq!(lt.node_at_dfs(d as u32), t);
        }
    }

    #[test]
    fn subtree_intervals_nest() {
        let mut rng = SmallRng::seed_from_u64(34);
        let g = gen::random_tree(80, WeightDist::Unit, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        for t in 0..80u32 {
            let me = lt.local(t);
            assert!(me.dfs_in < me.dfs_out);
            for &c in lt.tree().children(t) {
                let ch = lt.local(c);
                assert!(me.dfs_in < ch.dfs_in && ch.dfs_out <= me.dfs_out);
            }
            if let Some((hi, ho, hc)) = me.heavy {
                assert_eq!(hi, me.dfs_in + 1, "heavy child must be visited first");
                assert_eq!(lt.local(hc).dfs_in, hi);
                assert_eq!(lt.local(hc).dfs_out, ho);
            }
        }
    }

    #[test]
    fn light_depth_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(35);
        let g = gen::random_tree(512, WeightDist::Unit, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        // Heavy-path decomposition: light depth <= log2(m).
        assert!(lt.max_light_depth() <= 9, "light depth {}", lt.max_light_depth());
    }

    #[test]
    fn foreign_label_rejected() {
        let g1 = gen::path(6, 1);
        let lt1 = LabeledTree::new(spanning_tree(&g1, NodeId(0)));
        // A label with a DFS number past the tree size cannot route.
        let bogus = RouteLabel { dfs: 99, light_path: vec![] };
        assert_eq!(lt1.route(3, bogus.as_ref()), None);
    }

    #[test]
    fn singleton_tree_delivers_immediately() {
        let t = Tree::from_parents(vec![0], vec![u32::MAX], vec![0]);
        let lt = LabeledTree::new(t);
        let (path, cost) = lt.route(0, lt.label(0)).unwrap();
        assert_eq!(path, vec![0]);
        assert_eq!(cost, 0);
    }

    #[test]
    fn store_wire_roundtrip_routes_identically() {
        let mut rng = SmallRng::seed_from_u64(37);
        let g = gen::random_tree(90, WeightDist::UniformInt { lo: 1, hi: 9 }, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        let mut w = graphkit::wire::Writer::new();
        lt.store().to_wire(&mut w);
        let bytes = w.into_bytes();
        let store = LabeledStore::from_wire(&mut graphkit::wire::Reader::new(&bytes)).unwrap();
        let lt2 = LabeledTree::from_store(store);
        for s in 0..lt.tree().size() as u32 {
            for t in 0..lt.tree().size() as u32 {
                assert_eq!(lt2.route(s, lt2.label(t)), lt.route(s, lt.label(t)));
            }
        }
        // Truncations error rather than panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LabeledStore::from_wire(&mut graphkit::wire::Reader::new(&bytes[..cut])).is_err()
            );
        }
    }

    #[test]
    fn storage_bits_reasonable() {
        let mut rng = SmallRng::seed_from_u64(36);
        let g = gen::random_tree(256, WeightDist::Unit, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        let b = graphkit::bits::bits_for_node(256); // 8
        for t in 0..256u32 {
            // µ is O(log m): at most 6 node-id fields + flag.
            assert!(lt.local_bits(t) <= 6 * b + 1);
            // λ is O(log^2 m): light depth * 2 ids + 2 ids.
            assert!(lt.label_bits(t) <= (2 * lt.max_light_depth() as u64 + 2) * b + 64);
        }
    }
}
