#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # treeroute — tree routing schemes
//!
//! The three tree-routing building blocks of the AGM SPAA'06 scheme:
//!
//! * [`labeled`] — exact routing with topology-dependent labels
//!   (Lemma 5; heavy-path variant of Fraigniaud–Gavoille /
//!   Thorup–Zwick);
//! * [`laing`] — name-independent *error-reporting* routing with
//!   j-bounded searches (Lemma 4), used on the landmark trees of sparse
//!   levels;
//! * [`cover_router`] — name-independent routing with a fixed
//!   `4·rad + 2k·maxE` budget (Lemma 7), used on the cover trees of
//!   dense levels;
//!
//! plus the shared machinery: [`names`] (Σ-ary distance-rank naming)
//! and [`hashing`] (Θ(log n)-wise independent polynomial hashing).

pub mod cover_router;
pub mod hashing;
pub mod labeled;
pub mod laing;
pub mod names;

pub use cover_router::{CoverOutcome, CoverStore, CoverTreeRouter};
pub use hashing::PolyHash;
pub use labeled::{LabelRef, LabeledStore, LabeledTree, RouteLabel, Step};
pub use laing::{ErrorReportingTree, ErtStore, SearchOutcome};
pub use names::{Name, Naming};
