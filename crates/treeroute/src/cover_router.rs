//! Name-independent error-reporting routing on *cover trees* — the
//! paper's Lemma 7 (the AGM DISC'04 single-tree scheme with the
//! Lemma 5 labels).
//!
//! Unlike the Lemma 4 scheme (which trades a `j`-bounded search depth
//! against cost), this scheme pays a *fixed* cost of at most
//! `4·rad(T) + 2k·maxE(T)` per lookup, hit or miss:
//!
//! 1. climb from the source to the root (≤ rad);
//! 2. descend to the *directory node* at DFS position `h(target) mod m`
//!    (≤ rad along the path, plus at most `2·maxE` per B-tree sibling
//!    correction at high-degree nodes, at most `k` of them per such
//!    node — the `2k·maxE` term);
//! 3. the directory node stores the labels of every tree node hashing
//!    to its position: route to the target by label (≤ 2·rad), or — for
//!    unknown names — back to the source by the label carried in the
//!    header (≤ 2·rad), reporting failure.
//!
//! Per-node storage is O(σ·log² m) bits: two guide tables of ≤ s =
//! σ·⌈log m⌉ entries, the hash-bucket labels (expected O(1), verified
//! O(log m)), and the labeled-routing info.

use graphkit::bits::{bits_for_node, StorageCost};
use graphkit::ids::ceil_log2;
use graphkit::wire::{self, Reader, Writer};
use graphkit::{Cost, NodeId, Tree, TreeIx};
use std::io;

use crate::hashing::PolyHash;
use crate::labeled::{LabeledStore, LabeledTree};

/// Outcome of a cover-tree lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverOutcome {
    /// Delivered to the target at total weighted cost `cost`.
    Found {
        /// Total weighted cost of the walk.
        cost: Cost,
        /// Tree index of the delivery node.
        delivered_at: TreeIx,
    },
    /// Target not in this tree; the message returned to the source
    /// having paid `cost` (closed path).
    NotFound {
        /// Total cost of the closed path back to the source.
        cost: Cost,
    },
}

impl CoverOutcome {
    /// Total cost paid.
    pub fn cost(&self) -> Cost {
        match *self {
            CoverOutcome::Found { cost, .. } => cost,
            CoverOutcome::NotFound { cost } => cost,
        }
    }

    /// Did the lookup deliver?
    pub fn is_found(&self) -> bool {
        matches!(self, CoverOutcome::Found { .. })
    }
}

/// One level of a sibling-group guide: sampled boundaries over the DFS
/// range `[start, end)` this guide is responsible for. Build-time
/// scratch only — the frozen form lives in [`CoverStore`]'s arenas.
#[derive(Clone, Debug)]
struct Guide {
    start: u32,
    end: u32,
    entries: Vec<(u32, TreeIx)>,
}

/// Per-node build scratch of the Lemma 7 scheme (beyond `µ(T,u)`):
/// the allocation-per-node form the guide recursion naturally produces,
/// flattened into [`CoverStore`] CSR arenas before routing.
#[derive(Clone, Debug, Default)]
struct CoverNode {
    /// Sampled `(dfs_start, child)` boundaries over this node's children
    /// (≤ s entries; group leaders when the degree exceeds s).
    child_guide: Vec<(u32, TreeIx)>,
    /// Guides for each sibling group this node leads, one per nesting
    /// level (a group leader also leads its own sub-group, so the
    /// tightest guide covering a position always makes progress).
    sibling_guides: Vec<Guide>,
    /// Directory bucket: tree nodes whose hash position equals this
    /// node's DFS number (labels resolve through the shared hop arena).
    bucket: Vec<(u32, TreeIx)>,
}

/// The plain-old-data half of a [`CoverTreeRouter`]: labeled store plus
/// every Lemma-7 table in CSR arenas (child guides, sibling guides with
/// a per-guide entry arena, directory buckets). Snapshot-serializable
/// and routable as-is — loading performs no guide or bucket rebuild.
#[derive(Clone, Debug)]
pub struct CoverStore {
    labeled: LabeledTree,
    hash: PolyHash,
    /// Guide fanout s = σ·⌈log m⌉.
    fanout: usize,
    /// Worst-case B-tree depth over all nodes (reported by experiments).
    max_guide_depth: u32,
    /// Child guides, CSR by tree index.
    cg_off: Vec<u32>,
    cg: Vec<(u32, TreeIx)>,
    /// Sibling guides: node `t` leads guides `sg_off[t]..sg_off[t+1]`;
    /// guide `i` covers DFS range `sg_bounds[i]` with entries
    /// `sge[sge_off[i]..sge_off[i+1]]`.
    sg_off: Vec<u32>,
    sg_bounds: Vec<(u32, u32)>,
    sge_off: Vec<u32>,
    sge: Vec<(u32, TreeIx)>,
    /// Directory buckets, CSR by tree index.
    bk_off: Vec<u32>,
    bk: Vec<(u32, TreeIx)>,
}

impl CoverStore {
    fn from_nodes(
        labeled: LabeledTree,
        hash: PolyHash,
        fanout: usize,
        max_guide_depth: u32,
        nodes: Vec<CoverNode>,
    ) -> Self {
        let m = nodes.len();
        let mut cg_off = vec![0u32; m + 1];
        let mut sg_off = vec![0u32; m + 1];
        let mut bk_off = vec![0u32; m + 1];
        let mut cg = Vec::new();
        let mut sg_bounds = Vec::new();
        let mut sge_off = vec![0u32];
        let mut sge = Vec::new();
        let mut bk = Vec::new();
        for (t, node) in nodes.into_iter().enumerate() {
            cg.extend_from_slice(&node.child_guide);
            cg_off[t + 1] = cg.len() as u32;
            for g in node.sibling_guides {
                sg_bounds.push((g.start, g.end));
                sge.extend_from_slice(&g.entries);
                sge_off.push(sge.len() as u32);
            }
            sg_off[t + 1] = sg_bounds.len() as u32;
            bk.extend_from_slice(&node.bucket);
            bk_off[t + 1] = bk.len() as u32;
        }
        CoverStore {
            labeled,
            hash,
            fanout,
            max_guide_depth,
            cg_off,
            cg,
            sg_off,
            sg_bounds,
            sge_off,
            sge,
            bk_off,
            bk,
        }
    }

    // lint:allow-fn(panic-free-serve): validate-then-index — from_wire checks the CSR offsets are monotone and in-bounds for every t < n
    fn child_guide(&self, t: TreeIx) -> &[(u32, TreeIx)] {
        &self.cg[self.cg_off[t as usize] as usize..self.cg_off[t as usize + 1] as usize]
    }

    /// Sibling guides led by `t`: `(dfs_start, dfs_end, entries)`.
    // lint:allow-fn(panic-free-serve): validate-then-index — from_wire checks sg_off/sge_off monotone and in-bounds for every t < n
    fn sibling_guides(&self, t: TreeIx) -> impl Iterator<Item = (u32, u32, &[(u32, TreeIx)])> {
        let (s, e) = (self.sg_off[t as usize] as usize, self.sg_off[t as usize + 1] as usize);
        (s..e).map(move |i| {
            let (start, end) = self.sg_bounds[i];
            (start, end, &self.sge[self.sge_off[i] as usize..self.sge_off[i + 1] as usize])
        })
    }

    // lint:allow-fn(panic-free-serve): validate-then-index — from_wire checks bk_off monotone and in-bounds for every t < n
    fn bucket(&self, t: TreeIx) -> &[(u32, TreeIx)] {
        &self.bk[self.bk_off[t as usize] as usize..self.bk_off[t as usize + 1] as usize]
    }

    /// Serialize every arena verbatim.
    pub fn to_wire(&self, w: &mut Writer) {
        w.u64(self.fanout as u64);
        w.u32(self.max_guide_depth);
        w.slice_u64(self.hash.coeffs());
        self.labeled.store().to_wire(w);
        w.slice_u32(&self.cg_off);
        w.slice_pairs(&self.cg);
        w.slice_u32(&self.sg_off);
        w.slice_pairs(&self.sg_bounds);
        w.slice_u32(&self.sge_off);
        w.slice_pairs(&self.sge);
        w.slice_u32(&self.bk_off);
        w.slice_pairs(&self.bk);
    }

    /// Inverse of [`CoverStore::to_wire`] with CSR invariant checks.
    // lint:allow-fn(panic-free-serve): validate-then-index — CSR invariants are checked before the indexing passes below
    pub fn from_wire(r: &mut Reader) -> io::Result<Self> {
        use wire::invalid;
        let fanout = r.u64()? as usize;
        let max_guide_depth = r.u32()?;
        let coeffs = r.slice_u64()?;
        if fanout < 2 || coeffs.is_empty() {
            return Err(invalid("bad cover-store record header"));
        }
        let hash = PolyHash::from_coeffs(coeffs);
        let labeled = LabeledTree::from_store(LabeledStore::from_wire(r)?);
        let m = labeled.tree().size();
        let cg_off = r.slice_u32()?;
        let cg = r.slice_pairs()?;
        let sg_off = r.slice_u32()?;
        let sg_bounds = r.slice_pairs()?;
        let sge_off = r.slice_u32()?;
        let sge = r.slice_pairs()?;
        let bk_off = r.slice_u32()?;
        let bk = r.slice_pairs()?;
        let check_csr = |off: &[u32], len: usize, n: usize, what: &str| {
            if off.len() != n + 1
                || off[0] != 0
                || off[n] as usize != len
                || off.windows(2).any(|w| w[0] > w[1])
            {
                return Err(invalid(&format!("cover store {what} offsets corrupt")));
            }
            Ok(())
        };
        check_csr(&cg_off, cg.len(), m, "child-guide")?;
        check_csr(&sg_off, sg_bounds.len(), m, "sibling-guide")?;
        check_csr(&sge_off, sge.len(), sg_bounds.len(), "guide-entry")?;
        check_csr(&bk_off, bk.len(), m, "bucket")?;
        if cg.iter().chain(&sge).chain(&bk).any(|&(_, ix)| ix as usize >= m) {
            return Err(invalid("cover store entry out of range"));
        }
        Ok(CoverStore {
            labeled,
            hash,
            fanout,
            max_guide_depth,
            cg_off,
            cg,
            sg_off,
            sg_bounds,
            sge_off,
            sge,
            bk_off,
            bk,
        })
    }
}

/// A tree equipped with the Lemma 7 name-independent scheme: the thin
/// read-path half over a [`CoverStore`]. [`CoverTreeRouter::new`]
/// builds the store from scratch; [`CoverTreeRouter::from_store`] wraps
/// a deserialized one with zero rebuild.
#[derive(Clone, Debug)]
pub struct CoverTreeRouter {
    store: CoverStore,
}

impl CoverTreeRouter {
    /// Build with fanout `s = max(2, σ·⌈log₂ m⌉)`.
    pub fn new(tree: Tree, sigma: u64, seed: u64) -> Self {
        let m = tree.size();
        let fanout = ((sigma as usize) * (ceil_log2(m.max(2) as u64) as usize).max(1)).max(2);
        let labeled = LabeledTree::new(tree);
        let hash = PolyHash::new(PolyHash::degree_for(m), seed);
        let mut b = CoverBuild { labeled, nodes: vec![CoverNode::default(); m], fanout };
        let max_guide_depth = b.build_guides();
        b.build_buckets(&hash);
        CoverTreeRouter {
            store: CoverStore::from_nodes(b.labeled, hash, fanout, max_guide_depth, b.nodes),
        }
    }

    /// Wrap an already-built (typically snapshot-loaded) store.
    pub fn from_store(store: CoverStore) -> Self {
        CoverTreeRouter { store }
    }

    /// The plain-old-data half (for serialization).
    pub fn store(&self) -> &CoverStore {
        &self.store
    }

    /// DFS position responsible for a network id.
    fn position_of(&self, target: NodeId) -> u32 {
        (self.store.hash.eval(target.0 as u64) % self.store.labeled.tree().size() as u64) as u32
    }

    /// The underlying labeled scheme (and physical tree).
    pub fn labeled(&self) -> &LabeledTree {
        &self.store.labeled
    }

    /// Guide fanout s.
    pub fn fanout(&self) -> usize {
        self.store.fanout
    }

    /// Deepest guide B-tree in this instance (1 = no grouping anywhere).
    pub fn max_guide_depth(&self) -> u32 {
        self.store.max_guide_depth
    }

    /// Lemma 7 cost budget for this tree: `4·rad(T) + 2k·maxE(T)` where
    /// `k` is the worst guide depth (≤ ⌈log_s(max degree)⌉).
    pub fn cost_budget(&self) -> Cost {
        let t = self.store.labeled.tree();
        4 * t.radius() + 2 * self.store.max_guide_depth.max(1) as u64 * t.max_edge()
    }

    /// Route from tree node `from` toward the network id `target`,
    /// using only per-node storage plus an O(log² n) header (the target
    /// id, the source label, and — once learned — the target label).
    /// Returns the outcome and the full node path walked.
    pub fn route(&self, from: TreeIx, target: NodeId) -> (CoverOutcome, Vec<TreeIx>) {
        let labeled = &self.store.labeled;
        let tree = labeled.tree();
        let mut cost: Cost = 0;
        // lint:allow(no-alloc-in-route): the returned walk owns its path; one Vec per route is the API
        let mut path = vec![from];
        let source_label = labeled.label(from); // carried in the header
        let mut at = from;
        // Short-circuit: the source is the target.
        if tree.graph_id(at) == target {
            return (CoverOutcome::Found { cost: 0, delivered_at: at }, path);
        }
        // Phase 1: climb to the root.
        while let Some(p) = tree.parent(at) {
            cost += tree.parent_weight(at);
            at = p;
            path.push(at);
        }
        // Phase 2: descend to the directory position.
        let pos = self.position_of(target);
        loop {
            let me = labeled.local(at);
            if me.dfs_in == pos {
                break;
            }
            debug_assert!(pos > me.dfs_in && pos < me.dfs_out, "descent left the interval");
            // Pick from my child guide the last boundary ≤ pos. A
            // missing entry means a corrupt guide arena: report a miss
            // from where we stand rather than panicking the server.
            let Some(mut next) = guide_pick(self.store.child_guide(at), pos) else {
                return (CoverOutcome::NotFound { cost }, path);
            };
            cost += edge_w(tree, at, next);
            let parent = at;
            path.push(next);
            // Sibling corrections while pos is not inside `next`'s subtree:
            // consult the *tightest* guide at `next` covering pos. A group
            // leader also leads its own sub-groups, so the tightest guide
            // never returns `next` itself — each correction strictly
            // descends one guide level.
            let mut guard = 0;
            while !{
                let l = labeled.local(next);
                pos >= l.dfs_in && pos < l.dfs_out
            } {
                let Some(cand) = self
                    .store
                    .sibling_guides(next)
                    .filter(|&(start, end, _)| start <= pos && pos < end)
                    .min_by_key(|&(start, end, _)| end - start)
                    .and_then(|(_, _, entries)| guide_pick(entries, pos))
                else {
                    // Uncovered position = corrupt sibling guides;
                    // same degradation as a missing child guide.
                    return (CoverOutcome::NotFound { cost }, path);
                };
                assert_ne!(cand, next, "sibling guide made no progress");
                // Correction: next -> parent -> cand (2 edges).
                cost += edge_w(tree, next, parent) + edge_w(tree, parent, cand);
                path.push(parent);
                path.push(cand);
                next = cand;
                guard += 1;
                assert!(guard <= self.store.max_guide_depth + 1, "guide descent diverged");
            }
            at = next;
        }
        // Phase 3: directory lookup.
        let hit = self.store.bucket(at).iter().find(|(gid, _)| *gid == target.0).map(|&(_, ix)| ix);
        // A bucket entry (or source header) whose label no longer
        // routes is a corrupt directory; every arm below degrades to a
        // miss instead of panicking.
        if let Some(ix) = hit {
            if let Some((mut walk, c)) = labeled.route(at, labeled.label(ix)) {
                cost += c;
                let delivered_at = walk.last().copied().unwrap_or(at);
                walk.remove(0);
                path.extend(walk);
                return (CoverOutcome::Found { cost, delivered_at }, path);
            }
            return (CoverOutcome::NotFound { cost }, path);
        }
        // Unknown name: report failure back to the source using the
        // header's source label.
        if let Some((mut walk, c)) = labeled.route(at, source_label) {
            cost += c;
            walk.remove(0);
            path.extend(walk);
        }
        (CoverOutcome::NotFound { cost }, path)
    }

    /// Storage bits of tree node `t` under this scheme (φ(T,t) in the
    /// paper's notation).
    pub fn node_bits(&self, t: TreeIx) -> u64 {
        let labeled = &self.store.labeled;
        let m = labeled.tree().size();
        let b = bits_for_node(m);
        let mut bits = labeled.local_bits(t) + self.store.hash.storage_bits();
        bits += self.store.child_guide(t).len() as u64 * 2 * b;
        for (_, _, entries) in self.store.sibling_guides(t) {
            bits += 2 * b + entries.len() as u64 * 2 * b;
        }
        for &(_, ix) in self.store.bucket(t) {
            bits += b + labeled.label_bits(ix);
        }
        // The header-resident source label is storage at the source too.
        bits + labeled.label_bits(t)
    }

    /// Largest directory bucket (w.h.p. O(log m / log log m)).
    pub fn max_bucket(&self) -> usize {
        self.store.bk_off.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }
}

/// Build-time state for [`CoverTreeRouter::new`]: the per-node scratch
/// soup the guide recursion produces, flattened afterwards.
struct CoverBuild {
    labeled: LabeledTree,
    nodes: Vec<CoverNode>,
    fanout: usize,
}

impl CoverBuild {
    /// Assign all guide tables; returns the worst B-tree depth.
    fn build_guides(&mut self) -> u32 {
        let m = self.labeled.tree().size() as u32;
        let mut max_guide_depth = 0;
        for x in 0..m {
            // Children sorted by dfs_in (DFS assigns contiguous intervals).
            let mut kids: Vec<TreeIx> = self.labeled.tree().children(x).to_vec();
            kids.sort_unstable_by_key(|&c| self.labeled.local(c).dfs_in);
            if kids.is_empty() {
                continue;
            }
            let depth = self.assign_guide_level(GuideOwner::Node(x), &kids, 1);
            max_guide_depth = max_guide_depth.max(depth);
        }
        max_guide_depth
    }

    /// Recursively spread the boundary table of `slice` (a run of
    /// siblings) over group leaders. Returns the B-tree depth used.
    fn assign_guide_level(&mut self, owner: GuideOwner, slice: &[TreeIx], level: u32) -> u32 {
        let entries: Vec<(u32, TreeIx)>;
        let mut max_depth = level;
        if slice.len() <= self.fanout {
            entries = slice.iter().map(|&c| (self.labeled.local(c).dfs_in, c)).collect();
        } else {
            // Split into `fanout` groups; record group leaders here and
            // recurse into each group via its leader.
            let group = slice.len().div_ceil(self.fanout);
            let mut leaders = Vec::new();
            for chunk in slice.chunks(group) {
                let leader = chunk[0];
                leaders.push((self.labeled.local(leader).dfs_in, leader));
                if chunk.len() > 1 {
                    let d = self.assign_guide_level(GuideOwner::Leader(leader), chunk, level + 1);
                    max_depth = max_depth.max(d);
                }
            }
            entries = leaders;
        }
        match owner {
            GuideOwner::Node(x) => self.nodes[x as usize].child_guide = entries,
            GuideOwner::Leader(l) => {
                // The DFS range this guide covers: from the first member's
                // subtree start to the last member's subtree end. (An
                // empty slice never recurses here; guard anyway.)
                if let (Some(&first), Some(&last)) = (slice.first(), slice.last()) {
                    let start = self.labeled.local(first).dfs_in;
                    let end = self.labeled.local(last).dfs_out;
                    self.nodes[l as usize].sibling_guides.push(Guide { start, end, entries });
                }
            }
        }
        max_depth
    }

    fn build_buckets(&mut self, hash: &PolyHash) {
        let m = self.labeled.tree().size();
        for t in 0..m as u32 {
            let gid = self.labeled.tree().graph_id(t).0;
            let pos = (hash.eval(gid as u64) % m as u64) as u32;
            let owner = self.labeled.node_at_dfs(pos);
            self.nodes[owner as usize].bucket.push((gid, t));
        }
    }
}

enum GuideOwner {
    Node(TreeIx),
    Leader(TreeIx),
}

/// Last guide entry with boundary ≤ pos.
fn guide_pick(guide: &[(u32, TreeIx)], pos: u32) -> Option<TreeIx> {
    let i = guide.partition_point(|&(b, _)| b <= pos);
    i.checked_sub(1).and_then(|j| guide.get(j)).map(|&(_, t)| t)
}

/// Weight of the tree edge between adjacent nodes.
fn edge_w(tree: &Tree, a: TreeIx, b: TreeIx) -> Cost {
    if tree.parent(a) == Some(b) {
        tree.parent_weight(a)
    } else {
        debug_assert_eq!(tree.parent(b), Some(a));
        tree.parent_weight(b)
    }
}

impl StorageCost for CoverTreeRouter {
    fn storage_bits(&self) -> u64 {
        (0..self.store.labeled.tree().size() as u32).map(|t| self.node_bits(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::{self, WeightDist};
    use graphkit::{dijkstra, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spanning_tree(g: &Graph, root: NodeId) -> Tree {
        let sp = dijkstra::dijkstra(g, root);
        Tree::from_sssp(g, &sp, g.nodes())
    }

    fn check_all_lookups(r: &CoverTreeRouter) {
        let m = r.labeled().tree().size() as u32;
        let budget = r.cost_budget();
        for from in 0..m {
            for t in 0..m {
                let target = r.labeled().tree().graph_id(t);
                let (outcome, path) = r.route(from, target);
                match outcome {
                    CoverOutcome::Found { cost, delivered_at } => {
                        assert_eq!(delivered_at, t);
                        assert_eq!(*path.last().unwrap(), t);
                        assert!(cost <= budget, "cost {cost} > budget {budget} ({from}->{t})");
                    }
                    CoverOutcome::NotFound { .. } => panic!("missed in-tree node {t}"),
                }
            }
        }
    }

    fn check_misses(r: &CoverTreeRouter, absent: &[u32]) {
        let m = r.labeled().tree().size() as u32;
        let budget = r.cost_budget();
        for &gid in absent {
            for from in (0..m).step_by(7) {
                let (outcome, path) = r.route(from, NodeId(gid));
                match outcome {
                    CoverOutcome::Found { .. } => panic!("found absent id {gid}"),
                    CoverOutcome::NotFound { cost } => {
                        assert_eq!(*path.last().unwrap(), from, "miss must return to source");
                        assert!(cost <= budget, "miss cost {cost} > budget {budget}");
                    }
                }
            }
        }
    }

    #[test]
    fn path_tree() {
        let g = gen::path(20, 3);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 3, 1);
        check_all_lookups(&r);
        check_misses(&r, &[500, 501]);
    }

    #[test]
    fn random_tree() {
        let mut rng = SmallRng::seed_from_u64(50);
        let g = gen::random_tree(90, WeightDist::UniformInt { lo: 1, hi: 9 }, &mut rng);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(4)), 3, 2);
        check_all_lookups(&r);
        check_misses(&r, &[7777]);
    }

    #[test]
    fn high_degree_star_exercises_guides() {
        // Star of degree 150 with sigma = 2: fanout = 2*8 = 16 < 150, so
        // descent must use sibling guides; the cost bound still holds.
        let g = gen::star(151, 4);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 2, 3);
        assert!(r.max_guide_depth() >= 2, "star must trigger grouped guides");
        check_all_lookups(&r);
        check_misses(&r, &[99999]);
    }

    #[test]
    fn caterpillar_tree() {
        let mut rng = SmallRng::seed_from_u64(51);
        let g = gen::caterpillar(10, 6, WeightDist::UniformInt { lo: 1, hi: 5 }, &mut rng);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 3, 4);
        check_all_lookups(&r);
    }

    #[test]
    fn deep_guides_only_when_needed() {
        let mut rng = SmallRng::seed_from_u64(52);
        let g = gen::random_tree(100, WeightDist::Unit, &mut rng);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 4, 5);
        // Random recursive trees have max degree ~log n < fanout.
        assert_eq!(r.max_guide_depth(), 1);
    }

    #[test]
    fn buckets_cover_every_node() {
        let mut rng = SmallRng::seed_from_u64(53);
        let g = gen::random_tree(120, WeightDist::Unit, &mut rng);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 3, 6);
        assert_eq!(r.store().bk.len(), 120);
        // Max load stays logarithmic-ish.
        assert!(r.max_bucket() <= 16, "bucket load {}", r.max_bucket());
    }

    #[test]
    fn store_wire_roundtrip_routes_identically() {
        // The star forces real sibling guides into the arenas.
        let g = gen::star(151, 4);
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 2, 3);
        let mut w = Writer::new();
        r.store().to_wire(&mut w);
        let bytes = w.into_bytes();
        let r2 =
            CoverTreeRouter::from_store(CoverStore::from_wire(&mut Reader::new(&bytes)).unwrap());
        assert_eq!(r2.fanout(), r.fanout());
        assert_eq!(r2.max_guide_depth(), r.max_guide_depth());
        assert_eq!(r2.max_bucket(), r.max_bucket());
        let m = r.labeled().tree().size() as u32;
        for from in (0..m).step_by(13) {
            for t in (0..m).step_by(7) {
                let target = r.labeled().tree().graph_id(t);
                assert_eq!(r2.route(from, target), r.route(from, target));
            }
            assert_eq!(r2.route(from, NodeId(99999)), r.route(from, NodeId(99999)));
            assert_eq!(r2.node_bits(from), r.node_bits(from));
        }
        // Truncations error rather than panic.
        for cut in [0, 5, bytes.len() / 3, bytes.len() - 1] {
            assert!(CoverStore::from_wire(&mut Reader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn storage_within_lemma_bound() {
        // Lemma 7: O(k n^{1/k} log n) per node — ours is O(σ log² m);
        // assert with an explicit constant.
        let mut rng = SmallRng::seed_from_u64(54);
        let g = gen::random_tree(200, WeightDist::Unit, &mut rng);
        let sigma = 3u64;
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), sigma, 7);
        let log = ceil_log2(200) as u64;
        let bound = 64 * sigma * log * log;
        for t in 0..200u32 {
            assert!(r.node_bits(t) <= bound, "node {t}: {} > {bound}", r.node_bits(t));
        }
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::from_parents(vec![5], vec![u32::MAX], vec![0]);
        let r = CoverTreeRouter::new(t, 2, 8);
        let (outcome, _) = r.route(0, NodeId(5));
        assert_eq!(outcome, CoverOutcome::Found { cost: 0, delivered_at: 0 });
        let (outcome, _) = r.route(0, NodeId(9));
        assert_eq!(outcome, CoverOutcome::NotFound { cost: 0 });
    }
}
