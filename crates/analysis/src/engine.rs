//! Pragma application, workspace walking, and report rendering.
//!
//! Suppression pragmas are line comments of the form
//!
//! ```text
//! // lint:allow(rule-name): reason the exception is sound
//! ```
//!
//! A trailing pragma suppresses findings of that rule on its own line;
//! a standalone pragma (nothing but the comment on its line)
//! suppresses findings on the next line that has code, so pragmas can
//! stack. A second form, `// lint:allow-fn(rule): reason`, covers one
//! whole function body — placed immediately before (or trailing on)
//! the `fn` line of validate-then-index decoders, where per-line
//! pragmas on dozens of guarded index sites would be pure noise. The
//! broad grant is a distinct spelling on purpose: a reviewer can see
//! the blast radius.
//!
//! `allow-fn` resolution is **block-aware**: the grant binds to the
//! next `fn` *in the same brace block* as the pragma (same impl, same
//! mod, top level). A pragma placed after the last method of an impl
//! block does not silently leak to the next top-level fn — it is an
//! error — and bodyless trait declarations can never receive a grant.
//! Three pragma misuses are themselves findings: a pragma with no
//! reason, a pragma naming an unknown rule, and a pragma that
//! suppresses nothing (so stale exceptions cannot linger). Doc
//! comments are never parsed as pragmas, so documentation may show
//! pragma syntax freely.
//!
//! Linting is two-pass: pass 1 lexes every file, runs the per-line
//! rules, and parses items; pass 2 builds the workspace call graph
//! and runs the interprocedural rules ([`crate::cones`]); then pragmas
//! are applied per file over the merged findings.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::cones::run_interproc;
use crate::items::Items;
use crate::lexer::{lex, Lexed};
use crate::rules::{run_rules, Finding, PRAGMA_RULE, RULES};

/// A parsed `lint:allow` / `lint:allow-fn` pragma.
#[derive(Debug)]
struct Pragma {
    rule: String,
    /// First line whose findings this pragma suppresses.
    start: u32,
    /// Last suppressed line (== `start` for per-line pragmas).
    end: u32,
    /// Line the pragma itself sits on (for diagnostics).
    line: u32,
    fn_scoped: bool,
    used: bool,
}

/// True for `///`, `//!`, `/**`, `/*!` — documentation, not directives.
fn is_doc_comment(text: &str) -> bool {
    ["///", "//!", "/**", "/*!"].iter().any(|p| text.starts_with(p))
}

/// Parse all pragmas out of a lexed file; malformed ones are returned
/// as findings immediately. `items` resolves `allow-fn` pragmas to the
/// body of the next fn in the pragma's own block.
fn collect_pragmas(lx: &Lexed, items: &Items) -> (Vec<Pragma>, Vec<Finding>) {
    let mut tok_lines: Vec<u32> = lx.toks.iter().map(|t| t.line).collect();
    tok_lines.dedup();
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in &lx.comments {
        if is_doc_comment(&c.text) {
            continue;
        }
        // The two markers diverge at the character after "allow"
        // (`-` vs `(`), so the finds cannot shadow each other.
        let (fn_scoped, rest) = if let Some(at) = c.text.find("lint:allow-fn(") {
            (true, &c.text[at + "lint:allow-fn(".len()..])
        } else if let Some(at) = c.text.find("lint:allow(") {
            (false, &c.text[at + "lint:allow(".len()..])
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(Finding {
                rule: PRAGMA_RULE,
                line: c.line,
                msg: "malformed pragma: missing `)` after rule name".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            errors.push(Finding {
                rule: PRAGMA_RULE,
                line: c.line,
                msg: format!("pragma names unknown rule `{rule}`"),
            });
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            let form = if fn_scoped { "lint:allow-fn" } else { "lint:allow" };
            errors.push(Finding {
                rule: PRAGMA_RULE,
                line: c.line,
                msg: format!(
                    "pragma for `{rule}` has no reason: write \
                     `{form}({rule}): <why this site is sound>`"
                ),
            });
            continue;
        }
        let (start, end) = if fn_scoped {
            // Block-aware grant: the next fn *with a body* at or below
            // the pragma line, in the same brace block (trailing on
            // the `fn` line also binds: kw_line == c.line). A pragma
            // falling out the bottom of its impl/mod block is an
            // error, not a silent leak to the next top-level fn.
            let home = items.block_at_line(c.line);
            let target = items.fns.iter().find(|f| {
                f.kw_line >= c.line && f.body.is_some() && (f.kw_line == c.line || f.block == home)
            });
            match target {
                Some(f) => (f.kw_line, f.end_line),
                None => {
                    errors.push(Finding {
                        rule: PRAGMA_RULE,
                        line: c.line,
                        msg: format!(
                            "`lint:allow-fn({rule})` has no following fn in this block to \
                             scope to"
                        ),
                    });
                    continue;
                }
            }
        } else if c.standalone {
            let t = match tok_lines.iter().find(|&&l| l > c.line) {
                Some(&l) => l,
                None => c.line,
            };
            (t, t)
        } else {
            (c.line, c.line)
        };
        pragmas.push(Pragma { rule, start, end, line: c.line, fn_scoped, used: false });
    }
    (pragmas, errors)
}

/// Apply a file's pragmas to its merged findings. Returns the
/// survivors (including pragma-misuse findings), sorted.
fn apply_pragmas(lx: &Lexed, items: &Items, raw: Vec<Finding>) -> Vec<Finding> {
    let (mut pragmas, mut out) = collect_pragmas(lx, items);
    for finding in raw {
        // Exact-line pragmas claim a finding before any fn-scoped
        // grant, so a broad grant can't starve a narrow one into an
        // "unused pragma" error.
        let hit = pragmas
            .iter()
            .position(|p| !p.fn_scoped && p.rule == finding.rule && p.start == finding.line)
            .or_else(|| {
                pragmas.iter().position(|p| {
                    p.fn_scoped
                        && p.rule == finding.rule
                        && (p.start..=p.end).contains(&finding.line)
                })
            });
        match hit {
            Some(i) => pragmas[i].used = true,
            None => out.push(finding),
        }
    }
    for p in &pragmas {
        if !p.used {
            let span = if p.fn_scoped {
                format!("in fn body (lines {}..={})", p.start, p.end)
            } else {
                format!("on line {}", p.start)
            };
            out.push(Finding {
                rule: PRAGMA_RULE,
                line: p.line,
                msg: format!("unused pragma: no `{}` finding {span}", p.rule),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// The full report of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Workspace fns in the call graph.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Multi-candidate calls that produced no edge.
    pub ambiguous: usize,
    /// Surviving findings as `(relative path, finding)`.
    pub findings: Vec<(String, Finding)>,
}

impl Report {
    /// `file:line: rule: message` lines, sorted.
    pub fn diagnostics(&self) -> Vec<String> {
        self.findings
            .iter()
            .map(|(p, f)| format!("{p}:{}: {}: {}", f.line, f.rule, f.msg))
            .collect()
    }

    /// Machine-readable one-line JSON summary (counts per rule).
    pub fn summary_json(&self) -> String {
        let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for r in RULES.iter().chain(std::iter::once(&PRAGMA_RULE)) {
            per_rule.insert(r, 0);
        }
        for (_, f) in &self.findings {
            *per_rule.entry(f.rule).or_insert(0) += 1;
        }
        let rules =
            per_rule.iter().map(|(r, n)| format!("\"{r}\":{n}")).collect::<Vec<_>>().join(",");
        format!(
            "{{\"files\":{},\"fns\":{},\"edges\":{},\"ambiguous\":{},\"findings\":{},\
             \"rules\":{{{}}}}}",
            self.files,
            self.fns,
            self.edges,
            self.ambiguous,
            self.findings.len(),
            rules
        )
    }
}

/// Lint a set of in-memory files as one workspace: per-line rules,
/// call-graph construction, interprocedural rules, then pragmas.
pub fn lint_files(files: &[(String, String)]) -> Report {
    let lexed: Vec<(String, Lexed)> =
        files.iter().map(|(rel, src)| (rel.clone(), lex(src))).collect();
    let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(rel, lx)| (rel.clone(), lx)).collect();
    let graph = CallGraph::build(&refs);
    let sources: HashMap<String, &Lexed> =
        lexed.iter().map(|(rel, lx)| (rel.clone(), lx)).collect();

    let mut per_file: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    for (rel, lx) in &lexed {
        per_file.insert(rel, run_rules(rel, lx));
    }
    for (rel, f) in run_interproc(&graph, &sources) {
        if let Some(v) = per_file.get_mut(rel.as_str()) {
            v.push(f);
        }
    }

    let mut report = Report {
        files: files.len(),
        fns: graph.fns.len(),
        edges: graph.edges.iter().map(Vec::len).sum(),
        ambiguous: graph.ambiguous.len(),
        findings: Vec::new(),
    };
    for (rel, lx) in &lexed {
        let items = &graph.items_by_file[rel.as_str()];
        let raw = per_file.remove(rel.as_str()).unwrap_or_default();
        for f in apply_pragmas(lx, items, raw) {
            report.findings.push((rel.clone(), f));
        }
    }
    report.findings.sort_by(|a, b| (&a.0, a.1.line, a.1.rule).cmp(&(&b.0, b.1.line, b.1.rule)));
    report
}

/// Lint one file's source in isolation (single-file call graph).
/// Returns the surviving findings.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_files(&[(rel_path.to_string(), src.to_string())])
        .findings
        .into_iter()
        .map(|(_, f)| f)
        .collect()
}

/// Directories never walked: build output, VCS, CI config, and the
/// offline dependency shims (vendored API stand-ins, not our code).
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "shims", "node_modules"];

/// Collect every workspace `.rs` file under `root`, sorted, as
/// `(relative-path-with-forward-slashes, absolute-path)`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, abs) in files {
        sources.push((rel, fs::read_to_string(&abs)?));
    }
    Ok(lint_files(&sources))
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_pragma_suppresses_own_line() {
        let src =
            "fn f() -> u64 { 1u64 << a } // lint:allow(no-raw-octave-shift): bounded by caller\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn standalone_pragma_suppresses_next_code_line() {
        let src = "fn f() -> u64 {\n    // lint:allow(no-raw-octave-shift): exponent < 10 here\n    1u64 << a\n}\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let src = "fn f() -> u64 { 1u64 << a } // lint:allow(no-raw-octave-shift):\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.rule == "pragma" && x.msg.contains("no reason")));
    }

    #[test]
    fn fn_scoped_pragma_covers_whole_body() {
        let src = "\
// lint:allow-fn(no-raw-octave-shift): exponents validated at entry\n\
fn f(a: u32, b: u32) -> u64 {\n\
    let x = 1u64 << a;\n\
    let y = 1u64 << b;\n\
    x + y\n\
}\n\
fn g(a: u32) -> u64 { 1u64 << a }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        // Both shifts in f are covered; g's shift still fires.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn unused_fn_scoped_pragma_is_an_error() {
        let src = "// lint:allow-fn(no-raw-octave-shift): stale\nfn f() {}\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.rule == "pragma" && x.msg.contains("unused pragma")));
        let src = "// lint:allow-fn(no-raw-octave-shift): dangling\nconst X: u32 = 3;\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.msg.contains("no following fn")));
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let src = "/// Use `// lint:allow(bogus-rule): reason` to suppress.\n\
                   //! And `lint:allow(another-bogus)` likewise.\n\
                   fn f() {}\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_and_unused_pragma_are_errors() {
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.msg.contains("unknown rule")));
        let src = "// lint:allow(no-raw-octave-shift): nothing here shifts\nfn f() {}\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.msg.contains("unused pragma")));
    }

    #[test]
    fn fn_pragma_between_impl_methods_scopes_to_next_method() {
        // Satellite bugfix: the grant binds to `b` (same impl block),
        // and `c` outside the impl still fires.
        let src = "\
struct S;\n\
impl S {\n\
    fn a(&self, x: u32) -> u64 { 1u64 << x }\n\
\n\
    // lint:allow-fn(no-raw-octave-shift): b's exponent is clamped at entry\n\
    fn b(&self, x: u32) -> u64 {\n\
        1u64 << x\n\
    }\n\
}\n\
fn c(x: u32) -> u64 { 1u64 << x }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 10], "{f:?}");
    }

    #[test]
    fn fn_pragma_after_last_impl_method_is_an_error_not_a_leak() {
        // Satellite bugfix: before v2 this grant leaked to the next
        // *top-level* fn (`c`), silently suppressing its finding.
        let src = "\
struct S;\n\
impl S {\n\
    fn a(&self) -> u64 { 2 }\n\
    // lint:allow-fn(no-raw-octave-shift): dangling grant\n\
}\n\
fn c(x: u32) -> u64 { 1u64 << x }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.rule == "pragma" && x.msg.contains("no following fn")), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "no-raw-octave-shift" && x.line == 6), "{f:?}");
    }

    #[test]
    fn fn_pragma_never_binds_to_bodyless_decl() {
        // A bodyless trait declaration once produced a span running to
        // end-of-file; the grant must skip it (and, finding no bodied
        // fn in the trait block, error out) rather than swallow every
        // finding below.
        let src = "\
trait T {\n\
    // lint:allow-fn(no-raw-octave-shift): cannot grant a declaration\n\
    fn sig(&self, x: u32) -> u64;\n\
}\n\
fn c(x: u32) -> u64 { 1u64 << x }\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|x| x.rule == "pragma" && x.msg.contains("no following fn")), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "no-raw-octave-shift" && x.line == 5), "{f:?}");
    }
}
