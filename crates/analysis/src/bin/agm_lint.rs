#![forbid(unsafe_code)]
//! `agm-lint` — scan the workspace for invariant violations.
//!
//! ```text
//! agm-lint [ROOT] [--root PATH]
//!          [--format text|sarif] [--sarif-out FILE]
//!          [--diff-baseline] [--write-baseline] [--baseline FILE]
//! ```
//!
//! With no root argument, the workspace root is found by walking up
//! from the current directory to the first `Cargo.toml` declaring
//! `[workspace]`.
//!
//! Default mode emits one `file:line: rule: message` line per finding
//! plus a one-line JSON summary, and exits nonzero when anything
//! fired. `--diff-baseline` instead compares per-file/per-rule counts
//! against the checked-in baseline (`crates/analysis/BASELINE.json`
//! unless `--baseline` overrides) and exits nonzero only on *new*
//! findings — burn-down never fails. `--write-baseline` regenerates
//! the baseline from the current run. `--format sarif` renders the
//! findings as a SARIF 2.1.0 document on stdout (diagnostics move to
//! stderr); `--sarif-out FILE` writes the document to a file and keeps
//! stdout textual — that is the CI spelling.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::{baseline, sarif};

struct Opts {
    root: Option<PathBuf>,
    format: String,
    sarif_out: Option<PathBuf>,
    diff_baseline: bool,
    write_baseline: bool,
    baseline_path: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        format: "text".to_string(),
        sarif_out: None,
        diff_baseline: false,
        write_baseline: false,
        baseline_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--root" => opts.root = Some(PathBuf::from(grab("--root")?)),
            "--format" => {
                let v = grab("--format")?;
                if v != "text" && v != "sarif" {
                    return Err(format!("unknown format `{v}` (text|sarif)"));
                }
                opts.format = v;
            }
            "--sarif-out" => opts.sarif_out = Some(PathBuf::from(grab("--sarif-out")?)),
            "--diff-baseline" => opts.diff_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => opts.baseline_path = Some(PathBuf::from(grab("--baseline")?)),
            _ if !a.starts_with('-') && opts.root.is_none() => {
                opts.root = Some(PathBuf::from(a));
            }
            _ => return Err(format!("unknown argument `{a}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("agm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cannot read current directory");
            match analysis::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("agm-lint: no workspace root above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let report = match analysis::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("agm-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_path =
        opts.baseline_path.unwrap_or_else(|| root.join("crates/analysis/BASELINE.json"));
    let counts = baseline::counts_of(&report);

    if opts.write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&counts)) {
            eprintln!("agm-lint: cannot write baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "agm-lint: baseline written to {} ({} entries)",
            baseline_path.display(),
            counts.len()
        );
    }

    let sarif_doc = sarif::render(&report);
    if let Some(out) = &opts.sarif_out {
        if let Err(e) = std::fs::write(out, &sarif_doc) {
            eprintln!("agm-lint: cannot write SARIF {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }
    // With `--format sarif` the document owns stdout; diagnostics go
    // to stderr so annotations and human output don't interleave.
    let diag = |line: &str| {
        if opts.format == "sarif" {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for line in report.diagnostics() {
        diag(&line);
    }
    diag(&report.summary_json());
    if opts.format == "sarif" {
        print!("{sarif_doc}");
    }

    if opts.diff_baseline {
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(doc) => baseline::parse(&doc),
            Err(e) => {
                eprintln!(
                    "agm-lint: cannot read baseline {}: {e} (run --write-baseline first)",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let regressions = baseline::diff(&counts, &base);
        if regressions.is_empty() {
            diag(&format!(
                "agm-lint: no new findings vs baseline ({} current, {} baselined entries)",
                report.findings.len(),
                base.len()
            ));
            return ExitCode::SUCCESS;
        }
        for r in &regressions {
            diag(&format!(
                "NEW: {}: {}: {} finding(s), baseline allows {}",
                r.file, r.rule, r.now, r.baseline
            ));
        }
        return ExitCode::FAILURE;
    }

    if report.findings.is_empty() || opts.write_baseline {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
