#![forbid(unsafe_code)]
//! `agm-lint` — scan the workspace for invariant violations.
//!
//! Usage: `agm-lint [ROOT]`. With no argument, the workspace root is
//! found by walking up from the current directory to the first
//! `Cargo.toml` declaring `[workspace]`. Emits one
//! `file:line: rule: message` line per finding, then a one-line JSON
//! summary; exits nonzero when anything fired.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().expect("cannot read current directory");
            match analysis::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("agm-lint: no workspace root above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let report = match analysis::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("agm-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for line in report.diagnostics() {
        println!("{line}");
    }
    println!("{}", report.summary_json());
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
