//! The per-line rule catalogue. Every rule is named after the bug
//! class (or standing invariant) that motivated it; the mapping to the
//! PR that fixed the original instance lives in DESIGN.md
//! §"Invariants & lint rules".
//!
//! Rules here operate on one file's token stream from
//! [`crate::lexer`]; the four interprocedural rules (panic-free-serve,
//! deterministic-output, no-alloc-in-route, octave-taint) live in
//! [`crate::cones`] and run over the workspace call graph. All
//! matching is token-based, so text inside strings and comments can
//! never fire a rule.

use crate::lexer::{Lexed, Tok, TokKind};

/// The eight rule identifiers, in reporting order. The first two and
/// last two are per-line lexical rules; the middle four are
/// call-graph-aware (see [`crate::cones`]).
pub const RULES: [&str; 8] = [
    "no-raw-octave-shift",
    "no-nan-unsafe-cmp",
    "panic-free-serve",
    "deterministic-output",
    "no-alloc-in-route",
    "octave-taint",
    "chunk-ordered-merge",
    "forbid-unsafe",
];

/// Rule id used for pragma bookkeeping errors (missing reason, unknown
/// rule, pragma that suppresses nothing).
pub const PRAGMA_RULE: &str = "pragma";

/// One diagnostic: `file:line: rule: message` once rendered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`] or [`PRAGMA_RULE`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// Is this integer literal the value 1 (any radix/suffix)?
fn is_one(tok: &Tok) -> bool {
    if tok.kind != TokKind::Int {
        return false;
    }
    let t: String = tok.text.chars().filter(|&c| c != '_').collect();
    let digits = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0b"))
        .or_else(|| t.strip_prefix("0o"))
        .unwrap_or(&t);
    let run: String = digits.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
    u128::from_str_radix(&run, 16).map(|v| v == 1).unwrap_or(false)
}

/// Does `path` (forward-slash relative path) live in test-only code?
pub(crate) fn test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches") || path.starts_with("examples/")
}

/// Is this function a serialization/save sink for
/// `deterministic-output`?
pub(crate) fn save_fn(name: &str) -> bool {
    name == "save"
        || name == "to_wire"
        || name.starts_with("encode_")
        || name.starts_with("write_")
        || name.starts_with("render_")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every
/// non-shim `src/lib.rs` (the walker never yields shim files).
fn crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
}

/// Run the per-line rules over one lexed file. Pragma application and
/// the interprocedural rules happen later, in [`crate::engine`].
pub fn run_rules(path: &str, lx: &Lexed) -> Vec<Finding> {
    let toks = &lx.toks;
    let mut f = Vec::new();

    let tk = |i: usize| toks.get(i).map(|t| (t.kind, t.text.as_str()));
    let is_punct = |i: usize, p: &str| tk(i) == Some((TokKind::Punct, p));
    let is_ident = |i: usize, id: &str| tk(i) == Some((TokKind::Ident, id));

    for i in 0..toks.len() {
        let t = &toks[i];

        // ---- no-raw-octave-shift --------------------------------
        // `1 << <non-literal>`: the PR 3 overflow class. A literal
        // shift amount is compile-checked; a variable one must go
        // through graphkit::ids::octave_radius, which saturates.
        if t.kind == TokKind::Punct
            && t.text == "<<"
            && i > 0
            && is_one(&toks[i - 1])
            && toks.get(i + 1).is_some_and(|n| n.kind != TokKind::Int && n.kind != TokKind::Float)
        {
            f.push(Finding {
                rule: "no-raw-octave-shift",
                line: t.line,
                msg: "raw `1 << a` radius shift: overflows (debug panic / release wrap) once \
                      a >= 64; route through graphkit::ids::octave_radius"
                    .into(),
            });
        }

        // ---- no-nan-unsafe-cmp ----------------------------------
        // `partial_cmp(..).unwrap()` / `.expect(..)`: the PR 2
        // NaN-unsafe comparator class. Use f64::total_cmp.
        if t.kind == TokKind::Ident && t.text == "partial_cmp" && is_punct(i + 1, "(") {
            if let Some(close) = matching_paren(toks, i + 1) {
                if is_punct(close + 1, ".")
                    && (is_ident(close + 2, "unwrap") || is_ident(close + 2, "expect"))
                    && is_punct(close + 3, "(")
                {
                    f.push(Finding {
                        rule: "no-nan-unsafe-cmp",
                        line: t.line,
                        msg: "NaN-unsafe comparator: `partial_cmp(..).unwrap()` panics on NaN; \
                              use `f64::total_cmp`"
                            .into(),
                    });
                }
            }
        }

        // ---- chunk-ordered-merge --------------------------------
        // Every par_chunks fan-out must carry a `// merge: …`
        // annotation (same line or up to 3 lines above) stating why
        // its merge is thread-count-independent.
        if t.kind == TokKind::Ident
            && t.text == "par_chunks"
            && is_punct(i + 1, "(")
            && !(i > 0 && is_ident(i - 1, "fn"))
        {
            let annotated = lx
                .comments
                .iter()
                .any(|c| c.line + 3 >= t.line && c.line <= t.line && c.text.contains("merge:"));
            if !annotated {
                f.push(Finding {
                    rule: "chunk-ordered-merge",
                    line: t.line,
                    msg: "par_chunks fan-out without a `// merge: …` annotation; state how the \
                          shard merge stays thread-count-independent"
                        .into(),
                });
            }
        }

        // ---- forbid-unsafe (token half) -------------------------
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            f.push(Finding {
                rule: "forbid-unsafe",
                line: t.line,
                msg: "`unsafe` in a workspace that is unsafe-free by policy".into(),
            });
        }
    }

    // ---- forbid-unsafe (crate-root half) ------------------------
    // Every non-shim crate root must carry #![forbid(unsafe_code)].
    if crate_root(path) {
        let has = toks.windows(8).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
                && w[6].text == ")"
                && w[7].text == "]"
        });
        if !has {
            f.push(Finding {
                rule: "forbid-unsafe",
                line: 1,
                msg: "crate root is missing `#![forbid(unsafe_code)]`".into(),
            });
        }
    }

    f
}

/// Index of the `)` matching the `(` at `open`, tracking only round
/// parens (sufficient for call argument lists).
pub(crate) fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_on(path: &str, src: &str) -> Vec<&'static str> {
        run_rules(path, &lex(src)).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn each_lexical_rule_fires_on_its_seed() {
        let p = "crates/x/src/lib.rs";
        assert!(rules_on(p, "fn f(a: u32) -> u64 { 1u64 << a }").contains(&"no-raw-octave-shift"));
        assert!(rules_on(p, "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }")
            .contains(&"no-nan-unsafe-cmp"));
        assert!(
            rules_on(p, "fn f(d: &[u64]) { d.par_chunks(8); }").contains(&"chunk-ordered-merge")
        );
        assert!(rules_on(p, "fn f() { unsafe { g() } }").contains(&"forbid-unsafe"));
    }

    #[test]
    fn rules_stay_silent_on_clean_code() {
        let src = "#![forbid(unsafe_code)]\n\
            fn f(a: u32) -> u64 { octave_radius(a) }\n\
            fn g() { v.sort_by(|a, b| a.total_cmp(b)); }\n\
            fn h(d: &[u64]) {\n\
                // merge: shards concatenated in chunk order, thread-count-independent\n\
                d.par_chunks(8);\n\
            }\n";
        assert!(rules_on("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn shift_scoping_details() {
        // Not named lib.rs, so the crate-root forbid-unsafe check
        // stays out of the way of the is_empty assertions.
        let p = "crates/x/src/a.rs";
        // Literal exponents are compile-checked: not a finding.
        assert!(rules_on(p, "fn f() -> u64 { 1u64 << 20 }").is_empty());
        // Non-1 bases (bit twiddling) are not radius shifts.
        assert!(rules_on(p, "fn f(a: u32) -> u64 { 3u64 << a }").is_empty());
        // Bait inside strings/comments must not fire.
        assert!(rules_on(p, "fn f() { let s = \"1u64 << a\"; } // 1u64 << a").is_empty());
    }

    #[test]
    fn is_one_variants() {
        let one = |s: &str| {
            let lx = lex(s);
            is_one(&lx.toks[0])
        };
        assert!(one("1"));
        assert!(one("1u64"));
        assert!(one("0x1"));
        assert!(one("0b1"));
        assert!(one("1_u64"));
        assert!(!one("10"));
        assert!(!one("0x10"));
        assert!(!one("2u64"));
    }
}
