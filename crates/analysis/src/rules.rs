//! The rule catalogue. Every rule is named after the bug class (or
//! standing invariant) that motivated it; the mapping to the PR that
//! fixed the original instance lives in DESIGN.md §"Invariants & lint
//! rules".
//!
//! Rules operate on the token stream from [`crate::lexer`], plus a
//! per-token scope context (innermost `fn` name, whether the token is
//! inside a `#[cfg(test)] mod tests` block or a test-only file). All
//! matching is token-based, so text inside strings and comments can
//! never fire a rule.

use crate::lexer::{Lexed, Tok, TokKind};

/// The six rule identifiers, in reporting order.
pub const RULES: [&str; 6] = [
    "no-raw-octave-shift",
    "no-nan-unsafe-cmp",
    "panic-free-decode",
    "deterministic-serialization",
    "chunk-ordered-merge",
    "forbid-unsafe",
];

/// Rule id used for pragma bookkeeping errors (missing reason, unknown
/// rule, pragma that suppresses nothing).
pub const PRAGMA_RULE: &str = "pragma";

/// One diagnostic: `file:line: rule: message` once rendered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`] or [`PRAGMA_RULE`]).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// Per-token scope context.
#[derive(Clone, Debug, Default)]
struct Ctx {
    /// Innermost enclosing function name, if any.
    fn_name: Option<String>,
    /// Inside a `mod tests { … }` block.
    in_tests_mod: bool,
}

#[derive(Clone, Debug)]
enum Scope {
    Fn(String),
    Mod(String),
    Brace,
}

/// One function's source extent, for `lint:allow-fn` pragmas.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub kw_line: u32,
    /// Last line of the body (the closing `}`).
    pub end_line: u32,
}

/// Source extents of every `fn` with a body, in declaration order.
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<Option<usize>> = Vec::new(); // index into `out` for Fn scopes
    let mut pending: Option<usize> = None;
    let mut awaiting_fn = false;
    let mut kw_line = 0u32;
    let mut pdepth = 0i32;
    for t in toks {
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, name) if awaiting_fn => {
                awaiting_fn = false;
                out.push(FnSpan { name: name.to_string(), kw_line, end_line: 0 });
                pending = Some(out.len() - 1);
            }
            (TokKind::Ident, "fn") => {
                awaiting_fn = true;
                kw_line = t.line;
            }
            (TokKind::Punct, "{") => stack.push(pending.take()),
            (TokKind::Punct, "}") => {
                if let Some(Some(ix)) = stack.pop() {
                    out[ix].end_line = t.line;
                }
            }
            (TokKind::Punct, "(" | "[") => pdepth += 1,
            (TokKind::Punct, ")" | "]") => pdepth -= 1,
            (TokKind::Punct, ";") if pdepth == 0 => pending = None,
            _ => awaiting_fn = false,
        }
    }
    // Unterminated bodies (EOF mid-fn) run to the last token.
    let last = toks.last().map(|t| t.line).unwrap_or(0);
    for s in &mut out {
        if s.end_line == 0 {
            s.end_line = last;
        }
    }
    out
}

/// Compute the enclosing-scope context for every token. A `fn` or
/// `mod` keyword arms a pending scope that attaches to the next `{`
/// (a terminating `;` — trait method declaration, out-of-line module —
/// discards it).
fn contexts(toks: &[Tok]) -> Vec<Ctx> {
    let mut out = Vec::with_capacity(toks.len());
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Scope> = None;
    // Which keyword is waiting for its name ident.
    let mut awaiting: Option<&'static str> = None;
    // Paren/bracket depth: a `;` inside `[u8; 4]` in a signature must
    // not cancel the pending scope.
    let mut pdepth = 0i32;
    for t in toks {
        let fn_name = stack.iter().rev().find_map(|s| match s {
            Scope::Fn(n) => Some(n.clone()),
            _ => None,
        });
        let in_tests_mod = stack.iter().any(|s| matches!(s, Scope::Mod(n) if n == "tests"));
        out.push(Ctx { fn_name, in_tests_mod });

        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, name) if awaiting.is_some() => {
                pending = Some(match awaiting.take().unwrap() {
                    "fn" => Scope::Fn(name.to_string()),
                    _ => Scope::Mod(name.to_string()),
                });
            }
            (TokKind::Ident, "fn") => awaiting = Some("fn"),
            (TokKind::Ident, "mod") => awaiting = Some("mod"),
            (TokKind::Punct, "{") => stack.push(pending.take().unwrap_or(Scope::Brace)),
            (TokKind::Punct, "}") => {
                stack.pop();
            }
            (TokKind::Punct, "(" | "[") => pdepth += 1,
            (TokKind::Punct, ")" | "]") => pdepth -= 1,
            (TokKind::Punct, ";") if pdepth == 0 => pending = None,
            _ => awaiting = None,
        }
    }
    out
}

/// Is this integer literal the value 1 (any radix/suffix)?
fn is_one(tok: &Tok) -> bool {
    if tok.kind != TokKind::Int {
        return false;
    }
    let t: String = tok.text.chars().filter(|&c| c != '_').collect();
    let digits = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0b"))
        .or_else(|| t.strip_prefix("0o"))
        .unwrap_or(&t);
    let run: String = digits.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
    u128::from_str_radix(&run, 16).map(|v| v == 1).unwrap_or(false)
}

/// Does `path` (forward-slash relative path) live in test-only code?
fn test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches") || path.starts_with("examples/")
}

/// Is this file one of the designated decode surfaces for
/// `panic-free-decode`? (Plus: any `fn from_wire` body anywhere.)
fn decode_file(path: &str) -> bool {
    path.ends_with("crates/graphkit/src/wire.rs")
        || path == "crates/graphkit/src/wire.rs"
        || path.ends_with("crates/core/src/snapshot.rs")
        || path == "crates/core/src/snapshot.rs"
}

/// Is this function a serialization/save path for
/// `deterministic-serialization`?
fn save_fn(name: &str) -> bool {
    name == "save"
        || name == "to_wire"
        || name.starts_with("encode_")
        || name.starts_with("write_")
        || name.starts_with("render_")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every
/// non-shim `src/lib.rs` (the walker never yields shim files).
fn crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
}

/// Run all six rules over one lexed file. Pragma application happens
/// later, in [`crate::engine`].
pub fn run_rules(path: &str, lx: &Lexed) -> Vec<Finding> {
    let toks = &lx.toks;
    let ctx = contexts(toks);
    let mut f = Vec::new();
    let in_test_file = test_path(path);

    let tk = |i: usize| toks.get(i).map(|t| (t.kind, t.text.as_str()));
    let is_punct = |i: usize, p: &str| tk(i) == Some((TokKind::Punct, p));
    let is_ident = |i: usize, id: &str| tk(i) == Some((TokKind::Ident, id));

    for i in 0..toks.len() {
        let t = &toks[i];
        let in_tests = ctx[i].in_tests_mod || in_test_file;

        // ---- no-raw-octave-shift --------------------------------
        // `1 << <non-literal>`: the PR 3 overflow class. A literal
        // shift amount is compile-checked; a variable one must go
        // through graphkit::ids::octave_radius, which saturates.
        if t.kind == TokKind::Punct
            && t.text == "<<"
            && i > 0
            && is_one(&toks[i - 1])
            && toks.get(i + 1).is_some_and(|n| n.kind != TokKind::Int && n.kind != TokKind::Float)
        {
            f.push(Finding {
                rule: "no-raw-octave-shift",
                line: t.line,
                msg: "raw `1 << a` radius shift: overflows (debug panic / release wrap) once \
                      a >= 64; route through graphkit::ids::octave_radius"
                    .into(),
            });
        }

        // ---- no-nan-unsafe-cmp ----------------------------------
        // `partial_cmp(..).unwrap()` / `.expect(..)`: the PR 2
        // NaN-unsafe comparator class. Use f64::total_cmp.
        if t.kind == TokKind::Ident && t.text == "partial_cmp" && is_punct(i + 1, "(") {
            if let Some(close) = matching_paren(toks, i + 1) {
                if is_punct(close + 1, ".")
                    && (is_ident(close + 2, "unwrap") || is_ident(close + 2, "expect"))
                    && is_punct(close + 3, "(")
                {
                    f.push(Finding {
                        rule: "no-nan-unsafe-cmp",
                        line: t.line,
                        msg: "NaN-unsafe comparator: `partial_cmp(..).unwrap()` panics on NaN; \
                              use `f64::total_cmp`"
                            .into(),
                    });
                }
            }
        }

        // ---- panic-free-decode ----------------------------------
        // Decode surfaces must turn corrupt input into io::Error,
        // never a panic. Scope: the wire/snapshot files (outside
        // `mod tests`) plus every `fn from_wire` body.
        let in_decode =
            !in_tests && (decode_file(path) || ctx[i].fn_name.as_deref() == Some("from_wire"));
        if in_decode {
            let panic_msg: Option<&str> = if is_punct(i, ".")
                && (is_ident(i + 1, "unwrap") || is_ident(i + 1, "expect"))
                && is_punct(i + 2, "(")
            {
                Some(
                    "`.unwrap()`/`.expect()` in a decode path: corrupt input must surface as \
                      io::Error, never a panic",
                )
            } else if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && is_punct(i + 1, "!")
            {
                Some("panicking macro in a decode path: corrupt input must surface as io::Error")
            } else if t.kind == TokKind::Punct
                && t.text == "["
                && i > 0
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].text == ")"
                    || toks[i - 1].text == "]"
                    || toks[i - 1].text == "?")
                && toks[i - 1].text != "vec"
            {
                Some(
                    "direct slice indexing in a decode path can panic on corrupt input; \
                      bounds-check and return InvalidData instead",
                )
            } else {
                None
            };
            if let Some(msg) = panic_msg {
                f.push(Finding { rule: "panic-free-decode", line: t.line, msg: msg.into() });
            }
        }

        // ---- deterministic-serialization ------------------------
        // Byte-deterministic saves: a save/serialize path touching an
        // unordered map must document (pragma) that keys are sorted
        // before anything reaches the writer.
        if !in_tests && ctx[i].fn_name.as_deref().is_some_and(save_fn) {
            let unordered_ty =
                t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
            let unordered_iter = is_punct(i, ".")
                && (is_ident(i + 1, "keys") || is_ident(i + 1, "values"))
                && is_punct(i + 2, "(");
            if unordered_ty || unordered_iter {
                f.push(Finding {
                    rule: "deterministic-serialization",
                    line: t.line,
                    msg: "unordered HashMap/HashSet feeding a serialization path breaks \
                          byte-deterministic saves; sort keys before writing (and document \
                          with a pragma)"
                        .into(),
                });
            }
        }

        // ---- chunk-ordered-merge --------------------------------
        // Every par_chunks fan-out must carry a `// merge: …`
        // annotation (same line or up to 3 lines above) stating why
        // its merge is thread-count-independent.
        if t.kind == TokKind::Ident
            && t.text == "par_chunks"
            && is_punct(i + 1, "(")
            && !(i > 0 && is_ident(i - 1, "fn"))
        {
            let annotated = lx
                .comments
                .iter()
                .any(|c| c.line + 3 >= t.line && c.line <= t.line && c.text.contains("merge:"));
            if !annotated {
                f.push(Finding {
                    rule: "chunk-ordered-merge",
                    line: t.line,
                    msg: "par_chunks fan-out without a `// merge: …` annotation; state how the \
                          shard merge stays thread-count-independent"
                        .into(),
                });
            }
        }

        // ---- forbid-unsafe (token half) -------------------------
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            f.push(Finding {
                rule: "forbid-unsafe",
                line: t.line,
                msg: "`unsafe` in a workspace that is unsafe-free by policy".into(),
            });
        }
    }

    // ---- forbid-unsafe (crate-root half) ------------------------
    // Every non-shim crate root must carry #![forbid(unsafe_code)].
    if crate_root(path) {
        let has = toks.windows(8).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
                && w[6].text == ")"
                && w[7].text == "]"
        });
        if !has {
            f.push(Finding {
                rule: "forbid-unsafe",
                line: 1,
                msg: "crate root is missing `#![forbid(unsafe_code)]`".into(),
            });
        }
    }

    f
}

/// Index of the `)` matching the `(` at `open`, tracking only round
/// parens (sufficient for call argument lists).
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_on(path: &str, src: &str) -> Vec<&'static str> {
        run_rules(path, &lex(src)).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn each_rule_fires_on_its_seed() {
        let p = "crates/x/src/lib.rs";
        assert!(rules_on(p, "fn f(a: u32) -> u64 { 1u64 << a }").contains(&"no-raw-octave-shift"));
        assert!(rules_on(p, "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }")
            .contains(&"no-nan-unsafe-cmp"));
        assert!(rules_on(p, "fn from_wire(b: &[u8]) -> u8 { b[0] }").contains(&"panic-free-decode"));
        assert!(rules_on(p, "fn save(&self) { for k in self.covers.keys() { w(k); } }")
            .contains(&"deterministic-serialization"));
        assert!(
            rules_on(p, "fn f(d: &[u64]) { d.par_chunks(8); }").contains(&"chunk-ordered-merge")
        );
        assert!(rules_on(p, "fn f() { unsafe { g() } }").contains(&"forbid-unsafe"));
    }

    #[test]
    fn rules_stay_silent_on_clean_code() {
        let src = "#![forbid(unsafe_code)]\n\
            fn f(a: u32) -> u64 { octave_radius(a) }\n\
            fn g() { v.sort_by(|a, b| a.total_cmp(b)); }\n\
            fn from_wire(b: &[u8]) -> io::Result<u8> { b.first().copied().ok_or_else(bad) }\n\
            fn h(d: &[u64]) {\n\
                // merge: shards concatenated in chunk order, thread-count-independent\n\
                d.par_chunks(8);\n\
            }\n";
        assert!(rules_on("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn shift_scoping_details() {
        // Not named lib.rs, so the crate-root forbid-unsafe check
        // stays out of the way of the is_empty assertions.
        let p = "crates/x/src/a.rs";
        // Literal exponents are compile-checked: not a finding.
        assert!(rules_on(p, "fn f() -> u64 { 1u64 << 20 }").is_empty());
        // Non-1 bases (bit twiddling) are not radius shifts.
        assert!(rules_on(p, "fn f(a: u32) -> u64 { 3u64 << a }").is_empty());
        // Bait inside strings/comments must not fire.
        assert!(rules_on(p, "fn f() { let s = \"1u64 << a\"; } // 1u64 << a").is_empty());
    }

    #[test]
    fn fn_and_mod_contexts() {
        let src = "fn outer() { 1 } mod tests { fn inner() { 2 } } fn save() { 3 }";
        let lx = lex(src);
        let ctx = contexts(&lx.toks);
        let at = |txt: &str| {
            let i = lx.toks.iter().position(|t| t.text == txt).unwrap();
            ctx[i].clone()
        };
        assert_eq!(at("1").fn_name.as_deref(), Some("outer"));
        assert!(!at("1").in_tests_mod);
        assert_eq!(at("2").fn_name.as_deref(), Some("inner"));
        assert!(at("2").in_tests_mod);
        assert_eq!(at("3").fn_name.as_deref(), Some("save"));
    }

    #[test]
    fn fn_pointer_type_does_not_steal_a_name() {
        // `type F = fn(u32) -> bool;` must not arm a bogus fn scope.
        let src = "type F = fn(u32) -> bool; fn real() { body }";
        let lx = lex(src);
        let ctx = contexts(&lx.toks);
        let i = lx.toks.iter().position(|t| t.text == "body").unwrap();
        assert_eq!(ctx[i].fn_name.as_deref(), Some("real"));
    }

    #[test]
    fn is_one_variants() {
        let one = |s: &str| {
            let lx = lex(s);
            is_one(&lx.toks[0])
        };
        assert!(one("1"));
        assert!(one("1u64"));
        assert!(one("0x1"));
        assert!(one("0b1"));
        assert!(one("1_u64"));
        assert!(!one("10"));
        assert!(!one("0x10"));
        assert!(!one("2u64"));
    }
}
