//! A small, dependency-free Rust lexer — just enough structure for
//! token-pattern lint rules to be *sound* against the classic
//! false-positive traps: rule-triggering text inside string literals,
//! raw strings, char literals, and (nested) comments must never
//! surface as tokens.
//!
//! The lexer produces a flat token stream plus a separate comment
//! list. Comments are kept because two lint features live in them:
//! `// lint:allow(rule): reason` suppression pragmas and the
//! `// merge: …` annotations required next to every `par_chunks`
//! fan-out site.
//!
//! Deliberately *not* handled (not needed for the rule set, and absent
//! from this workspace): `union` items, macro definitions with exotic
//! fragment specifiers, and multi-byte `char` literals used as
//! lifetimes — a plain `'é'` char literal still lexes correctly.

/// Token classification. Rules match on `(kind, text)` pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Integer literal, suffix included (`1`, `1u64`, `0x_1F`).
    Int,
    /// Float literal (`2.5`, `1.0e3`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation. Single characters, except `<<` which is fused so
    /// shift expressions are a single token.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// The raw source text (string/char literals keep delimiters).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line or block), with enough context for pragma
/// targeting.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// True when no token precedes the comment on its line — a
    /// standalone pragma applies to the next code line, a trailing one
    /// to its own line.
    pub standalone: bool,
}

/// Lexer output: the token stream and the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src`. Never panics: unterminated literals simply run to EOF.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_tok = false;

    macro_rules! push_tok {
        ($kind:expr, $start:expr, $end:expr, $line:expr) => {{
            out.toks.push(Tok { kind: $kind, text: src[$start..$end].to_string(), line: $line });
            line_has_tok = true;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Newlines and whitespace.
        if c == b'\n' {
            line += 1;
            line_has_tok = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: src[start..i].to_string(),
                standalone: !line_has_tok,
            });
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let (start, start_line, standalone) = (i, line, !line_has_tok);
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: src[start..i].to_string(),
                standalone,
            });
            continue;
        }
        // String literals, including raw/byte/C prefixes: the prefix
        // letters must be consumed *here* or `r#"1u64 << a"#` would
        // lex its payload as code.
        if c == b'"' || (is_ident_start(c) && string_prefix_len(b, i).is_some()) {
            let (tok_line, start) = (line, i);
            let hashes = if c == b'"' {
                i += 1;
                None // plain (escaped) string
            } else {
                let plen = string_prefix_len(b, i).unwrap();
                let raw = src[i..i + plen].contains('r');
                let mut h = 0usize;
                i += plen;
                while b.get(i) == Some(&b'#') {
                    h += 1;
                    i += 1;
                }
                i += 1; // opening quote
                raw.then_some(h)
            };
            match hashes {
                None => {
                    // Escaped string: backslash consumes the next char.
                    while i < b.len() {
                        match b[i] {
                            b'\\' => {
                                if b.get(i + 1) == Some(&b'\n') {
                                    line += 1;
                                }
                                i += 2;
                            }
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
                Some(h) => {
                    // Raw string: ends at `"` followed by `h` hashes.
                    while i < b.len() {
                        if b[i] == b'"'
                            && b[i + 1..].iter().take(h).filter(|&&x| x == b'#').count() == h
                        {
                            i += 1 + h;
                            break;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            push_tok!(TokKind::Str, start, i.min(b.len()), tok_line);
            continue;
        }
        // Byte-char literal `b'x'`.
        if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            let (tok_line, start) = (line, i);
            i += 2;
            i = consume_char_body(b, i);
            push_tok!(TokKind::Char, start, i.min(b.len()), tok_line);
            continue;
        }
        // `'…` — lifetime or char literal. A lifetime is `'` + ident
        // with no closing quote after the ident run.
        if c == b'\'' {
            let (tok_line, start) = (line, i);
            let nxt = b.get(i + 1).copied().unwrap_or(0);
            if nxt == b'\\' || !is_ident_start(nxt) {
                // Escaped or punctuation char literal, e.g. '\'' '"'.
                i += 1;
                i = consume_char_body(b, i);
                push_tok!(TokKind::Char, start, i.min(b.len()), tok_line);
            } else {
                let mut k = i + 1;
                while k < b.len() && is_ident_char(b[k]) {
                    k += 1;
                }
                if b.get(k) == Some(&b'\'') {
                    // 'a' — char literal (also multi-byte like 'é').
                    i = k + 1;
                    push_tok!(TokKind::Char, start, i, tok_line);
                } else {
                    i = k;
                    push_tok!(TokKind::Lifetime, start, i, tok_line);
                }
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            push_tok!(TokKind::Ident, start, i, line);
            continue;
        }
        // Number. Consume the alphanumeric run (covers 0xFF, 1u64,
        // 1e3); a `.` joins only when followed by a digit so `1..n`
        // stays three tokens.
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                kind = TokKind::Float;
                i += 1;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
            }
            push_tok!(kind, start, i, line);
            continue;
        }
        // Punctuation; fuse `<<` (shift) into one token.
        if c == b'<' && b.get(i + 1) == Some(&b'<') {
            push_tok!(TokKind::Punct, i, i + 2, line);
            i += 2;
            continue;
        }
        push_tok!(TokKind::Punct, i, i + 1, line);
        i += 1;
    }
    out
}

/// If the bytes at `i` start a (raw/byte/C) string literal prefix,
/// return the prefix length in bytes (`r` → 1, `br` → 2, …). The
/// prefix must be followed by `"` (or `#`s then `"` when raw).
fn string_prefix_len(b: &[u8], i: usize) -> Option<usize> {
    for pfx in [&b"br"[..], b"cr", b"rb", b"b", b"c", b"r"] {
        if b[i..].starts_with(pfx) {
            let mut j = i + pfx.len();
            if pfx.contains(&b'r') {
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
            }
            if b.get(j) == Some(&b'"') {
                return Some(pfx.len());
            }
            // Longest-prefix order: if `br` fails, `b` alone is still
            // tried on the next iteration.
        }
    }
    None
}

/// Consume a char-literal body up to and including the closing `'`.
/// `i` points just past the opening quote.
fn consume_char_body(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "1u64 << x and unwrap()"; // 1u64 << y
            /* partial_cmp().unwrap() */
            let b = r#"panic!("no")"#;
            let c = '"'; let d = b'\''; let e: &'static str = "ok";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"str".to_string()));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(!lx.comments[0].standalone);
        assert!(lx.comments[1].standalone);
    }

    #[test]
    fn shift_is_one_token_and_ranges_are_not_floats() {
        let lx = lex("let x = 1u64 << a; for i in 1..n {}");
        let shifts: Vec<_> = lx.toks.iter().filter(|t| t.text == "<<").collect();
        assert_eq!(shifts.len(), 1);
        let one = lx.toks.iter().find(|t| t.text == "1u64").unwrap();
        assert_eq!(one.kind, TokKind::Int);
        let bare = lx.toks.iter().find(|t| t.text == "1").unwrap();
        assert_eq!(bare.kind, TokKind::Int);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let lx = lex("a\n/* x /* y */ z\nmore */ b\nc");
        let ids = lx.toks.iter().map(|t| (t.text.clone(), t.line)).collect::<Vec<_>>();
        assert_eq!(ids, vec![("a".into(), 1), ("b".into(), 3), ("c".into(), 4)]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lx = lex(r####"let s = r##"quote "# inside 1u64 << a"##; let t = 2;"####);
        assert!(lx.toks.iter().all(|t| t.text != "<<"));
        assert!(lx.toks.iter().any(|t| t.text == "2"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = lx.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lx.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }
}
