//! The four interprocedural rules: panic-reachability over the
//! serve/repair cones, determinism taint into save sinks, allocation
//! discipline in the route-hot cone, and octave/weight arithmetic
//! taint.
//!
//! Each rule is a reachability cone over [`crate::callgraph`] plus a
//! token predicate applied to every fn body inside the cone:
//!
//! | rule | roots | what fires |
//! |---|---|---|
//! | `panic-free-serve` | `route` methods, `serve_batch`, `from_wire`, `Scheme::repair` | `unwrap`/`expect`, panic macros; raw `[..]` indexing in the serve cone only |
//! | `deterministic-output` | `save`, `to_wire`, `encode_*`, `write_*`, `render_*` | `HashMap`/`HashSet` mention, `.keys()`, `.values()` |
//! | `no-alloc-in-route` | `route` methods | `Vec::new`, `vec!`, `.to_vec()`, `format!`, `.clone()`, `Box::new`; stops at decode constructors ([`alloc_cold`]) |
//! | `octave-taint` | (per-fn dataflow, no cone) | `+`/`<<` on a value derived from `octave_radius` |
//!
//! The **repair cone** (`Scheme::repair`) deliberately checks only
//! panics, not raw indexing: repair re-enters the whole construction
//! pipeline, whose CSR-arena index arithmetic is bounds-correct by
//! construction and exercised by every build test — flagging hundreds
//! of those sites would drown the signal. The **serve cone** (route /
//! serve_batch / from_wire) gets full strictness including indexing:
//! those paths face adversarial input (corrupt snapshots) and
//! long-lived uptime, where a single panicking index is an outage.
//!
//! Root selection is restricted to the serving crates (`core`,
//! `treeroute`, `graphkit`, `sim`) so the offline baselines — which
//! also implement `Router::route` — don't drag their Dijkstra arenas
//! into the cone.

use std::collections::HashMap;

use crate::callgraph::CallGraph;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::{matching_paren, save_fn, test_path, Finding};

/// Allocation constructors flagged by `no-alloc-in-route`.
const ALLOC_HEADS: [&str; 4] = ["to_vec", "clone", "to_string", "to_owned"];

/// Is this file allowed to contribute cone roots? (The baselines
/// crate implements `Router::route` too, but is explicitly out of
/// scope — it exists to be compared against, not served.)
fn cone_crate(path: &str) -> bool {
    !path.starts_with("crates/")
        || ["crates/core/", "crates/treeroute/", "crates/graphkit/", "crates/sim/"]
            .iter()
            .any(|p| path.starts_with(p))
}

/// Home of `octave_radius`/`cost_add`: arithmetic here *defines* the
/// blessed operations, so octave-taint does not apply.
fn octave_home(path: &str) -> bool {
    path.ends_with("graphkit/src/ids.rs")
}

/// Cold boundary for `no-alloc-in-route`: decode constructors rebuild
/// whole stores and allocate by design; reaching one from a route
/// means a spill-reload cache miss (amortized, off the per-hop path),
/// so the allocation cone stops there. `panic-free-serve` still
/// covers these fns via its own decode roots.
fn alloc_cold(name: &str) -> bool {
    name.starts_with("from_") || name.starts_with("try_from_") || name == "load_center"
}

/// Run all four interprocedural rules. `sources` maps each relative
/// path to its lexed tokens (the same ones the graph was built from).
pub fn run_interproc(g: &CallGraph, sources: &HashMap<String, &Lexed>) -> Vec<(String, Finding)> {
    let serve_roots = g.find(|n| {
        !n.item.in_tests
            && !test_path(&n.file)
            && cone_crate(&n.file)
            && (n.item.name == "serve_batch"
                || n.item.name == "from_wire"
                || (n.item.name == "route" && n.item.owner.is_some())
                // Snapshot loading is the other decode entry.
                || ((n.item.name == "load" || n.item.name == "load_lazy")
                    && n.item.owner.is_some())
                // The wire primitive layer is rooted directly:
                // Reader and Writer mirror method names (u32 reads /
                // u32 writes — deliberate API symmetry), so every
                // `.u32()` call is two-candidate ambiguous and the
                // resolver refuses the edge. Rooting Reader keeps the
                // primitive decode surface inside the cone anyway.
                || (n.item.owner.as_deref() == Some("Reader") && n.file.ends_with("wire.rs")))
    });
    // from_wire is a universal decode contract: root it everywhere,
    // even outside the serving crates.
    let decode_roots =
        g.find(|n| !n.item.in_tests && !test_path(&n.file) && n.item.name == "from_wire");
    let serve_roots: Vec<usize> = {
        let mut r = serve_roots;
        r.extend(decode_roots);
        r.sort_unstable();
        r.dedup();
        r
    };
    let repair_roots = g.find(|n| {
        !n.item.in_tests
            && !test_path(&n.file)
            && cone_crate(&n.file)
            && n.item.name == "repair"
            && n.item.owner.is_some()
    });
    let route_roots = g.find(|n| {
        !n.item.in_tests
            && !test_path(&n.file)
            && cone_crate(&n.file)
            && n.item.name == "route"
            && n.item.owner.is_some()
    });
    let save_roots = g.find(|n| !n.item.in_tests && !test_path(&n.file) && save_fn(&n.item.name));

    let serve_pred = g.reachable(&serve_roots);
    let repair_pred = g.reachable(&repair_roots);
    let route_pred = g.reachable_except(&route_roots, |n| alloc_cold(&n.item.name));
    let save_pred = g.reachable(&save_roots);

    let mut out: Vec<(String, Finding)> = Vec::new();
    for (i, node) in g.fns.iter().enumerate() {
        if node.item.in_tests || test_path(&node.file) {
            continue;
        }
        let Some((bs, be)) = node.item.body else { continue };
        let Some(lx) = sources.get(&node.file) else { continue };
        let body = &lx.toks[bs..=be.min(lx.toks.len() - 1)];

        let in_serve = serve_pred.contains_key(&i);
        let in_repair = repair_pred.contains_key(&i);
        if in_serve || in_repair {
            let (pred, cone) =
                if in_serve { (&serve_pred, "serve") } else { (&repair_pred, "repair") };
            let chain = g.chain(pred, i);
            scan_panic_sites(body, in_serve, cone, &chain, |f| out.push((node.file.clone(), f)));
        }
        if save_pred.contains_key(&i) {
            let chain = g.chain(&save_pred, i);
            scan_unordered_iteration(body, &chain, |f| out.push((node.file.clone(), f)));
        }
        if route_pred.contains_key(&i) {
            let chain = g.chain(&route_pred, i);
            scan_allocations(body, &chain, |f| out.push((node.file.clone(), f)));
        }
        if !octave_home(&node.file)
            && node.item.name != "octave_radius"
            && node.item.name != "cost_add"
        {
            scan_octave_taint(body, |f| out.push((node.file.clone(), f)));
        }
    }
    out
}

/// Token index ranges covered by `debug_assert*!(…)` invocations —
/// their argument expressions are compiled out of release builds, so
/// panic/indexing rules skip them.
fn debug_assert_spans(body: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..body.len() {
        if body[i].kind == TokKind::Ident
            && matches!(
                body[i].text.as_str(),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
            )
            && body.get(i + 1).is_some_and(|t| t.text == "!")
            && body.get(i + 2).is_some_and(|t| t.text == "(")
        {
            if let Some(close) = matching_paren(body, i + 2) {
                spans.push((i, close));
            }
        }
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(s, e)| s <= i && i <= e)
}

/// `panic-free-serve`: unwrap/expect, panic macros, and (serve cone
/// only) raw indexing.
fn scan_panic_sites(
    body: &[Tok],
    strict_indexing: bool,
    cone: &str,
    chain: &str,
    mut emit: impl FnMut(Finding),
) {
    let dbg = debug_assert_spans(body);
    for i in 0..body.len() {
        if in_spans(&dbg, i) {
            continue;
        }
        let t = &body[i];
        let nxt = |k: usize| body.get(i + k).map(|t| t.text.as_str());
        let msg: Option<String> = if t.kind == TokKind::Punct
            && t.text == "."
            && body.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && (n.text == "unwrap" || n.text == "expect")
            })
            && nxt(2) == Some("(")
        {
            Some(format!(
                "`.{}()` in the {cone} cone ({chain}): a corrupt store or lost worker must \
                 surface as an error or fallback, never a panic",
                body[i + 1].text
            ))
        } else if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && nxt(1) == Some("!")
        {
            Some(format!(
                "`{}!` in the {cone} cone ({chain}): return an error/fallback outcome instead",
                t.text
            ))
        } else if strict_indexing
            && t.kind == TokKind::Punct
            && t.text == "["
            && i > 0
            && (body[i - 1].kind == TokKind::Ident
                || body[i - 1].text == ")"
                || body[i - 1].text == "]"
                || body[i - 1].text == "?")
            // A keyword before `[` is a slice pattern or array
            // expression (`let [a, b] = …`, `for [x, y] in …`), not an
            // index on a receiver.
            && !matches!(
                body[i - 1].text.as_str(),
                "vec" | "let" | "else" | "in" | "if" | "while" | "for" | "match" | "return"
                    | "mut" | "ref" | "move" | "box"
            )
        {
            Some(format!(
                "raw `[..]` indexing in the serve cone ({chain}): can panic on corrupt input; \
                 use `get()` with a documented fallback"
            ))
        } else {
            None
        };
        if let Some(msg) = msg {
            emit(Finding { rule: "panic-free-serve", line: t.line, msg });
        }
    }
}

/// `deterministic-output`: unordered-map iteration anywhere in a save
/// sink's cone.
fn scan_unordered_iteration(body: &[Tok], chain: &str, mut emit: impl FnMut(Finding)) {
    for i in 0..body.len() {
        let t = &body[i];
        let unordered_ty = t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
        let unordered_iter = t.kind == TokKind::Punct
            && t.text == "."
            && body.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && (n.text == "keys" || n.text == "values")
            })
            && body.get(i + 2).is_some_and(|n| n.text == "(");
        if unordered_ty || unordered_iter {
            emit(Finding {
                rule: "deterministic-output",
                line: t.line,
                msg: format!(
                    "unordered HashMap/HashSet feeding a serialization sink ({chain}) breaks \
                     byte-deterministic saves; sort keys before writing (and document with a \
                     pragma)"
                ),
            });
        }
    }
}

/// `no-alloc-in-route`: allocation constructors in the route-hot cone.
fn scan_allocations(body: &[Tok], chain: &str, mut emit: impl FnMut(Finding)) {
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let nxt = |k: usize| body.get(i + k).map(|t| t.text.as_str());
        let hit: Option<&str> = if (t.text == "Vec" || t.text == "Box" || t.text == "String")
            && nxt(1) == Some(":")
            && nxt(2) == Some(":")
            && matches!(nxt(3), Some("new") | Some("with_capacity"))
        {
            Some("container constructor")
        } else if (t.text == "vec" || t.text == "format") && nxt(1) == Some("!") {
            Some("allocating macro")
        } else if ALLOC_HEADS.contains(&t.text.as_str())
            && i > 0
            && body[i - 1].text == "."
            && nxt(1) == Some("(")
        {
            Some("allocating method")
        } else {
            None
        };
        if let Some(kind) = hit {
            emit(Finding {
                rule: "no-alloc-in-route",
                line: t.line,
                msg: format!(
                    "{kind} `{}` in the route-hot cone ({chain}): reuse a scratch buffer or \
                     justify with a pragma (per-route output buffers are legitimate)",
                    t.text
                ),
            });
        }
    }
}

/// `octave-taint`: intra-fn forward dataflow from `octave_radius`
/// results into raw `+`/`<<` arithmetic. Radius values saturate at
/// `u64::MAX`, so any unchecked addition on one can wrap; sums must go
/// through `graphkit::ids::cost_add`.
fn scan_octave_taint(body: &[Tok], mut emit: impl FnMut(Finding)) {
    // Pass 1: collect tainted let-bindings (two sweeps so a taint
    // introduced late still propagates through earlier-scanned
    // bindings on the second sweep — enough for straight-line code).
    let mut tainted: Vec<String> = Vec::new();
    for _ in 0..2 {
        let mut i = 0usize;
        while i < body.len() {
            if body[i].kind == TokKind::Ident && body[i].text == "let" {
                let mut j = i + 1;
                while body.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                let var = match body.get(j) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Scan the initializer up to the statement `;`.
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut hit = false;
                while let Some(t) = body.get(k) {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    if t.kind == TokKind::Ident
                        && (t.text == "octave_radius" || tainted.contains(&t.text))
                    {
                        hit = true;
                    }
                    k += 1;
                }
                if hit && !tainted.contains(&var) {
                    tainted.push(var);
                }
                i = k;
                continue;
            }
            i += 1;
        }
    }

    // Pass 2: flag `+`/`<<` whose operand is tainted or a direct
    // `octave_radius(..)` result.
    let flag_line = |emit: &mut dyn FnMut(Finding), line: u32, what: &str| {
        emit(Finding {
            rule: "octave-taint",
            line,
            msg: format!(
                "raw arithmetic on {what}: octave radii saturate at u64::MAX, so `+`/`<<` can \
                 wrap; use graphkit::ids::cost_add"
            ),
        });
    };
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind == TokKind::Punct && (t.text == "+" || t.text == "<<") {
            let prev_tainted =
                i > 0 && body[i - 1].kind == TokKind::Ident && tainted.contains(&body[i - 1].text);
            let next_tainted = body
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && tainted.contains(&n.text));
            let next_call = body
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text == "octave_radius");
            if prev_tainted || next_tainted || next_call {
                flag_line(&mut emit, t.line, "an octave-radius-derived value");
            }
        }
        // `octave_radius(..) + x` / `octave_radius(..) << x`.
        if t.kind == TokKind::Ident
            && t.text == "octave_radius"
            && body.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_paren(body, i + 1) {
                if body.get(close + 1).is_some_and(|n| n.text == "+" || n.text == "<<") {
                    flag_line(&mut emit, body[close + 1].line, "an octave_radius() result");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn taint(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let mut out = Vec::new();
        scan_octave_taint(&lx.toks, |f| out.push(f));
        out
    }

    #[test]
    fn octave_taint_flows_through_lets() {
        let f = taint("fn f(o: u32) { let r = octave_radius(o); let d = base(r); let s = d + 1; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("cost_add"));
    }

    #[test]
    fn octave_taint_direct_result_addition() {
        let f = taint("fn f(o: u32) { let s = octave_radius(o) + 1; }");
        // Fires twice is fine conceptually, but dedupe expectations:
        assert!(!f.is_empty());
    }

    #[test]
    fn octave_taint_silent_on_cost_add_usage() {
        let f = taint("fn f(o: u32) { let r = octave_radius(o); let s = cost_add(d, r); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn octave_taint_untainted_arithmetic_is_fine() {
        assert!(taint("fn f(a: u64, b: u64) -> u64 { a + b }").is_empty());
    }
}
