#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # analysis — `agm-lint`, the repo's invariant linter
//!
//! Every correctness property this reproduction leans on is enforced
//! dynamically (proptests, parity tests, corruption tests). This crate
//! makes the *bug classes behind those tests* statically visible: each
//! rule names an invariant, cites its motivating fix, and fails CI on
//! regressions — the claims→evidence map (ROADMAP item 5) made
//! executable.
//!
//! | rule | invariant | origin |
//! |---|---|---|
//! | `no-raw-octave-shift` | radius shifts go through `octave_radius` | PR 3: `1u64 << a` overflow at Δ ≥ 2⁶¹ |
//! | `no-nan-unsafe-cmp` | comparators are total | PR 2: NaN-unsafe `partial_cmp().unwrap()` sorts |
//! | `panic-free-decode` | decode surfaces error, never panic | PR 5: snapshot corruption contract |
//! | `deterministic-serialization` | saves are byte-deterministic | PR 5: `Scheme::save` sorted-key contract |
//! | `chunk-ordered-merge` | fan-out merges are thread-count-independent | PR 4: chunk-ordered merge discipline |
//! | `forbid-unsafe` | the workspace stays `unsafe`-free | standing policy since PR 1 |
//!
//! The scanner is a self-contained lexer (offline container — no
//! `syn`): strings, raw strings, char literals, and nested comments
//! are skipped correctly, so rule-triggering text inside them never
//! fires. Exceptions are documented in place via
//! `// lint:allow(rule): reason` pragmas; a pragma without a reason —
//! or one that suppresses nothing — is itself an error.
//!
//! Run it with `cargo run --release -p analysis --bin agm-lint`.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{find_workspace_root, lint_source, lint_workspace, Report};
pub use rules::{Finding, RULES};
