#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # analysis — `agm-lint`, the repo's invariant linter
//!
//! Every correctness property this reproduction leans on is enforced
//! dynamically (proptests, parity tests, corruption tests). This crate
//! makes the *bug classes behind those tests* statically visible: each
//! rule names an invariant, cites its motivating fix, and fails CI on
//! regressions — the claims→evidence map (ROADMAP item 5) made
//! executable.
//!
//! Since v2 the linter is call-graph-aware: a hand-written item parser
//! ([`items`]) and unique-name call resolution ([`callgraph`]) let
//! four rules reason over *reachability* instead of single lines — an
//! `unwrap()` three calls below `serve_batch` is now as visible as one
//! inside it.
//!
//! | rule | scope | invariant | origin |
//! |---|---|---|---|
//! | `no-raw-octave-shift` | per line | radius shifts go through `octave_radius` | PR 3: `1u64 << a` overflow at Δ ≥ 2⁶¹ |
//! | `no-nan-unsafe-cmp` | per line | comparators are total | PR 2: NaN-unsafe `partial_cmp().unwrap()` sorts |
//! | `panic-free-serve` | serve/repair cones | route/serve/repair/decode never panic | PR 5 decode contract, widened to the whole serving call graph |
//! | `deterministic-output` | save cones | saves are byte-deterministic | PR 5: `Scheme::save` sorted-key contract |
//! | `no-alloc-in-route` | route cone | hot-path allocation is deliberate | PR 7 serving-engine latency work |
//! | `octave-taint` | per fn, dataflow | radius arithmetic uses `cost_add` | PR 3/8: saturating-add discipline |
//! | `chunk-ordered-merge` | per line | fan-out merges are thread-count-independent | PR 4: chunk-ordered merge discipline |
//! | `forbid-unsafe` | per line | the workspace stays `unsafe`-free | standing policy since PR 1 |
//!
//! The scanner is a self-contained lexer (offline container — no
//! `syn`): strings, raw strings, char literals, and nested comments
//! are skipped correctly, so rule-triggering text inside them never
//! fires. Exceptions are documented in place via
//! `// lint:allow(rule): reason` pragmas; a pragma without a reason —
//! or one that suppresses nothing — is itself an error.
//!
//! CI runs in baseline-diff mode: `agm-lint --diff-baseline` fails
//! only on findings *new* relative to the checked-in
//! `crates/analysis/BASELINE.json` ([`baseline`]), and
//! `--format sarif` / `--sarif-out` emit SARIF 2.1.0 ([`sarif`]) for
//! code-scanning annotations.
//!
//! Run it with `cargo run --release -p analysis --bin agm-lint`.

pub mod baseline;
pub mod callgraph;
pub mod cones;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod sarif;

pub use engine::{find_workspace_root, lint_files, lint_source, lint_workspace, Report};
pub use rules::{Finding, RULES};
