//! Findings baseline: serialize the current findings as per-file,
//! per-rule counts; diff a fresh run against the checked-in baseline
//! so CI fails only on *new* findings while the pre-existing set burns
//! down.
//!
//! The baseline keys on `(file, rule) -> count` rather than exact
//! lines: unrelated edits shift line numbers constantly, and a
//! line-keyed baseline would churn on every refactor. A count
//! regression in a file is exactly the signal we want ("this change
//! introduced another unwrap in the serve cone"), and a count
//! *decrease* is burn-down, never a failure.
//!
//! The format is hand-rolled JSON (offline container — no serde),
//! written sorted so the file is byte-deterministic:
//!
//! ```text
//! {
//!   "version": 1,
//!   "entries": [
//!     { "file": "crates/x/src/a.rs", "rule": "panic-free-serve", "count": 2 }
//!   ]
//! }
//! ```

use std::collections::BTreeMap;

use crate::engine::Report;

/// Per-file, per-rule finding counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregate a report into baseline counts.
pub fn counts_of(report: &Report) -> Counts {
    let mut c: Counts = BTreeMap::new();
    for (file, f) in &report.findings {
        *c.entry((file.clone(), f.rule.to_string())).or_insert(0) += 1;
    }
    c
}

/// Render counts as the baseline JSON document (sorted, trailing
/// newline, byte-deterministic).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    let n = counts.len();
    for (i, ((file, rule), count)) in counts.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{file}\", \"rule\": \"{rule}\", \"count\": {count} }}{}\n",
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a baseline document back into counts. Tolerant scanner over
/// the fixed shape above; malformed entries are skipped rather than
/// fatal (a truncated baseline then reads as "everything is new",
/// which fails loudly in diff mode).
pub fn parse(doc: &str) -> Counts {
    let mut c: Counts = BTreeMap::new();
    let mut rest = doc;
    while let Some(at) = rest.find("\"file\"") {
        rest = &rest[at + "\"file\"".len()..];
        let Some(file) = next_string(rest) else { break };
        let Some(rat) = rest.find("\"rule\"") else { break };
        let Some(rule) = next_string(&rest[rat + "\"rule\"".len()..]) else { break };
        let Some(cat) = rest.find("\"count\"") else { break };
        let Some(count) = next_number(&rest[cat + "\"count\"".len()..]) else { break };
        c.insert((file, rule), count);
    }
    c
}

/// The first `"…"` string after a `:` in `s` (no escape handling —
/// paths and rule names never contain quotes).
fn next_string(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// The first integer after a `:` in `s`.
fn next_number(s: &str) -> Option<usize> {
    let start = s.find(|c: char| c.is_ascii_digit())?;
    let digits: String = s[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// One regression line of a baseline diff.
#[derive(Debug, PartialEq, Eq)]
pub struct Regression {
    /// Relative file path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Count recorded in the baseline.
    pub baseline: usize,
    /// Count in the current run.
    pub now: usize,
}

/// Compare current counts to a baseline. Returns every `(file, rule)`
/// whose count *grew* (new findings); shrinkage and disappearance are
/// burn-down, never reported.
pub fn diff(current: &Counts, baseline: &Counts) -> Vec<Regression> {
    let mut out = Vec::new();
    for ((file, rule), &now) in current {
        let base = baseline.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if now > base {
            out.push(Regression { file: file.clone(), rule: rule.clone(), baseline: base, now });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries.iter().map(|(f, r, n)| ((f.to_string(), r.to_string()), *n)).collect()
    }

    #[test]
    fn render_parse_round_trip() {
        let c = counts(&[("a.rs", "octave-taint", 2), ("b/c.rs", "pragma", 1)]);
        assert_eq!(parse(&render(&c)), c);
        assert_eq!(parse(&render(&Counts::new())), Counts::new());
    }

    #[test]
    fn diff_flags_only_growth() {
        let base = counts(&[("a.rs", "r", 2), ("gone.rs", "r", 5)]);
        let cur = counts(&[("a.rs", "r", 3), ("new.rs", "r", 1)]);
        let d = diff(&cur, &base);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.file == "a.rs" && x.baseline == 2 && x.now == 3));
        assert!(d.iter().any(|x| x.file == "new.rs" && x.baseline == 0 && x.now == 1));
        // Burn-down (gone.rs) is not a regression.
        assert!(diff(&base, &base).is_empty());
    }
}
