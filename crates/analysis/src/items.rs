//! Structured item model over the token stream: every `fn` definition
//! with its module path, impl/trait-block owner, body extent, and
//! enclosing block — the input layer for the call graph and for
//! block-aware `lint:allow-fn` pragma scoping.
//!
//! The parser is a single forward pass that tracks the brace-block
//! stack. It understands exactly as much Rust as the rules need:
//!
//! - `mod name { … }` pushes a module segment (`mod tests` marks test
//!   scope);
//! - `impl [<…>] Type [for Type2] { … }` and `trait Name { … }` push
//!   an owner — for `impl Trait for Type` the owner is **`Type`**
//!   (the implementing type), matching how call sites qualify methods;
//! - `fn name … { … }` records a [`FnItem`]; a signature terminated by
//!   `;` (trait method declaration, extern decl) records a **bodyless**
//!   item whose span is empty — bodyless declarations must never
//!   receive pragma grants or body scans (a pre-v2 bug let such a span
//!   run to end-of-file, leaking fn-scoped pragmas across blocks).
//!
//! Everything else (`match`/closure/loop braces) is an anonymous
//! block. `impl` inside a signature (`fn f() -> impl Iterator`,
//! `arg: impl Fn()`) is ignored: an owner block is only armed when no
//! `fn` signature is pending.

use crate::lexer::{Tok, TokKind};

/// One `{ … }` region. Block 0 is the synthetic file root covering
/// every line.
#[derive(Clone, Debug)]
pub struct Block {
    /// Line of the opening `{` (0 for the file root).
    pub start_line: u32,
    /// Line of the closing `}` (u32::MAX until closed / for the root).
    pub end_line: u32,
    /// Index of the enclosing block (root is its own parent).
    pub parent: usize,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Implementing type (for `impl`/`trait` methods), else `None`.
    pub owner: Option<String>,
    /// Inline `mod` path from the crate file root, outermost first.
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub kw_line: u32,
    /// Last body line (the closing `}`); `kw_line` if bodyless.
    pub end_line: u32,
    /// Token range `[start, end]` of the body braces, if any.
    pub body: Option<(usize, usize)>,
    /// Inside a `mod tests { … }` block.
    pub in_tests: bool,
    /// Index into [`Items::blocks`] of the block *containing* the
    /// `fn` keyword (not the body block).
    pub block: usize,
}

impl FnItem {
    /// `Owner::name` or plain `name`, for diagnostics.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed items of one file.
#[derive(Clone, Debug, Default)]
pub struct Items {
    /// Every `fn` item in declaration order.
    pub fns: Vec<FnItem>,
    /// Every brace block; index 0 is the synthetic file root.
    pub blocks: Vec<Block>,
}

impl Items {
    /// Innermost block whose line range contains `line`. Same-line
    /// braces tie-break toward the latest-opened block.
    pub fn block_at_line(&self, line: u32) -> usize {
        let mut best = 0usize;
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            if b.start_line <= line
                && line <= b.end_line
                && b.start_line >= self.blocks[best].start_line
            {
                best = i;
            }
        }
        best
    }
}

/// What kind of scope a just-seen keyword will attach to the next `{`.
#[derive(Clone, Debug)]
enum Pending {
    Fn { item: usize },
    Mod { name: String },
    Owner { name: String },
}

/// Parse the token stream into [`Items`].
pub fn parse_items(toks: &[Tok]) -> Items {
    let mut items = Items {
        fns: Vec::new(),
        blocks: vec![Block { start_line: 0, end_line: u32::MAX, parent: 0 }],
    };
    // Per open block: (block index, scope it introduced).
    enum Opened {
        Plain,
        Mod,
        Owner,
        Fn(usize),
    }
    let mut stack: Vec<(usize, Opened)> = Vec::new();
    let mut mods: Vec<String> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Keyword waiting for its name ident: "fn" | "mod" | "trait".
    let mut awaiting: Option<&'static str> = None;
    // An `impl` header in progress: collecting the type path.
    let mut impl_hdr: Option<ImplHeader> = None;
    let mut pdepth = 0i32;

    let cur_block = |stack: &Vec<(usize, Opened)>| stack.last().map(|&(b, _)| b).unwrap_or(0);

    for (i, t) in toks.iter().enumerate() {
        // An impl header consumes tokens until its `{` (or a stray
        // `;` — `impl Foo;` is not real Rust, treated as abandoned).
        if let Some(h) = impl_hdr.as_mut() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => {
                    let name = h.owner_name();
                    impl_hdr = None;
                    pending = Some(Pending::Owner { name });
                    // fall through to the `{` handling below
                }
                (TokKind::Punct, ";") => {
                    impl_hdr = None;
                    continue;
                }
                (TokKind::Punct, "<") => {
                    h.angle += 1;
                    continue;
                }
                (TokKind::Punct, ">") => {
                    h.angle = (h.angle - 1).max(0);
                    continue;
                }
                (TokKind::Ident, "for") if h.angle == 0 => {
                    h.after_for = true;
                    h.last = None;
                    continue;
                }
                (TokKind::Ident, "where") if h.angle == 0 => {
                    h.in_where = true;
                    continue;
                }
                (TokKind::Ident, name) if h.angle == 0 && !h.in_where => {
                    h.last = Some(name.to_string());
                    continue;
                }
                _ => continue,
            }
        }

        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, name) if awaiting.is_some() => match awaiting.take() {
                Some("fn") => {
                    let in_tests = mods.iter().any(|m| m == "tests");
                    items.fns.push(FnItem {
                        name: name.to_string(),
                        owner: owners.last().cloned(),
                        module: mods.clone(),
                        kw_line: t.line,
                        end_line: t.line,
                        body: None,
                        in_tests,
                        block: cur_block(&stack),
                    });
                    pending = Some(Pending::Fn { item: items.fns.len() - 1 });
                }
                Some("mod") => pending = Some(Pending::Mod { name: name.to_string() }),
                Some("trait") => pending = Some(Pending::Owner { name: name.to_string() }),
                _ => {}
            },
            (TokKind::Ident, "fn") => awaiting = Some("fn"),
            (TokKind::Ident, "mod") => awaiting = Some("mod"),
            (TokKind::Ident, "trait") => awaiting = Some("trait"),
            // `impl` only opens an owner block at item position: not
            // while a fn signature is pending (`-> impl Trait`,
            // `arg: impl Fn()`), not inside parens/brackets.
            (TokKind::Ident, "impl")
                if pdepth == 0 && !matches!(pending, Some(Pending::Fn { .. })) =>
            {
                impl_hdr = Some(ImplHeader::default());
            }
            (TokKind::Punct, "{") => {
                // A punct between keyword and name means this was no
                // item (`fn(u32)` pointer type): cancel the wait.
                awaiting = None;
                let parent = cur_block(&stack);
                items.blocks.push(Block { start_line: t.line, end_line: u32::MAX, parent });
                let b = items.blocks.len() - 1;
                let opened = match pending.take() {
                    Some(Pending::Fn { item }) => {
                        items.fns[item].body = Some((i, usize::MAX));
                        Opened::Fn(item)
                    }
                    Some(Pending::Mod { name }) => {
                        mods.push(name);
                        Opened::Mod
                    }
                    Some(Pending::Owner { name }) => {
                        owners.push(name);
                        Opened::Owner
                    }
                    None => Opened::Plain,
                };
                stack.push((b, opened));
            }
            (TokKind::Punct, "}") => {
                if let Some((b, opened)) = stack.pop() {
                    items.blocks[b].end_line = t.line;
                    match opened {
                        Opened::Mod => {
                            mods.pop();
                        }
                        Opened::Owner => {
                            owners.pop();
                        }
                        Opened::Fn(item) => {
                            items.fns[item].end_line = t.line;
                            if let Some((s, _)) = items.fns[item].body {
                                items.fns[item].body = Some((s, i));
                            }
                        }
                        Opened::Plain => {}
                    }
                }
            }
            (TokKind::Punct, "(" | "[") => {
                awaiting = None;
                pdepth += 1;
            }
            (TokKind::Punct, ")" | "]") => {
                awaiting = None;
                pdepth -= 1;
            }
            // A `;` at item depth terminates a bodyless declaration:
            // the pending fn stays recorded (it exists, for call-graph
            // completeness) but keeps `body: None` and an empty span.
            (TokKind::Punct, ";") if pdepth == 0 => {
                awaiting = None;
                pending = None;
            }
            _ => awaiting = None,
        }
    }

    // Unterminated bodies (EOF mid-fn) run to the last token.
    let last_line = toks.last().map(|t| t.line).unwrap_or(0);
    let last_tok = toks.len().saturating_sub(1);
    for f in &mut items.fns {
        if let Some((s, e)) = f.body {
            if e == usize::MAX {
                f.body = Some((s, last_tok));
                f.end_line = last_line;
            }
        }
    }
    for b in &mut items.blocks[1..] {
        if b.end_line == u32::MAX {
            b.end_line = last_line;
        }
    }
    items
}

/// Scratch state while scanning an `impl … {` header.
#[derive(Default)]
struct ImplHeader {
    /// Angle-bracket depth (generics are skipped wholesale).
    angle: i32,
    /// Seen `for`: subsequent idents name the implementing type.
    after_for: bool,
    /// Past the `where` clause: stop collecting.
    in_where: bool,
    /// Last ident seen at angle depth 0 in the current section.
    last: Option<String>,
}

impl ImplHeader {
    /// The implementing type's name: the last path segment before the
    /// body brace — after `for` if present (`impl Trait for Type`),
    /// else the type itself (`impl Type`).
    fn owner_name(&self) -> String {
        self.last.clone().unwrap_or_else(|| "?".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src).toks).fns
    }

    #[test]
    fn free_fn_and_method_owners() {
        let f = fns("fn a() {} struct S; impl S { fn b(&self) {} } impl Clone for S { fn clone(&self) -> S { S } }");
        assert_eq!(f.len(), 3);
        assert_eq!((f[0].name.as_str(), f[0].owner.as_deref()), ("a", None));
        assert_eq!((f[1].name.as_str(), f[1].owner.as_deref()), ("b", Some("S")));
        assert_eq!((f[2].name.as_str(), f[2].owner.as_deref()), ("clone", Some("S")));
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let f = fns("impl<T: Ord> Wrap<T> where T: Clone { fn get(&self) {} }");
        assert_eq!(f[0].owner.as_deref(), Some("Wrap"));
    }

    #[test]
    fn impl_in_signature_is_not_an_owner() {
        let f = fns("fn mk() -> impl Iterator<Item = u32> { (0..3) } fn take(x: impl Fn()) {}");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.owner.is_none()));
    }

    #[test]
    fn bodyless_trait_decl_has_empty_span() {
        let src =
            "trait T {\n    fn sig(&self);\n    fn with_default(&self) { () }\n}\nfn tail() {}\n";
        let f = fns(src);
        assert_eq!(f[0].name, "sig");
        assert!(f[0].body.is_none());
        assert_eq!(f[0].end_line, f[0].kw_line, "bodyless span must not leak to EOF");
        assert_eq!(f[1].name, "with_default");
        assert_eq!(f[1].owner.as_deref(), Some("T"));
        assert!(f[1].body.is_some());
        assert_eq!(f[2].name, "tail");
        assert_eq!(f[2].owner, None);
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let f = fns("type F = fn(u32) -> bool; struct H { cb: fn(u8) } fn real() {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "real");
    }

    #[test]
    fn module_paths_and_tests_mod() {
        let f = fns("mod a { mod tests { fn t() {} } fn u() {} }");
        assert_eq!(f[0].module, vec!["a", "tests"]);
        assert!(f[0].in_tests);
        assert_eq!(f[1].module, vec!["a"]);
        assert!(!f[1].in_tests);
    }

    #[test]
    fn blocks_nest_and_resolve_by_line() {
        let src = "impl S {\n    fn a(&self) {\n        ()\n    }\n\n    fn b(&self) { () }\n}\nfn c() {}\n";
        let it = parse_items(&lex(src).toks);
        // Line 5 (between a and b) sits in the impl block, which also
        // contains both methods' kw lines.
        let impl_block = it.block_at_line(5);
        assert_ne!(impl_block, 0);
        let a = &it.fns[0];
        let b = &it.fns[1];
        let c = &it.fns[2];
        assert_eq!(a.block, impl_block);
        assert_eq!(b.block, impl_block);
        assert_eq!(c.block, 0);
    }
}
