//! Minimal SARIF 2.1.0 emitter so findings render as code-scanning
//! annotations. Hand-rolled JSON (offline container — no serde);
//! only the fields the GitHub SARIF ingester requires.

use crate::engine::Report;
use crate::rules::{PRAGMA_RULE, RULES};

/// JSON-escape a string value.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let rules_json = RULES
        .iter()
        .chain(std::iter::once(&PRAGMA_RULE))
        .map(|r| format!("{{\"id\":\"{r}\"}}"))
        .collect::<Vec<_>>()
        .join(",");
    let results = report
        .findings
        .iter()
        .map(|(file, f)| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                f.rule,
                esc(&f.msg),
                esc(file),
                f.line.max(1)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"agm-lint\",\
         \"informationUri\":\"https://example.invalid/agm-lint\",\
         \"rules\":[{rules_json}]}}}},\"results\":[{results}]}}]}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn sarif_document_shape() {
        let report = Report {
            files: 1,
            fns: 1,
            edges: 0,
            ambiguous: 0,
            findings: vec![(
                "crates/x/src/a.rs".to_string(),
                Finding { rule: "octave-taint", line: 7, msg: "raw \"+\" on radius".into() },
            )],
        };
        let doc = render(&report);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"ruleId\":\"octave-taint\""));
        assert!(doc.contains("\"startLine\":7"));
        assert!(doc.contains("\"uri\":\"crates/x/src/a.rs\""));
        assert!(doc.contains("raw \\\"+\\\" on radius"));
        // Every rule id is declared in the driver.
        for r in RULES {
            assert!(doc.contains(&format!("{{\"id\":\"{r}\"}}")));
        }
    }
}
