//! Workspace call graph: call-site extraction from fn bodies, name
//! resolution by unique-name matching, and reachability.
//!
//! ## Resolution model (and its honest limits)
//!
//! The linter has no type information, so edges come from names:
//!
//! - `name(..)` — a free-fn call. Resolves when exactly one workspace
//!   fn bears that name; a qualifier (`path::name(..)`, `Type::name`,
//!   `Self::name`) filters candidates by owner or module first.
//! - `.name(..)` — a method call. Resolves when exactly one workspace
//!   *method* (fn with an owner) bears that name, **unless** the name
//!   is on the [`COMMON_METHODS`] denylist (`get`, `len`, `clone`, …):
//!   those shadow std methods on every receiver, so a unique-name
//!   match would be silent misattribution. Denylisted calls resolve
//!   only with an explicit `Type::name` qualifier.
//! - More than one surviving candidate → the call lands in the
//!   [`CallGraph::ambiguous`] bucket and contributes **no edge**.
//!   Trait-object dispatch (`dyn Router`) is the canonical case: the
//!   receiver's concrete type is unknowable here, so each `route` impl
//!   must be rooted explicitly rather than discovered through the dyn
//!   call. This is a documented blind spot, not a silent one — the
//!   bucket is reported and testable.
//! - Macro invocations (`name!(..)`) and keyword heads (`if`, `match`,
//!   …) are never calls.
//!
//! Reachability is a plain BFS that records each node's discovery
//! predecessor, so findings can cite a concrete call chain.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::items::{parse_items, FnItem, Items};
use crate::lexer::{Lexed, Tok, TokKind};

/// Method names too generic to resolve by uniqueness: they collide
/// with `std` methods on ubiquitous receivers (Vec, HashMap, Option,
/// iterators), so a dot-call through one of these only resolves via an
/// explicit `Type::name` qualifier.
pub const COMMON_METHODS: [&str; 50] = [
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "take",
    "new",
    "default",
    "clear",
    "contains",
    "extend",
    "sort",
    "write",
    "read",
    "flush",
    "drain",
    "join",
    "send",
    "recv",
    "lock",
    "min",
    "max",
    "chain",
    "map",
    "filter",
    "fold",
    "collect",
    "zip",
    "rev",
    "skip",
    "last",
    "first",
    "find",
    "position",
    "count",
    "sum",
    "any",
    "all",
    "retain",
    "entry",
    "copied",
    "cloned",
];

/// Keywords and control heads that look like `ident (` but are not
/// calls.
const NOT_CALLS: [&str; 12] =
    ["if", "while", "for", "match", "return", "loop", "fn", "impl", "where", "in", "as", "move"];

/// One fn node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Relative path of the defining file.
    pub file: String,
    /// The parsed item.
    pub item: FnItem,
}

/// An unresolved multi-candidate call site.
#[derive(Clone, Debug)]
pub struct AmbiguousCall {
    /// Calling fn (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Source line of the call.
    pub line: u32,
    /// Indices of every candidate fn.
    pub candidates: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every fn in every file, in (file, declaration) order.
    pub fns: Vec<FnNode>,
    /// `edges[caller]` = called fn indices (deduped, sorted).
    pub edges: Vec<Vec<usize>>,
    /// Calls with more than one surviving candidate (no edge emitted).
    pub ambiguous: Vec<AmbiguousCall>,
    /// Parsed items per file (for pragma scoping and per-file rules).
    pub items_by_file: BTreeMap<String, Items>,
}

impl CallGraph {
    /// Build the graph from `(relative path, lexed source)` pairs.
    pub fn build(files: &[(String, &Lexed)]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        let mut items_by_file: BTreeMap<String, Items> = BTreeMap::new();
        for (rel, lx) in files {
            let items = parse_items(&lx.toks);
            for item in &items.fns {
                fns.push(FnNode { file: rel.clone(), item: item.clone() });
            }
            items_by_file.insert(rel.clone(), items);
        }

        // Name indexes. `by_name` holds every fn; `methods` only fns
        // with an owner (dot-call candidates).
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, n) in fns.iter().enumerate() {
            by_name.entry(n.item.name.clone()).or_default().push(i);
            if n.item.owner.is_some() {
                methods.entry(n.item.name.clone()).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut ambiguous: Vec<AmbiguousCall> = Vec::new();
        let mut fn_ix = 0usize;
        for (rel, lx) in files {
            let n_local = items_by_file[rel.as_str()].fns.len();
            for local in 0..n_local {
                let caller = fn_ix + local;
                if let Some((body_start, body_end)) = fns[caller].item.body {
                    let body = &lx.toks[body_start..=body_end.min(lx.toks.len() - 1)];
                    extract_calls(Scan {
                        edges: &mut edges,
                        ambiguous: &mut ambiguous,
                        caller,
                        fns: &fns,
                        body,
                        by_name: &by_name,
                        methods: &methods,
                    });
                }
            }
            fn_ix += n_local;
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        CallGraph { fns, edges, ambiguous, items_by_file }
    }

    /// Indices of fns matching a predicate.
    pub fn find<'a>(&'a self, pred: impl Fn(&FnNode) -> bool + 'a) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| pred(&self.fns[i])).collect()
    }

    /// BFS from `roots`; returns, for each reachable fn, its discovery
    /// predecessor (roots map to themselves).
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut pred: HashMap<usize, usize> = HashMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if r < self.fns.len() && !pred.contains_key(&r) {
                pred.insert(r, r);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &self.edges[u] {
                if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(v) {
                    e.insert(u);
                    q.push_back(v);
                }
            }
        }
        pred
    }

    /// [`CallGraph::reachable`] with a node filter: fns matching
    /// `skip` are neither included nor traversed. Rules use this for
    /// cold boundaries — e.g. the allocation rule stops at decode
    /// constructors, which allocate whole stores by design.
    pub fn reachable_except(
        &self,
        roots: &[usize],
        skip: impl Fn(&FnNode) -> bool,
    ) -> HashMap<usize, usize> {
        let mut pred: HashMap<usize, usize> = HashMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if r < self.fns.len() && !pred.contains_key(&r) && !skip(&self.fns[r]) {
                pred.insert(r, r);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &self.edges[u] {
                if !pred.contains_key(&v) && !skip(&self.fns[v]) {
                    pred.insert(v, u);
                    q.push_back(v);
                }
            }
        }
        pred
    }

    /// Human-readable call chain `root -> … -> fn` from a BFS
    /// predecessor map.
    pub fn chain(&self, pred: &HashMap<usize, usize>, mut at: usize) -> String {
        let mut names = vec![self.fns[at].item.qual_name()];
        let mut guard = 0usize;
        while let Some(&p) = pred.get(&at) {
            if p == at || guard > self.fns.len() {
                break;
            }
            names.push(self.fns[p].item.qual_name());
            at = p;
            guard += 1;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Borrowed state for one body scan.
struct Scan<'a> {
    edges: &'a mut Vec<Vec<usize>>,
    ambiguous: &'a mut Vec<AmbiguousCall>,
    caller: usize,
    fns: &'a [FnNode],
    body: &'a [Tok],
    by_name: &'a HashMap<String, Vec<usize>>,
    methods: &'a HashMap<String, Vec<usize>>,
}

/// Scan one fn body for call sites and append resolved edges /
/// ambiguous records.
fn extract_calls(s: Scan<'_>) {
    let body = s.body;
    let caller_owner = s.fns[s.caller].item.owner.clone();
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind != TokKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        // A call is `name (` with the paren immediately after; macros
        // are `name ! (` and so never match this shape.
        if body.get(i + 1).map(|n| (n.kind, n.text.as_str())) != Some((TokKind::Punct, "(")) {
            continue;
        }
        let is_method = i >= 1 && body[i - 1].kind == TokKind::Punct && body[i - 1].text == ".";
        // Qualifier: `seg :: name (` — `::` is two `:` tokens.
        let qualifier = if i >= 3
            && body[i - 1].text == ":"
            && body[i - 2].text == ":"
            && body[i - 3].kind == TokKind::Ident
        {
            Some(body[i - 3].text.as_str())
        } else {
            None
        };
        let name = t.text.as_str();

        let mut cands: Vec<usize> = if is_method {
            if COMMON_METHODS.contains(&name) {
                continue; // std-shadowing name: external unless qualified
            }
            s.methods.get(name).cloned().unwrap_or_default()
        } else {
            s.by_name.get(name).cloned().unwrap_or_default()
        };
        if let Some(q) = qualifier {
            let q = if q == "Self" { caller_owner.as_deref().unwrap_or("Self") } else { q };
            // An owner or trailing-module match narrows the candidate
            // set; a qualifier matching nothing (std type, foreign
            // crate) empties it — the call is external.
            cands.retain(|&c| {
                let it = &s.fns[c].item;
                it.owner.as_deref() == Some(q) || it.module.last().map(String::as_str) == Some(q)
            });
        }
        match cands.len() {
            0 => {}
            1 => s.edges[s.caller].push(cands[0]),
            _ => {
                cands.sort_unstable();
                s.ambiguous.push(AmbiguousCall {
                    caller: s.caller,
                    name: name.to_string(),
                    line: t.line,
                    candidates: cands,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(p, l)| (p.clone(), l)).collect();
        CallGraph::build(&refs)
    }

    fn id(g: &CallGraph, name: &str) -> usize {
        g.find(|n| n.item.name == name)[0]
    }

    #[test]
    fn free_fn_edges_resolve_by_unique_name() {
        let g = graph(&[("a.rs", "fn top() { helper(); } fn helper() { leaf(); } fn leaf() {}")]);
        let r = g.reachable(&[id(&g, "top")]);
        assert!(r.contains_key(&id(&g, "leaf")));
        assert_eq!(g.chain(&r, id(&g, "leaf")), "top -> helper -> leaf");
    }

    #[test]
    fn cross_file_edges() {
        let g = graph(&[
            ("a.rs", "fn top() { helper(); }"),
            ("b.rs", "pub fn helper() { leaf(); } fn leaf() {}"),
        ]);
        let r = g.reachable(&[id(&g, "top")]);
        assert!(r.contains_key(&id(&g, "leaf")));
    }

    #[test]
    fn method_collision_lands_in_ambiguous_bucket() {
        let g = graph(&[(
            "a.rs",
            "struct A; struct B; impl A { fn step(&self) {} } impl B { fn step(&self) {} } \
             fn go(x: &A) { x.step(); }",
        )]);
        let go = id(&g, "go");
        assert!(g.edges[go].is_empty(), "colliding method must not produce an edge");
        assert_eq!(g.ambiguous.len(), 1);
        assert_eq!(g.ambiguous[0].name, "step");
        assert_eq!(g.ambiguous[0].candidates.len(), 2);
    }

    #[test]
    fn qualified_call_disambiguates() {
        let g = graph(&[(
            "a.rs",
            "struct A; struct B; impl A { fn step(&self) {} } impl B { fn step(&self) {} } \
             fn go() { A::step(&a); }",
        )]);
        let go = id(&g, "go");
        let a_step = g.find(|n| n.item.name == "step" && n.item.owner.as_deref() == Some("A"))[0];
        assert_eq!(g.edges[go], vec![a_step]);
        assert!(g.ambiguous.is_empty());
    }

    #[test]
    fn self_qualifier_uses_enclosing_impl() {
        let g = graph(&[(
            "a.rs",
            "struct A; struct B; impl A { fn go(&self) { Self::step(self); } fn step(&self) {} } \
             impl B { fn step(&self) {} }",
        )]);
        let go = id(&g, "go");
        let a_step = g.find(|n| n.item.name == "step" && n.item.owner.as_deref() == Some("A"))[0];
        assert_eq!(g.edges[go], vec![a_step]);
    }

    #[test]
    fn common_method_names_stay_external() {
        let g = graph(&[(
            "a.rs",
            "struct Store; impl Store { fn get(&self) {} } fn go(m: &Store) { m.get(); }",
        )]);
        // `.get(` must NOT resolve to Store::get — it shadows
        // HashMap::get and friends on every receiver in the workspace.
        assert!(g.edges[id(&g, "go")].is_empty());
        assert!(g.ambiguous.is_empty());
        // The qualified spelling does resolve.
        let g2 = graph(&[(
            "a.rs",
            "struct Store; impl Store { fn get(&self) {} } fn go(m: &Store) { Store::get(m); }",
        )]);
        assert_eq!(g2.edges[id(&g2, "go")].len(), 1);
    }

    #[test]
    fn recursion_terminates() {
        let g = graph(&[("a.rs", "fn f(n: u32) { if n > 0 { f(n - 1); } }")]);
        let r = g.reachable(&[id(&g, "f")]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let g = graph(&[(
            "a.rs",
            "fn f() { println!(\"x\"); if (a) { } match (b) { _ => {} } } fn println() {}",
        )]);
        assert!(g.edges[id(&g, "f")].is_empty());
    }
}
