//! Integration tests for the call-graph layer: multi-file fixture
//! crates driven through the full `lint_files` pipeline (lex → item
//! parse → call resolution → cones → rules), plus a property test
//! that reachability is monotone under edge addition.
//!
//! The headline acceptance case lives here: an `unwrap()` injected
//! *three calls below* `serve_batch` — across files — is caught, and
//! the finding cites the full call chain.

use analysis::callgraph::CallGraph;
use analysis::lexer::{lex, Lexed};
use analysis::rules::Finding;
use analysis::{lint_files, Report};

fn report(files: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    lint_files(&owned)
}

fn findings(files: &[(&str, &str)]) -> Vec<(String, Finding)> {
    report(files).findings
}

fn graph(files: &[(&str, &str)]) -> CallGraph {
    let lexed: Vec<(String, Lexed)> = files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
    let refs: Vec<(String, &Lexed)> = lexed.iter().map(|(p, l)| (p.clone(), l)).collect();
    CallGraph::build(&refs)
}

// ---- cross-file serve cone ---------------------------------------------

/// The acceptance fixture: `serve_batch -> dispatch -> lookup ->
/// fetch`, with the `unwrap()` in `fetch`, three call edges below the
/// root and two files away. The finding must name the deep fn's line
/// and cite a chain anchored at `serve_batch`.
#[test]
fn unwrap_three_calls_below_serve_batch_is_caught() {
    let f = findings(&[
        ("src/serve.rs", "pub fn serve_batch(q: &[u32]) { for &u in q { dispatch(u); } }"),
        (
            "src/dispatch.rs",
            "pub fn dispatch(u: u32) { lookup(u); }\n\
             fn lookup(u: u32) { fetch(u); }\n\
             fn fetch(u: u32) -> u32 { table(u).unwrap() }\n\
             fn table(u: u32) -> Option<u32> { Some(u) }",
        ),
    ]);
    assert_eq!(f.len(), 1, "{f:?}");
    let (file, finding) = &f[0];
    assert_eq!(file, "src/dispatch.rs");
    assert_eq!(finding.rule, "panic-free-serve");
    assert_eq!(finding.line, 3);
    assert!(
        finding.msg.contains("serve_batch -> dispatch -> lookup -> fetch"),
        "finding must cite the call chain: {}",
        finding.msg
    );
}

/// The identical code with the root renamed is outside every cone:
/// reachability, not file location, decides coverage.
#[test]
fn same_code_without_a_root_is_silent() {
    let f = findings(&[
        ("src/serve.rs", "pub fn batch_helper(q: &[u32]) { for &u in q { dispatch(u); } }"),
        (
            "src/dispatch.rs",
            "pub fn dispatch(u: u32) { lookup(u); }\n\
             fn lookup(u: u32) { fetch(u); }\n\
             fn fetch(u: u32) -> u32 { table(u).unwrap() }\n\
             fn table(u: u32) -> Option<u32> { Some(u) }",
        ),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

/// Raw indexing is flagged with the same cross-file reach as panics.
#[test]
fn indexing_deep_in_the_serve_cone_is_caught() {
    let f = findings(&[
        ("src/serve.rs", "pub fn serve_batch(q: &[u32]) { step(q); }"),
        ("src/deep.rs", "pub fn step(q: &[u32]) -> u32 { q[0] }"),
    ]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].1.rule, "panic-free-serve");
    assert!(f[0].1.msg.contains("indexing"), "{}", f[0].1.msg);
}

// ---- collisions and trait objects --------------------------------------

/// A method-name collision must land in the ambiguous bucket and emit
/// NO edge: flagging `A::pick` because `B::pick` happens to share the
/// name would be misattribution, so both bodies stay uncovered (and
/// the bucket makes that auditable).
#[test]
fn method_collision_is_ambiguous_not_a_wrong_edge() {
    let files = [(
        "src/a.rs",
        "struct A; struct B;\n\
         impl A { fn pick(&self) -> u32 { self.v.unwrap() } }\n\
         impl B { fn pick(&self) -> u32 { 0 } }\n\
         pub fn serve_batch(a: &A) { a.pick(); }",
    )];
    let f = findings(&files);
    assert!(f.is_empty(), "colliding method must not be pulled into the cone: {f:?}");
    let g = graph(&files);
    assert_eq!(g.ambiguous.len(), 1);
    assert_eq!(g.ambiguous[0].name, "pick");
    assert_eq!(g.ambiguous[0].candidates.len(), 2);
    let caller = &g.fns[g.ambiguous[0].caller];
    assert_eq!(caller.item.name, "serve_batch");
}

/// The same call with a `Type::` qualifier resolves, and the unwrap
/// in the chosen impl is then covered.
#[test]
fn qualified_collision_resolves_and_is_covered() {
    let f = findings(&[(
        "src/a.rs",
        "struct A; struct B;\n\
         impl A { fn pick(&self) -> u32 { self.v.unwrap() } }\n\
         impl B { fn pick(&self) -> u32 { 0 } }\n\
         pub fn serve_batch(a: &A) { A::pick(a); }",
    )]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].1.rule, "panic-free-serve");
    assert_eq!(f[0].1.line, 2);
}

/// Trait-object dispatch is the documented blind spot: the receiver's
/// concrete type is unknowable without type inference, so the call is
/// recorded as ambiguous (every impl a candidate) rather than edged
/// to an arbitrary impl.
#[test]
fn trait_object_call_lands_in_ambiguous_bucket() {
    let files = [(
        "src/a.rs",
        "trait Router { fn decide(&self) -> u32; }\n\
         struct Fast; struct Slow;\n\
         impl Router for Fast { fn decide(&self) -> u32 { self.t.unwrap() } }\n\
         impl Router for Slow { fn decide(&self) -> u32 { 1 } }\n\
         pub fn serve_batch(r: &dyn Router) { r.decide(); }",
    )];
    let f = findings(&files);
    assert!(f.is_empty(), "dyn dispatch must not guess an impl: {f:?}");
    let g = graph(&files);
    let amb: Vec<_> = g.ambiguous.iter().filter(|a| a.name == "decide").collect();
    assert_eq!(amb.len(), 1);
    // Both inherent impls and the trait declaration's signature-only
    // fn (no body) are candidates; at least the two impls must be.
    assert!(amb[0].candidates.len() >= 2);
}

// ---- recursion ---------------------------------------------------------

/// Recursive fns terminate the BFS and are covered exactly once.
#[test]
fn recursive_fn_in_cone_fires_once() {
    let f = findings(&[(
        "src/a.rs",
        "pub fn serve_batch(n: u32) { step(n); }\n\
         fn step(n: u32) { if n > 0 { step(n - 1); } probe(n).unwrap(); }\n\
         fn probe(n: u32) -> Option<u32> { Some(n) }",
    )]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].1.line, 2);
}

/// Mutual recursion across files also terminates.
#[test]
fn mutual_recursion_across_files_terminates() {
    let files = [
        ("src/a.rs", "pub fn serve_batch(n: u32) { ping(n); }\npub fn ping(n: u32) { if n > 0 { pong(n - 1); } }"),
        ("src/b.rs", "pub fn pong(n: u32) { ping(n); bad(n).unwrap(); }\nfn bad(n: u32) -> Option<u32> { Some(n) }"),
    ];
    let f = findings(&files);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].0, "src/b.rs");
}

// ---- reachability is monotone ------------------------------------------

/// Small deterministic generator (no external proptest dep).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

/// Render a random call graph as source: `n` fns, calling per `adj`.
fn synth(n: usize, adj: &[(usize, usize)]) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("fn f{i}() {{ "));
        for &(c, d) in adj.iter().filter(|&&(c, _)| c == i) {
            assert_eq!(c, i);
            src.push_str(&format!("f{d}(); "));
        }
        src.push_str("}\n");
    }
    src
}

/// Property: adding one call edge never shrinks the reachable set —
/// checked through the whole pipeline (source → lexer → item parser →
/// resolver → BFS), not on a hand-built adjacency list.
#[test]
fn reachability_is_monotone_under_edge_addition() {
    let mut rng = Lcg(0x5eed_cafe);
    for _case in 0..40 {
        let n = 4 + rng.below(10); // 4..14 fns
        let m = rng.below(2 * n as u64 + 1);
        let mut adj: Vec<(usize, usize)> = Vec::new();
        for _ in 0..m {
            adj.push((rng.below(n as u64), rng.below(n as u64)));
        }
        let roots_src = [0usize, rng.below(n as u64)];

        let g0 = graph(&[("src/a.rs", &synth(n, &adj))]);
        let roots: Vec<usize> =
            roots_src.iter().map(|&r| g0.find(|x| x.item.name == format!("f{r}"))[0]).collect();
        let before: std::collections::HashSet<String> =
            g0.reachable(&roots).keys().map(|&k| g0.fns[k].item.name.clone()).collect();

        // Add one random edge and rebuild.
        adj.push((rng.below(n as u64), rng.below(n as u64)));
        let g1 = graph(&[("src/a.rs", &synth(n, &adj))]);
        let roots1: Vec<usize> =
            roots_src.iter().map(|&r| g1.find(|x| x.item.name == format!("f{r}"))[0]).collect();
        let after: std::collections::HashSet<String> =
            g1.reachable(&roots1).keys().map(|&k| g1.fns[k].item.name.clone()).collect();

        assert!(
            before.is_subset(&after),
            "edge addition shrank reachability: {before:?} vs {after:?} (adj {adj:?})"
        );

        // Monotone in roots too: a superset of roots reaches a
        // superset of fns.
        let extra = format!("f{}", rng.below(n as u64));
        let mut more_roots = roots1.clone();
        more_roots.push(g1.find(|x| x.item.name == extra)[0]);
        let wider: std::collections::HashSet<String> =
            g1.reachable(&more_roots).keys().map(|&k| g1.fns[k].item.name.clone()).collect();
        assert!(after.is_subset(&wider));
    }
}

// ---- report summary counters -------------------------------------------

/// The report's graph counters reflect the fixture (the CI summary
/// line and acceptance floor "call graph covers every non-shim fn"
/// depend on these being real).
#[test]
fn report_counts_fns_and_edges() {
    let r = report(&[
        ("src/a.rs", "fn top() { helper(); }"),
        ("src/b.rs", "pub fn helper() { leaf(); } fn leaf() {}"),
    ]);
    assert_eq!(r.fns, 3);
    assert_eq!(r.edges, 2);
    assert_eq!(r.files, 2);
}
