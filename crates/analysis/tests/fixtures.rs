//! Fixture tests for `agm-lint`: every rule must fire on a seeded
//! violation (known-bad) and stay silent on the matching clean code and
//! on false-positive bait inside strings, raw strings, and comments
//! (known-good). The final test runs the linter over this workspace
//! itself, pinning the ship-clean invariant the CI step relies on.

use analysis::lint_source;

/// Rules that fired, by id, for `src` at a non-root, non-test path.
fn fired(src: &str) -> Vec<&'static str> {
    fired_at("crates/fixture/src/a.rs", src)
}

fn fired_at(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(path, src).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ---- no-raw-octave-shift -----------------------------------------------

#[test]
fn octave_shift_known_bad() {
    assert_eq!(fired("fn f(a: u32) -> u64 { 1u64 << a }"), ["no-raw-octave-shift"]);
    // Hex/underscore spellings of 1 count too.
    assert_eq!(fired("fn f(a: u32) -> u64 { 0x1 << a }"), ["no-raw-octave-shift"]);
    assert_eq!(fired("fn f(a: u32) -> u64 { 1_u64 << (a + 1) }"), ["no-raw-octave-shift"]);
    // Test modules are NOT exempt: the PR 3 bug lived in assertions.
    assert_eq!(fired("mod tests { fn t(a: u32) -> u64 { 1u64 << a } }"), ["no-raw-octave-shift"]);
}

#[test]
fn octave_shift_known_good() {
    // Literal exponents are compile-checked.
    assert!(fired("fn f() -> u64 { 1u64 << 20 }").is_empty());
    // Non-1 bases are bit twiddling, not radius construction.
    assert!(fired("fn f(a: u32) -> u64 { 0b11 << a }").is_empty());
    // Bait: the pattern inside strings, raw strings, and comments.
    assert!(fired(r##"fn f() { let s = "1u64 << a"; let r = r#"1u64 << b"#; }"##).is_empty());
    assert!(fired("fn f() {} // 1u64 << a\n/* 1u64 << b */").is_empty());
}

// ---- no-nan-unsafe-cmp -------------------------------------------------

#[test]
fn nan_cmp_known_bad() {
    assert_eq!(
        fired("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
        ["no-nan-unsafe-cmp"]
    );
    assert_eq!(
        fired("fn f(a: f64, b: f64) { a.partial_cmp(&b).expect(\"cmp\"); }"),
        ["no-nan-unsafe-cmp"]
    );
}

#[test]
fn nan_cmp_known_good() {
    assert!(fired("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
    // partial_cmp with a handled None is fine.
    assert!(
        fired("fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap_or(Ordering::Less); }").is_empty()
    );
    assert!(fired("fn f() { let s = \"partial_cmp(b).unwrap()\"; }").is_empty());
}

// ---- panic-free-serve (decode roots) -----------------------------------

#[test]
fn decode_known_bad() {
    // Any fn named from_wire is a decode root, wherever it lives.
    assert_eq!(fired("fn from_wire(b: &[u8]) -> u8 { b[0] }"), ["panic-free-serve"]);
    assert_eq!(fired("fn from_wire(x: Option<u8>) -> u8 { x.unwrap() }"), ["panic-free-serve"]);
    assert_eq!(fired("fn from_wire(b: &[u8]) -> u8 { panic!(\"bad\") }"), ["panic-free-serve"]);
    // A helper is covered exactly when the decode root reaches it.
    assert_eq!(
        fired("fn from_wire(b: &[u8]) -> u8 { helper(b) }\nfn helper(b: &[u8]) -> u8 { b[7] }"),
        ["panic-free-serve"]
    );
}

#[test]
fn decode_known_good() {
    // Checked access patterns.
    assert!(fired("fn from_wire(b: &[u8]) -> Option<u8> { b.first().copied() }").is_empty());
    assert!(fired("fn from_wire(b: &[u8]) -> Option<&[u8]> { b.get(1..3) }").is_empty());
    // Attribute/macro brackets, array literals, and slice patterns are
    // not indexing.
    assert!(
        fired("#[derive(Debug)]\nfn from_wire() { let a = [1, 2]; let v = vec![3]; }").is_empty()
    );
    assert!(fired("fn from_wire(b: &[u8]) { if let [x, y] = b { use2(x, y); } }").is_empty());
    // Same code not reachable from any root: no findings.
    assert!(fired("fn helper(b: &[u8]) -> u8 { b[0] }").is_empty());
    // `mod tests` is exempt even when it defines a decode-named fn.
    assert!(fired("mod tests { fn from_wire(b: &[u8]) -> u8 { b[0].min(b[1]) } }").is_empty());
}

// ---- deterministic-output ----------------------------------------------

#[test]
fn det_ser_known_bad() {
    assert_eq!(
        fired("fn save(&self) { for k in self.map.keys() { w(k); } }"),
        ["deterministic-output"]
    );
    assert_eq!(
        fired("fn to_wire(&self) { let m: HashMap<u32, u32> = mk(); }"),
        ["deterministic-output"]
    );
    assert_eq!(
        fired("fn encode_rows(&self) { for v in self.map.values() { w(v); } }"),
        ["deterministic-output"]
    );
    // The taint follows call edges into helpers of the sink.
    assert_eq!(
        fired("fn save(&self) { emit_rows(); }\nfn emit_rows() { let m: HashSet<u32> = mk(); }"),
        ["deterministic-output"]
    );
}

#[test]
fn det_ser_known_good() {
    // Ordered containers are fine in save paths.
    assert!(fired("fn save(&self) { let m: BTreeMap<u32, u32> = mk(); }").is_empty());
    // Unordered containers outside save cones are fine.
    assert!(fired("fn lookup(&self) { let m: HashMap<u32, u32> = mk(); }").is_empty());
    assert!(fired("fn save(&self) {} // HashMap in a comment").is_empty());
}

// ---- chunk-ordered-merge -----------------------------------------------

#[test]
fn merge_annotation_known_bad() {
    assert_eq!(fired("fn f(d: &[u64]) { d.par_chunks(8); }"), ["chunk-ordered-merge"]);
    // An annotation more than 3 lines above does not count.
    assert_eq!(
        fired("fn f(d: &[u64]) {\n    // merge: too far away\n    let a = 1;\n    let b = 2;\n    let c = 3;\n    d.par_chunks(8);\n}"),
        ["chunk-ordered-merge"]
    );
}

#[test]
fn merge_annotation_known_good() {
    assert!(fired(
        "fn f(d: &[u64]) {\n    // merge: chunk-order concatenation\n    d.par_chunks(8);\n}"
    )
    .is_empty());
    // Same-line trailing annotation.
    assert!(fired("fn f(d: &[u64]) { d.par_chunks(8); } // merge: order-free sum").is_empty());
    // Defining `fn par_chunks(...)` is not a fan-out site.
    assert!(fired("fn par_chunks(n: usize) {}").is_empty());
}

// ---- forbid-unsafe -----------------------------------------------------

#[test]
fn forbid_unsafe_known_bad() {
    assert_eq!(fired("fn f() { unsafe { g() } }"), ["forbid-unsafe"]);
    // A crate root without the attribute is a finding on line 1.
    let f = lint_source("crates/x/src/lib.rs", "fn f() {}\n");
    assert_eq!(f.len(), 1);
    assert_eq!((f[0].rule, f[0].line), ("forbid-unsafe", 1));
}

#[test]
fn forbid_unsafe_known_good() {
    assert!(fired_at("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\nfn f() {}\n").is_empty());
    assert!(fired("fn f() { let s = \"unsafe\"; } // unsafe in comment").is_empty());
    // Non-root modules don't need the attribute.
    assert!(fired("fn f() {}").is_empty());
}

// ---- pragmas -----------------------------------------------------------

#[test]
fn pragma_suppression_and_misuse() {
    // Reasoned pragma suppresses; bare pragma is itself an error.
    assert!(fired("fn f(a: u32) -> u64 { 1u64 << a } // lint:allow(no-raw-octave-shift): a < 8 by caller contract").is_empty());
    let f = lint_source(
        "crates/fixture/src/a.rs",
        "fn f(a: u32) -> u64 { 1u64 << a } // lint:allow(no-raw-octave-shift)\n",
    );
    assert!(f.iter().any(|x| x.rule == "pragma" && x.msg.contains("no reason")));
    // fn-scoped form covers every finding in one body, and only there:
    // the second decode fn (in its own module) still fires.
    let src = "\
// lint:allow-fn(panic-free-serve): fixture — lengths validated up front\n\
fn from_wire(b: &[u8]) -> u8 { b[0] + b[1] }\n\
mod second {\n\
    fn from_wire(b: &[u8]) -> u8 { b[0] }\n\
}\n";
    let f = lint_source("crates/fixture/src/a.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].rule, f[0].line), ("panic-free-serve", 4));
}

/// Boundary lock for the impl-aware `FnSpan` fix: a fn-scoped pragma
/// placed *between two fns inside an `impl` block* must bind to the
/// next fn in that impl — not to the next top-level fn, which is what
/// the pre-fix extraction did (it only tracked file-level spans).
#[test]
fn fn_pragma_between_impl_methods_binds_inside_the_impl() {
    let src = "\
struct S;\n\
impl S {\n\
    fn setup(&self) {}\n\
    // lint:allow-fn(panic-free-serve): fixture — header length validated by setup\n\
    fn from_wire(b: &[u8]) -> u8 { b[0] }\n\
}\n\
fn from_wire(b: &[u8]) -> u8 { b[0] }\n";
    let f = lint_source("crates/fixture/src/a.rs", src);
    // The method's finding is suppressed; the *top-level* fn after the
    // impl (which the buggy span logic used to bind instead) fires.
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].rule, f[0].line), ("panic-free-serve", 7));
}

// ---- the workspace itself ----------------------------------------------

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analysis::lint_workspace(&root).expect("workspace scan");
    assert!(report.files > 50, "walker found only {} files", report.files);
    let diags = report.diagnostics().join("\n");
    assert!(report.findings.is_empty(), "workspace must lint clean:\n{diags}");
}
