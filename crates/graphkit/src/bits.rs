//! Bit-level storage accounting.
//!
//! Theorem 1 is a statement about *bits per node*, so every routing-table
//! component in the workspace implements [`StorageCost`] and reports an
//! information-theoretic bit count (ids at `ceil(log2 n)` bits, distances
//! at `ceil(log2(1 + value))` bits, and so on) rather than Rust struct
//! sizes, which would be dominated by alignment and capacity slack.

/// Anything whose routing-table footprint can be audited in bits.
pub trait StorageCost {
    /// Total bits a faithful encoded representation would occupy.
    fn storage_bits(&self) -> u64;
}

impl<T: StorageCost> StorageCost for Option<T> {
    fn storage_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, StorageCost::storage_bits)
    }
}

impl<T: StorageCost> StorageCost for Vec<T> {
    fn storage_bits(&self) -> u64 {
        // Length prefix + elements.
        64 + self.iter().map(StorageCost::storage_bits).sum::<u64>()
    }
}

/// Bits to store one value from a universe of `universe` possibilities.
#[inline]
pub fn bits_for_universe(universe: u64) -> u64 {
    crate::ids::ceil_log2(universe.max(1)) as u64
}

/// Bits to store a node id in an n-node graph.
#[inline]
pub fn bits_for_node(n: usize) -> u64 {
    bits_for_universe(n as u64).max(1)
}

/// Bits to store a distance value `d` (variable-length, gamma-style:
/// `2*ceil(log2(d+2))` covers length + payload).
#[inline]
pub fn bits_for_distance(d: u64) -> u64 {
    2 * crate::ids::ceil_log2(d.saturating_add(2)) as u64
}

/// Pretty-print a bit count as `B / KiB / MiB` for experiment tables.
pub fn fmt_bits(bits: u64) -> String {
    let bytes = bits as f64 / 8.0;
    if bytes < 1024.0 {
        format!("{bytes:.0} B")
    } else if bytes < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes / 1024.0)
    } else {
        format!("{:.2} MiB", bytes / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl StorageCost for Fixed {
        fn storage_bits(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn option_adds_presence_bit() {
        assert_eq!(None::<Fixed>.storage_bits(), 1);
        assert_eq!(Some(Fixed(10)).storage_bits(), 11);
    }

    #[test]
    fn vec_adds_length_prefix() {
        let v = vec![Fixed(3), Fixed(4)];
        assert_eq!(v.storage_bits(), 64 + 7);
        assert_eq!(Vec::<Fixed>::new().storage_bits(), 64);
    }

    #[test]
    fn universe_bits() {
        assert_eq!(bits_for_universe(1), 0);
        assert_eq!(bits_for_universe(2), 1);
        assert_eq!(bits_for_universe(1024), 10);
        assert_eq!(bits_for_node(1024), 10);
        assert_eq!(bits_for_node(1), 1); // at least one bit
    }

    #[test]
    fn distance_bits_monotone() {
        let mut prev = 0;
        for d in [0u64, 1, 5, 100, 1 << 20, 1 << 40] {
            let b = bits_for_distance(d);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn fmt_bits_units() {
        assert_eq!(fmt_bits(8), "1 B");
        assert!(fmt_bits(8 * 2048).contains("KiB"));
        assert!(fmt_bits(8 * 3 * 1024 * 1024).contains("MiB"));
    }
}
