//! Compressed-sparse-row weighted undirected graphs.
//!
//! Graphs are assembled through [`GraphBuilder`] (adjacency lists, cheap
//! to mutate) and then frozen into [`Graph`] (CSR, cheap to traverse).
//! All algorithm crates operate on the frozen form only.

use crate::ids::{NodeId, Weight};

/// Mutable graph under construction. Undirected; parallel edges are
/// deduplicated at freeze time keeping the lightest weight.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32, Weight)>,
}

impl GraphBuilder {
    /// Start a builder with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graphkit supports at most 2^32-1 nodes");
        GraphBuilder { n: n as u32, edges: Vec::new() }
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.n as usize
    }

    /// Append a fresh node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.n);
        self.n += 1;
        id
    }

    /// Add an undirected edge `{u, v}` of weight `w >= 1`.
    ///
    /// Self-loops are rejected: they never help a route and break the
    /// `min d(u,v) = 1` normalization the paper assumes.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(u.0 < self.n && v.0 < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(w >= 1, "edge weights must be >= 1 (paper normalization)");
        self.edges.push((u.0, v.0, w));
    }

    /// Number of (undirected) edges added so far, before dedup.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into CSR form. Deduplicates parallel edges (keeping the
    /// minimum weight) and sorts each adjacency list by neighbor id so
    /// port numbers are deterministic.
    pub fn build(mut self) -> Graph {
        let n = self.n as usize;
        // Canonicalize: (min, max) endpoint order, then sort + dedup.
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, keep| {
            if next.0 == keep.0 && next.1 == keep.1 {
                keep.2 = keep.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut degree = vec![0u32; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0u64);
        for &d in &degree {
            acc += d as u64;
            offsets.push(acc);
        }
        let m2 = acc as usize;
        let mut targets = vec![0u32; m2];
        let mut weights = vec![0 as Weight; m2];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize] as usize;
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            targets[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list by target id (weights follow).
        for u in 0..n {
            let (s, e) = (offsets[u] as usize, offsets[u + 1] as usize);
            let mut pairs: Vec<(u32, Weight)> =
                targets[s..e].iter().copied().zip(weights[s..e].iter().copied()).collect();
            pairs.sort_unstable();
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                targets[s + i] = t;
                weights[s + i] = w;
            }
        }
        Graph { offsets, targets, weights, num_edges: self.edges.len() }
    }
}

/// Frozen undirected weighted graph in CSR form.
///
/// Both directions of every edge are stored, so `neighbors(u)` is a
/// contiguous slice. The index of a neighbor within that slice is the
/// *port number* of the edge at `u` — the simulator's forwarding
/// primitive is "send out of port p".
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
    num_edges: usize,
}

impl Graph {
    /// Number of nodes.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline(always)]
    pub fn m(&self) -> usize {
        self.num_edges
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// Degree of `u`.
    #[inline(always)]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.idx() + 1] - self.offsets[u.idx()]) as usize
    }

    /// Neighbor ids of `u`, sorted ascending. Index = port number.
    #[inline(always)]
    // lint:allow-fn(panic-free-serve): validate-then-index — span() bounds come from the frozen CSR offsets (checked monotone at decode)
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        let (s, e) = self.span(u);
        &self.targets[s..e]
    }

    /// Weights aligned with [`Graph::neighbors`].
    #[inline(always)]
    // lint:allow-fn(panic-free-serve): validate-then-index — span() bounds come from the frozen CSR offsets (checked monotone at decode)
    pub fn neighbor_weights(&self, u: NodeId) -> &[Weight] {
        let (s, e) = self.span(u);
        &self.weights[s..e]
    }

    /// `(neighbor, weight)` pairs of `u`.
    pub fn edges_of(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let (s, e) = self.span(u);
        self.targets[s..e].iter().copied().map(NodeId).zip(self.weights[s..e].iter().copied())
    }

    /// The port at `u` leading to neighbor `v`, if the edge exists.
    /// Binary search over the sorted adjacency slice.
    pub fn port_to(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.neighbors(u).binary_search(&v.0).ok().map(|p| p as u32)
    }

    /// The neighbor reached from `u` via `port`.
    pub fn endpoint(&self, u: NodeId, port: u32) -> NodeId {
        NodeId(self.neighbors(u)[port as usize])
    }

    /// Weight of the edge out of `u` via `port`.
    // lint:allow-fn(panic-free-serve): validate-then-index — ports are produced by port_to's binary search over this same adjacency slice
    pub fn port_weight(&self, u: NodeId, port: u32) -> Weight {
        self.neighbor_weights(u)[port as usize]
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.port_to(u, v).map(|p| self.port_weight(u, p))
    }

    /// Iterate every undirected edge once as `(u, v, w)` with `u < v`.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.edges_of(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Total bits to store the raw graph (for reporting only).
    pub fn raw_bits(&self) -> u64 {
        (self.targets.len() * 32 + self.weights.len() * 64) as u64
    }

    #[inline(always)]
    // lint:allow-fn(panic-free-serve): validate-then-index — u < n for every NodeId in a frozen graph; offsets has n+1 entries by construction
    fn span(&self, u: NodeId) -> (usize, usize) {
        (self.offsets[u.idx()] as usize, self.offsets[u.idx() + 1] as usize)
    }

    /// Serialize the frozen CSR verbatim.
    pub fn to_wire(&self, w: &mut crate::wire::Writer) {
        w.slice_u64(&self.offsets);
        w.slice_u32(&self.targets);
        w.slice_u64(&self.weights);
        w.len(self.num_edges);
    }

    /// Inverse of [`Graph::to_wire`]. Validates the CSR invariants
    /// (monotone offsets, aligned arrays, in-range sorted targets) so a
    /// corrupt record is an error, not latent out-of-bounds panics.
    // lint:allow-fn(panic-free-serve): validate-then-index — CSR invariants (monotone offsets, aligned arrays, in-range targets) are checked before indexing
    pub fn from_wire(r: &mut crate::wire::Reader) -> std::io::Result<Graph> {
        use crate::wire::invalid;
        let offsets = r.slice_u64()?;
        let targets = r.slice_u32()?;
        let weights: Vec<Weight> = r.slice_u64()?;
        let num_edges = r.u64()? as usize;
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(invalid("graph offsets must start at 0"));
        }
        let n = offsets.len() - 1;
        if n > u32::MAX as usize {
            return Err(invalid("graph node count out of range"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid("graph offsets must be monotone"));
        }
        if offsets[n] as usize != targets.len() || targets.len() != weights.len() {
            return Err(invalid("graph arrays have mismatched lengths"));
        }
        if num_edges.checked_mul(2) != Some(targets.len()) {
            return Err(invalid("graph edge count mismatch"));
        }
        for i in 0..n {
            let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
            let adj = &targets[s..e];
            if adj.iter().any(|&t| t as usize >= n) {
                return Err(invalid("graph target out of range"));
            }
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(invalid("graph adjacency must be strictly sorted"));
            }
        }
        Ok(Graph { offsets, targets, weights, num_edges })
    }
}

/// Build a graph directly from an edge list over `n` nodes.
pub fn graph_from_edges(n: usize, edges: &[(u32, u32, Weight)]) -> Graph {
    let mut b = GraphBuilder::with_nodes(n);
    for &(u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1 (1), 0-2 (2), 1-3 (3), 2-3 (1), 1-2 (5)
        graph_from_edges(4, &[(0, 1, 1), (0, 2, 2), (1, 3, 3), (2, 3, 1), (1, 2, 5)])
    }

    #[test]
    fn csr_shape() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 3);
        assert_eq!(g.neighbors(NodeId(1)), &[0, 2, 3]);
        assert_eq!(g.neighbor_weights(NodeId(1)), &[1, 5, 3]);
    }

    #[test]
    fn ports_roundtrip() {
        let g = diamond();
        for u in g.nodes() {
            for (p, &t) in g.neighbors(u).iter().enumerate() {
                assert_eq!(g.port_to(u, NodeId(t)), Some(p as u32));
                assert_eq!(g.endpoint(u, p as u32), NodeId(t));
            }
        }
        assert_eq!(g.port_to(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(5));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let g = graph_from_edges(2, &[(0, 1, 7), (1, 0, 3), (0, 1, 9)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3));
    }

    #[test]
    fn all_edges_enumerates_once() {
        let g = diamond();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges.len(), 5);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(NodeId(0), NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "weights must be >= 1")]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(NodeId(0), NodeId(1), 0);
    }

    #[test]
    fn wire_roundtrip() {
        let g = diamond();
        let mut w = crate::wire::Writer::new();
        g.to_wire(&mut w);
        let bytes = w.into_bytes();
        let g2 = Graph::from_wire(&mut crate::wire::Reader::new(&bytes)).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        for u in g.nodes() {
            assert_eq!(g2.neighbors(u), g.neighbors(u));
            assert_eq!(g2.neighbor_weights(u), g.neighbor_weights(u));
        }
        // A flipped target lands out of range or breaks sortedness.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(Graph::from_wire(&mut crate::wire::Reader::new(&bad)).is_err());
    }

    #[test]
    fn builder_add_node() {
        let mut b = GraphBuilder::default();
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c, 4);
        let g = b.build();
        assert_eq!(g.n(), 2);
        assert_eq!(g.edge_weight(a, c), Some(4));
    }
}
