//! Tree workloads: the hard cases for the Lemma 4/5 tree-routing schemes
//! and the substrate of the exponential-aspect-ratio experiments.

use rand::Rng;

use crate::gen::weights::WeightDist;
use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// Uniform random recursive tree: node `i` attaches to a uniform earlier
/// node. Depth is O(log n) w.h.p.
pub fn random_tree(n: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(NodeId(i as u32), NodeId(j as u32), dist.sample(rng));
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs`
/// pendant leaves. Stresses routing schemes whose cost depends on the
/// number of "branching" nodes.
pub fn caterpillar(spine: usize, legs: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_nodes(n);
    for s in 1..spine {
        b.add_edge(NodeId((s - 1) as u32), NodeId(s as u32), dist.sample(rng));
    }
    let mut next = spine as u32;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            b.add_edge(NodeId(s), NodeId(next), dist.sample(rng));
            next += 1;
        }
    }
    b.build()
}

/// Complete `arity`-ary tree with `depth` levels below the root.
pub fn balanced_tree(arity: usize, depth: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(arity >= 2);
    // n = (arity^(depth+1) - 1) / (arity - 1)
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    let mut b = GraphBuilder::with_nodes(n);
    // Heap-style indexing: children of i are arity*i + 1 ..= arity*i + arity.
    for i in 1..n {
        let parent = (i - 1) / arity;
        b.add_edge(NodeId(parent as u32), NodeId(i as u32), dist.sample(rng));
    }
    b.build()
}

/// A chain of stars where the chain edge out of star `i` has weight
/// `2^(i * step)`: clusters at every distance scale. With `levels * step`
/// near 40 this produces Δ ≈ 2^40 with O(levels * star) nodes — the
/// workload where per-scale storage (log Δ tables) visibly diverges.
pub fn exponential_star_chain(levels: usize, star: usize, step: u32) -> Graph {
    assert!(levels >= 1 && star >= 1);
    assert!((levels as u64) * (step as u64) <= 60);
    let n = levels * (star + 1);
    let mut b = GraphBuilder::with_nodes(n);
    let hub = |l: usize| NodeId((l * (star + 1)) as u32);
    for l in 0..levels {
        // Leaves of this star, unit spokes.
        for s in 0..star {
            b.add_edge(hub(l), NodeId((l * (star + 1) + 1 + s) as u32), 1);
        }
        if l + 1 < levels {
            // lint:allow(no-raw-octave-shift): exponent <= levels * step <= 60, asserted at entry
            b.add_edge(hub(l), hub(l + 1), 1u64 << ((l as u32 + 1) * step));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::apsp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_is_tree() {
        let mut rng = SmallRng::seed_from_u64(20);
        let g = random_tree(64, WeightDist::Unit, &mut rng);
        assert_eq!(g.m(), 63);
        assert!(apsp(&g).connected());
    }

    #[test]
    fn caterpillar_shape() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = caterpillar(10, 3, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 40);
        assert_eq!(g.m(), 39);
        // Spine interior nodes: 2 spine edges + 3 legs.
        assert_eq!(g.degree(NodeId(5)), 5);
    }

    #[test]
    fn balanced_tree_counts() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = balanced_tree(2, 3, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        let m = apsp(&g);
        assert_eq!(m.diameter(), 6); // leaf to leaf through the root
    }

    #[test]
    fn ternary_tree_counts() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = balanced_tree(3, 2, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 1 + 3 + 9);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn star_chain_scales() {
        let g = exponential_star_chain(8, 4, 5);
        assert_eq!(g.n(), 8 * 5);
        let m = apsp(&g);
        assert!(m.connected());
        let ar = m.aspect_ratio().unwrap();
        assert!(ar >= (1u64 << 35) as f64, "aspect ratio too small: {ar}");
    }

    #[test]
    fn star_chain_single_level() {
        let g = exponential_star_chain(1, 6, 5);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 6);
    }
}
