//! Deterministic graph families: paths, rings, stars, grids, tori,
//! complete graphs, and the exponential-weight ring used by the
//! scale-free experiments.

use rand::Rng;

use crate::gen::weights::WeightDist;
use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// Path on `n` nodes with constant weight `w`.
pub fn path(n: usize, w: u64) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 1..n {
        b.add_edge(NodeId((i - 1) as u32), NodeId(i as u32), w);
    }
    b.build()
}

/// Cycle on `n >= 3` nodes with constant weight `w`.
pub fn ring(n: usize, w: u64) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32), w);
    }
    b.build()
}

/// Star with `n - 1` leaves attached to node 0, constant weight `w`.
pub fn star(n: usize, w: u64) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId(i as u32), w);
    }
    b.build()
}

/// `w x h` grid; node `(x, y)` has id `y * w + x`.
pub fn grid(w: usize, h: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let mut b = GraphBuilder::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y), dist.sample(rng));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1), dist.sample(rng));
            }
        }
    }
    b.build()
}

/// `w x h` torus (grid with wraparound rows/columns). Requires `w, h >= 3`
/// so wrap edges are not parallel to grid edges.
pub fn torus(w: usize, h: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs sides >= 3");
    let mut b = GraphBuilder::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            b.add_edge(id(x, y), id((x + 1) % w, y), dist.sample(rng));
            b.add_edge(id(x, y), id(x, (y + 1) % h), dist.sample(rng));
        }
    }
    b.build()
}

/// Complete graph K_n with weights from `dist`.
pub fn complete(n: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId(i as u32), NodeId(j as u32), dist.sample(rng));
        }
    }
    b.build()
}

/// Ring whose edge `i` has weight `2^(i * max_exp / n)`: distances span
/// `[1, 2^max_exp]`, giving aspect ratio around `2^max_exp` with only `n`
/// edges. The canonical adversary for schemes whose storage scales with
/// `log Δ` — each node sees geometrically spread ball radii.
pub fn exponential_ring(n: usize, max_exp: u32) -> Graph {
    assert!(n >= 3);
    assert!(max_exp <= 50);
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        let e = (i as u64 * max_exp as u64 / n as u64) as u32;
        // lint:allow(no-raw-octave-shift): e < max_exp <= 50, asserted at entry
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 1u64 << e);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::apsp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5, 2);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6, 1);
        assert_eq!(g.m(), 6);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7, 3);
        assert_eq!(g.degree(NodeId(0)), 6);
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn grid_shape() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = grid(4, 3, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 4 * 2 + 3 * 3); // h*(w-1) + w*(h-1) = 8+9... recompute
        let m = apsp(&g);
        assert!(m.connected());
        assert_eq!(m.diameter(), (4 - 1) + (3 - 1));
    }

    #[test]
    fn torus_regular() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = torus(4, 4, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 16);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        let m = apsp(&g);
        assert_eq!(m.diameter(), 4); // 2 + 2 with wraparound
    }

    #[test]
    fn complete_shape() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = complete(6, WeightDist::Unit, &mut rng);
        assert_eq!(g.m(), 15);
        let m = apsp(&g);
        assert_eq!(m.diameter(), 1);
    }

    #[test]
    fn exponential_ring_aspect() {
        let g = exponential_ring(32, 20);
        let m = apsp(&g);
        assert!(m.connected());
        let ar = m.aspect_ratio().unwrap();
        assert!(ar >= (1u64 << 19) as f64, "aspect ratio too small: {ar}");
    }

    #[test]
    fn grid_edge_count_formula() {
        let mut rng = SmallRng::seed_from_u64(8);
        for (w, h) in [(2, 2), (5, 3), (7, 7)] {
            let g = grid(w, h, WeightDist::Unit, &mut rng);
            assert_eq!(g.m(), h * (w - 1) + w * (h - 1));
        }
    }
}
