//! Randomized graph families: connected Erdős–Rényi, random geometric,
//! preferential attachment.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::gen::weights::WeightDist;
use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// Connected G(n, p): a uniform random spanning tree backbone (random
/// attachment over a shuffled order) plus each remaining pair
/// independently with probability `p`. Guarantees connectivity without
/// rejection sampling, which matters for the large-n sweeps.
pub fn erdos_renyi(n: usize, p: f64, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    let mut b = GraphBuilder::with_nodes(n);
    // Random backbone: shuffle, attach each node to a random earlier one.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.add_edge(NodeId(order[i]), NodeId(order[j]), dist.sample(rng));
    }
    // Extra ER edges. For sparse p, sample skip lengths geometrically to
    // stay O(m) instead of O(n^2).
    if p > 0.0 {
        if p >= 0.25 {
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    if rng.gen_bool(p) {
                        b.add_edge(NodeId(i), NodeId(j), dist.sample(rng));
                    }
                }
            }
        } else {
            // Geometric skipping over the strictly-upper-triangular pairs.
            let total = n as u64 * (n as u64 - 1) / 2;
            let log1mp = (1.0 - p).ln();
            let mut pos: u64 = 0;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (u.ln() / log1mp).floor() as u64 + 1;
                pos = match pos.checked_add(skip) {
                    Some(v) => v,
                    None => break,
                };
                if pos > total {
                    break;
                }
                let (i, j) = pair_from_rank(pos - 1, n as u64);
                b.add_edge(NodeId(i as u32), NodeId(j as u32), dist.sample(rng));
            }
        }
    }
    b.build()
}

/// Invert the rank of a pair (i, j), i < j, in row-major order over the
/// strictly-upper-triangular matrix of side n.
fn pair_from_rank(rank: u64, n: u64) -> (u64, u64) {
    // Row i occupies ranks [i*n - i(i+1)/2 - ... ]; solve by scanning rows
    // arithmetically: row i has (n - 1 - i) entries.
    let mut i = 0u64;
    let mut remaining = rank;
    loop {
        let row_len = n - 1 - i;
        if remaining < row_len {
            return (i, i + 1 + remaining);
        }
        remaining -= row_len;
        i += 1;
    }
}

/// Random geometric graph: `n` points uniform on the unit square, an edge
/// between points closer than `radius`, weight = Euclidean distance
/// scaled by `scale` (rounded up so weights stay >= 1). If the threshold
/// graph is disconnected, each component is chained to its nearest
/// outside point, preserving the metric flavor.
pub fn random_geometric(n: usize, radius: f64, scale: u64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    assert!(radius > 0.0);
    assert!(scale >= 1);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let w_of = |a: (f64, f64), b: (f64, f64)| -> u64 {
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        ((d * scale as f64).ceil() as u64).max(1)
    };
    let mut b = GraphBuilder::with_nodes(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(NodeId(i as u32), NodeId(j as u32), w_of(pts[i], pts[j]));
            }
        }
    }
    // Connectivity repair: union-find over current edges, then link each
    // component to its geometrically nearest node in another component.
    let mut dsu = Dsu::new(n);
    let snapshot = b.clone().build();
    for (u, v, _) in snapshot.all_edges() {
        dsu.union(u.idx(), v.idx());
    }
    loop {
        let mut roots: Vec<usize> = (0..n).filter(|&v| dsu.find(v) == v).collect();
        if roots.len() <= 1 {
            break;
        }
        roots.sort_unstable();
        let main = roots[0];
        // Find globally closest cross-component pair involving main's side.
        let mut best: Option<(usize, usize, u64)> = None;
        for i in 0..n {
            if dsu.find(i) != dsu.find(main) {
                continue;
            }
            for j in 0..n {
                if dsu.find(j) == dsu.find(main) {
                    continue;
                }
                let w = w_of(pts[i], pts[j]);
                if best.is_none_or(|(_, _, bw)| w < bw) {
                    best = Some((i, j, w));
                }
            }
        }
        let (i, j, w) = best.expect("disconnected graph must have a cross pair");
        b.add_edge(NodeId(i as u32), NodeId(j as u32), w);
        dsu.union(i, j);
    }
    b.build()
}

/// Barabási–Albert preferential attachment: nodes arrive one by one and
/// connect `m` edges to existing nodes chosen proportionally to degree.
pub fn preferential_attachment(n: usize, m: usize, dist: WeightDist, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2 && m >= 1);
    let mut b = GraphBuilder::with_nodes(n);
    // Repeated-endpoint list: choosing uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed: a single edge 0-1.
    b.add_edge(NodeId(0), NodeId(1), dist.sample(rng));
    endpoints.extend_from_slice(&[0, 1]);
    for v in 2..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m.min(v as usize) && guard < 64 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        if chosen.is_empty() {
            chosen.push(rng.gen_range(0..v));
        }
        for t in chosen {
            b.add_edge(NodeId(v), NodeId(t), dist.sample(rng));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Minimal union-find used by the geometric connectivity repair.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::apsp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn er_connected_and_sized() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = erdos_renyi(150, 0.05, WeightDist::Unit, &mut rng);
        assert_eq!(g.n(), 150);
        assert!(g.m() >= 149); // at least the backbone
        assert!(apsp(&g).connected());
    }

    #[test]
    fn er_dense_branch() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = erdos_renyi(40, 0.5, WeightDist::Unit, &mut rng);
        // Expected edges ~ 39 + 0.5 * 780; allow wide slack.
        assert!(g.m() > 250, "too few edges: {}", g.m());
        assert!(apsp(&g).connected());
    }

    #[test]
    fn er_zero_extra_is_a_tree() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = erdos_renyi(50, 0.0, WeightDist::Unit, &mut rng);
        assert_eq!(g.m(), 49);
        assert!(apsp(&g).connected());
    }

    #[test]
    fn pair_from_rank_enumerates_upper_triangle() {
        let n = 6u64;
        let mut seen = Vec::new();
        for r in 0..(n * (n - 1) / 2) {
            seen.push(pair_from_rank(r, n));
        }
        let mut expect = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                expect.push((i, j));
            }
        }
        assert_eq!(seen, expect);
    }

    #[test]
    fn geometric_connected_metric_weights() {
        let mut rng = SmallRng::seed_from_u64(14);
        let g = random_geometric(100, 0.15, 1000, &mut rng);
        assert!(apsp(&g).connected());
        for (_, _, w) in g.all_edges() {
            assert!(w >= 1);
        }
    }

    #[test]
    fn geometric_tiny_radius_still_connected() {
        // Radius so small the threshold graph is mostly isolated points;
        // the repair must still connect everything.
        let mut rng = SmallRng::seed_from_u64(15);
        let g = random_geometric(40, 0.01, 1000, &mut rng);
        assert!(apsp(&g).connected());
    }

    #[test]
    fn pref_attach_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(16);
        let g = preferential_attachment(300, 3, WeightDist::Unit, &mut rng);
        assert!(apsp(&g).connected());
        let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
        let mean_deg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > 3.0 * mean_deg, "expected a hub: max {max_deg}, mean {mean_deg}");
    }

    #[test]
    fn pref_attach_m1_is_tree() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = preferential_attachment(100, 1, WeightDist::Unit, &mut rng);
        assert_eq!(g.m(), 99);
        assert!(apsp(&g).connected());
    }
}
