//! Edge-weight distributions shared by the generators.

use rand::Rng;

use crate::ids::Weight;

/// How generators draw edge weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightDist {
    /// Every edge has weight 1 (unweighted graphs).
    Unit,
    /// Uniform integer in `[lo, hi]`.
    UniformInt {
        /// Inclusive lower bound (≥ 1).
        lo: Weight,
        /// Inclusive upper bound.
        hi: Weight,
    },
    /// `2^e` with `e` uniform in `[0, max_exp]`. Produces aspect ratios
    /// around `2^max_exp` — the regime where log Δ-dependent schemes
    /// blow up and scale-free ones must not.
    PowerOfTwo {
        /// Largest exponent drawn (≤ 62).
        max_exp: u32,
    },
}

impl WeightDist {
    /// Draw one weight.
    pub fn sample(self, rng: &mut impl Rng) -> Weight {
        match self {
            WeightDist::Unit => 1,
            WeightDist::UniformInt { lo, hi } => {
                assert!(lo >= 1 && hi >= lo, "invalid uniform range");
                rng.gen_range(lo..=hi)
            }
            WeightDist::PowerOfTwo { max_exp } => {
                assert!(max_exp <= 62, "max_exp too large for u64 costs");
                // lint:allow(no-raw-octave-shift): exponent <= max_exp <= 62, asserted on the line above
                1u64 << rng.gen_range(0..=max_exp)
            }
        }
    }

    /// Largest weight this distribution can emit.
    pub fn max_weight(self) -> Weight {
        match self {
            WeightDist::Unit => 1,
            WeightDist::UniformInt { hi, .. } => hi,
            // lint:allow(no-raw-octave-shift): max_exp <= 62 is a variant invariant (asserted in sample)
            WeightDist::PowerOfTwo { max_exp } => 1u64 << max_exp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn unit_is_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(WeightDist::Unit.sample(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = WeightDist::UniformInt { lo: 3, hi: 9 };
        for _ in 0..200 {
            let w = d.sample(&mut rng);
            assert!((3..=9).contains(&w));
        }
        assert_eq!(d.max_weight(), 9);
    }

    #[test]
    fn power_of_two_is_power() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = WeightDist::PowerOfTwo { max_exp: 40 };
        let mut seen_large = false;
        for _ in 0..500 {
            let w = d.sample(&mut rng);
            assert!(w.is_power_of_two());
            assert!(w <= 1 << 40);
            if w >= 1 << 20 {
                seen_large = true;
            }
        }
        assert!(seen_large, "distribution never sampled large weights");
        assert_eq!(d.max_weight(), 1 << 40);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn rejects_zero_lo() {
        let mut rng = SmallRng::seed_from_u64(4);
        WeightDist::UniformInt { lo: 0, hi: 5 }.sample(&mut rng);
    }
}
