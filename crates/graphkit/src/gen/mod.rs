//! Synthetic graph families used as routing workloads.
//!
//! Every generator returns a *connected* graph with integer weights
//! `>= 1`, matching the paper's normalization `min d(u,v) = 1`. The
//! families cover the regimes the paper's analysis distinguishes:
//!
//! * dense neighborhoods everywhere — [`random::erdos_renyi`], [`classic::complete`];
//! * metric / locally-sparse — [`random::random_geometric`], [`classic::grid`], [`classic::torus`];
//! * heavy-tailed degrees — [`random::preferential_attachment`];
//! * extreme aspect ratio Δ (the scale-free experiments) — any family
//!   combined with [`weights::WeightDist::PowerOfTwo`], plus
//!   [`classic::exponential_ring`] and [`trees::exponential_star_chain`];
//! * trees for Lemma 4/5 harnesses — [`trees`].

pub mod classic;
pub mod random;
pub mod trees;
pub mod weights;

pub use classic::{complete, exponential_ring, grid, path, ring, star, torus};
pub use random::{erdos_renyi, preferential_attachment, random_geometric};
pub use trees::{balanced_tree, caterpillar, exponential_star_chain, random_tree};
pub use weights::WeightDist;

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A named standard workload suite used across experiments, so tables in
/// EXPERIMENTS.md reference reproducible instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Connected Erdős–Rényi with average degree 8.
    ErdosRenyi,
    /// Random geometric graph on the unit square.
    Geometric,
    /// 2-D grid with unit weights.
    Grid,
    /// Preferential attachment, 3 edges per arrival.
    PrefAttach,
    /// Unit-weight ring (worst-case for ball growth).
    Ring,
    /// Ring with exponentially growing weights (Δ ≈ 2^40).
    ExpRing,
    /// Random tree with power-of-two weights (Δ ≈ 2^30).
    ExpTree,
}

impl Family {
    /// All families, in table order.
    pub const ALL: [Family; 7] = [
        Family::ErdosRenyi,
        Family::Geometric,
        Family::Grid,
        Family::PrefAttach,
        Family::Ring,
        Family::ExpRing,
        Family::ExpTree,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Family::ErdosRenyi => "erdos-renyi",
            Family::Geometric => "geometric",
            Family::Grid => "grid",
            Family::PrefAttach => "pref-attach",
            Family::Ring => "ring",
            Family::ExpRing => "exp-ring",
            Family::ExpTree => "exp-tree",
        }
    }

    /// Instantiate the family at (approximately) `n` nodes.
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Family::ErdosRenyi => {
                erdos_renyi(n, 8.0 / n as f64, WeightDist::UniformInt { lo: 1, hi: 16 }, &mut rng)
            }
            Family::Geometric => {
                // Radius chosen so the expected degree is ~8.
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                random_geometric(n, r, 1000, &mut rng)
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                grid(side.max(2), side.max(2), WeightDist::Unit, &mut rng)
            }
            Family::PrefAttach => {
                preferential_attachment(n, 3, WeightDist::UniformInt { lo: 1, hi: 8 }, &mut rng)
            }
            Family::Ring => ring(n, 1),
            Family::ExpRing => exponential_ring(n, 40),
            Family::ExpTree => random_tree(n, WeightDist::PowerOfTwo { max_exp: 30 }, &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::apsp;

    #[test]
    fn all_families_connected() {
        for fam in Family::ALL {
            let g = fam.generate(120, 7);
            assert!(g.n() >= 100, "{} too small: {}", fam.label(), g.n());
            let m = apsp(&g);
            assert!(m.connected(), "{} disconnected", fam.label());
        }
    }

    #[test]
    fn exp_families_have_huge_aspect_ratio() {
        let g = Family::ExpRing.generate(64, 3);
        let m = apsp(&g);
        assert!(m.aspect_ratio().unwrap() > 1e9, "Δ = {:?}", m.aspect_ratio());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        for fam in Family::ALL {
            let a = fam.generate(80, 42);
            let b = fam.generate(80, 42);
            assert_eq!(a.n(), b.n());
            assert_eq!(a.m(), b.m());
            let ea: Vec<_> = a.all_edges().collect();
            let eb: Vec<_> = b.all_edges().collect();
            assert_eq!(ea, eb, "{} not deterministic", fam.label());
        }
    }
}
