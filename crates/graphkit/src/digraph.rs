//! Directed-graph substrate for the paper's §4 extension ("our routing
//! scheme can be adopted to work on strongly connected directed
//! graphs").
//!
//! Directed compact routing is measured against the **round-trip
//! metric** `rt(u,v) = d→(u,v) + d→(v,u)` (one-way distances admit no
//! sublinear scheme); this module provides the directed CSR graph,
//! forward/backward Dijkstra, strong-connectivity checking, round-trip
//! distance matrices, and a strongly connected random generator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;

use crate::ids::{cost_add, Cost, NodeId, Weight, INFINITY};
use crate::metrics::DistMatrix;

/// Mutable directed graph under construction.
#[derive(Clone, Debug, Default)]
pub struct DiGraphBuilder {
    n: u32,
    arcs: Vec<(u32, u32, Weight)>,
}

impl DiGraphBuilder {
    /// Start with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        DiGraphBuilder { n: n as u32, arcs: Vec::new() }
    }

    /// Add an arc `u → v` of weight `w ≥ 1`. Parallel arcs keep the
    /// lightest at freeze time.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(u.0 < self.n && v.0 < self.n, "arc endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(w >= 1, "arc weights must be >= 1");
        self.arcs.push((u.0, v.0, w));
    }

    /// Freeze into CSR form (out-adjacency + in-adjacency).
    pub fn build(mut self) -> DiGraph {
        let n = self.n as usize;
        self.arcs.sort_unstable();
        self.arcs.dedup_by(|next, keep| {
            if next.0 == keep.0 && next.1 == keep.1 {
                keep.2 = keep.2.min(next.2);
                true
            } else {
                false
            }
        });
        let build_csr = |pairs: &[(u32, u32, Weight)]| {
            let mut deg = vec![0u32; n];
            for &(u, _, _) in pairs {
                deg[u as usize] += 1;
            }
            let mut offsets = vec![0u32; n + 1];
            for i in 0..n {
                offsets[i + 1] = offsets[i] + deg[i];
            }
            let mut targets = vec![0u32; pairs.len()];
            let mut weights = vec![0 as Weight; pairs.len()];
            let mut cursor = offsets[..n].to_vec();
            for &(u, v, w) in pairs {
                let c = cursor[u as usize] as usize;
                targets[c] = v;
                weights[c] = w;
                cursor[u as usize] += 1;
            }
            (offsets, targets, weights)
        };
        let (out_offsets, out_targets, out_weights) = build_csr(&self.arcs);
        let mut rev: Vec<(u32, u32, Weight)> =
            self.arcs.iter().map(|&(u, v, w)| (v, u, w)).collect();
        rev.sort_unstable();
        let (in_offsets, in_sources, in_weights) = build_csr(&rev);
        DiGraph {
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            num_arcs: self.arcs.len(),
        }
    }
}

/// Frozen directed weighted graph (CSR both directions).
#[derive(Clone, Debug)]
pub struct DiGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_weights: Vec<Weight>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    in_weights: Vec<Weight>,
    num_arcs: usize,
}

impl DiGraph {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    pub fn m(&self) -> usize {
        self.num_arcs
    }

    /// Out-neighbors of `u` with weights.
    pub fn out_arcs(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let (s, e) = (self.out_offsets[u.idx()] as usize, self.out_offsets[u.idx() + 1] as usize);
        self.out_targets[s..e]
            .iter()
            .copied()
            .map(NodeId)
            .zip(self.out_weights[s..e].iter().copied())
    }

    /// In-neighbors of `u` with weights.
    pub fn in_arcs(&self, u: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let (s, e) = (self.in_offsets[u.idx()] as usize, self.in_offsets[u.idx() + 1] as usize);
        self.in_sources[s..e].iter().copied().map(NodeId).zip(self.in_weights[s..e].iter().copied())
    }

    /// Weight of the arc `u → v`, if present.
    pub fn arc_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        let (s, e) = (self.out_offsets[u.idx()] as usize, self.out_offsets[u.idx() + 1] as usize);
        self.out_targets[s..e].binary_search(&v.0).ok().map(|i| self.out_weights[s + i])
    }

    /// Forward single-source shortest paths (along arc directions).
    /// `reverse = true` follows arcs backwards (distances *to* src).
    pub fn dijkstra(&self, src: NodeId, reverse: bool) -> DiSssp {
        let n = self.n();
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        dist[src.idx()] = 0;
        heap.push(Reverse((0, src.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            let relax = |heap: &mut BinaryHeap<Reverse<(Cost, u32)>>,
                         dist: &mut [Cost],
                         parent: &mut [u32],
                         v: NodeId,
                         w: Weight| {
                let nd = cost_add(d, w);
                if nd < dist[v.idx()] || (nd == dist[v.idx()] && u < parent[v.idx()]) {
                    let improved = nd < dist[v.idx()];
                    dist[v.idx()] = nd;
                    parent[v.idx()] = u;
                    if improved {
                        heap.push(Reverse((nd, v.0)));
                    }
                }
            };
            if reverse {
                for (v, w) in self.in_arcs(NodeId(u)) {
                    relax(&mut heap, &mut dist, &mut parent, v, w);
                }
            } else {
                for (v, w) in self.out_arcs(NodeId(u)) {
                    relax(&mut heap, &mut dist, &mut parent, v, w);
                }
            }
        }
        DiSssp { source: src, reverse, dist, parent }
    }

    /// Is the graph strongly connected?
    pub fn strongly_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let fwd = self.dijkstra(NodeId(0), false);
        let bwd = self.dijkstra(NodeId(0), true);
        fwd.dist.iter().all(|&d| d != INFINITY) && bwd.dist.iter().all(|&d| d != INFINITY)
    }

    /// All-pairs *forward* distances (row u = distances from u).
    pub fn apsp_directed(&self) -> Vec<Vec<Cost>> {
        (0..self.n() as u32).map(|u| self.dijkstra(NodeId(u), false).dist).collect()
    }

    /// The round-trip metric `rt(u,v) = d→(u,v) + d→(v,u)` as a
    /// symmetric [`DistMatrix`].
    pub fn round_trip_matrix(&self) -> DistMatrix {
        let fwd = self.apsp_directed();
        let n = self.n();
        let mut flat = vec![INFINITY; n * n];
        for u in 0..n {
            for v in 0..n {
                flat[u * n + v] = cost_add(fwd[u][v], fwd[v][u]);
            }
        }
        DistMatrix::from_raw(n, flat)
    }

    /// Next-hop table from `src` along forward shortest paths:
    /// `next[v]` = first node after `src` on a shortest path `src → v`.
    pub fn next_hops(&self, src: NodeId) -> Vec<u32> {
        let sp = self.dijkstra(src, false);
        let n = self.n();
        let mut next = vec![u32::MAX; n];
        next[src.idx()] = src.0;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| sp.dist[v as usize]);
        for v in order {
            if v == src.0 || sp.dist[v as usize] == INFINITY {
                continue;
            }
            let p = sp.parent[v as usize];
            next[v as usize] = if p == src.0 { v } else { next[p as usize] };
        }
        next
    }
}

/// Result of a directed single-source run.
#[derive(Clone, Debug)]
pub struct DiSssp {
    /// Source node.
    pub source: NodeId,
    /// Whether arcs were followed backwards.
    pub reverse: bool,
    /// Distances (from source forward, or to source if `reverse`).
    pub dist: Vec<Cost>,
    /// Predecessor in the search tree.
    pub parent: Vec<u32>,
}

/// Random strongly connected digraph: a directed Hamiltonian backbone
/// cycle (guaranteeing strong connectivity) plus `extra` random arcs,
/// all with weights from `lo..=hi` drawn independently per direction.
pub fn random_strongly_connected(
    n: usize,
    extra: usize,
    lo: Weight,
    hi: Weight,
    rng: &mut impl Rng,
) -> DiGraph {
    assert!(n >= 2 && lo >= 1 && hi >= lo);
    let mut b = DiGraphBuilder::with_nodes(n);
    // Shuffled backbone cycle.
    let mut order: Vec<u32> = (0..n as u32).collect();
    use rand::seq::SliceRandom;
    order.shuffle(rng);
    for i in 0..n {
        b.add_arc(NodeId(order[i]), NodeId(order[(i + 1) % n]), rng.gen_range(lo..=hi));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 20 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_arc(NodeId(u), NodeId(v), rng.gen_range(lo..=hi));
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn triangle() -> DiGraph {
        // 0 -> 1 (1), 1 -> 2 (2), 2 -> 0 (3), plus shortcut 0 -> 2 (10).
        let mut b = DiGraphBuilder::with_nodes(3);
        b.add_arc(NodeId(0), NodeId(1), 1);
        b.add_arc(NodeId(1), NodeId(2), 2);
        b.add_arc(NodeId(2), NodeId(0), 3);
        b.add_arc(NodeId(0), NodeId(2), 10);
        b.build()
    }

    #[test]
    fn forward_distances_respect_direction() {
        let g = triangle();
        let sp = g.dijkstra(NodeId(0), false);
        assert_eq!(sp.dist, vec![0, 1, 3]); // 0->1->2 beats the shortcut
        let sp1 = g.dijkstra(NodeId(1), false);
        assert_eq!(sp1.dist, vec![5, 0, 2]); // 1->2->0
    }

    #[test]
    fn reverse_dijkstra_gives_distances_to_source() {
        let g = triangle();
        let bwd = g.dijkstra(NodeId(0), true);
        // d->(v, 0): from 1: 1->2->0 = 5; from 2: 3.
        assert_eq!(bwd.dist, vec![0, 5, 3]);
    }

    #[test]
    fn strong_connectivity() {
        let g = triangle();
        assert!(g.strongly_connected());
        let mut b = DiGraphBuilder::with_nodes(3);
        b.add_arc(NodeId(0), NodeId(1), 1);
        b.add_arc(NodeId(1), NodeId(2), 1);
        assert!(!b.build().strongly_connected());
    }

    #[test]
    fn round_trip_metric_axioms() {
        let mut rng = SmallRng::seed_from_u64(70);
        let g = random_strongly_connected(40, 80, 1, 20, &mut rng);
        assert!(g.strongly_connected());
        let m = g.round_trip_matrix();
        for u in 0..40u32 {
            assert_eq!(m.d(NodeId(u), NodeId(u)), 0);
            for v in 0..40u32 {
                // Symmetry.
                assert_eq!(m.d(NodeId(u), NodeId(v)), m.d(NodeId(v), NodeId(u)));
                if u != v {
                    assert!(m.d(NodeId(u), NodeId(v)) >= 1);
                }
                // Triangle inequality.
                for w in 0..40u32 {
                    assert!(
                        m.d(NodeId(u), NodeId(v))
                            <= m.d(NodeId(u), NodeId(w)) + m.d(NodeId(w), NodeId(v))
                    );
                }
            }
        }
    }

    #[test]
    fn next_hops_follow_arcs() {
        let mut rng = SmallRng::seed_from_u64(71);
        let g = random_strongly_connected(30, 60, 1, 9, &mut rng);
        let fwd = g.apsp_directed();
        for u in 0..30u32 {
            let next = g.next_hops(NodeId(u));
            for v in 0..30u32 {
                if u == v {
                    continue;
                }
                let h = next[v as usize];
                assert_ne!(h, u32::MAX);
                let w = g.arc_weight(NodeId(u), NodeId(h)).expect("next hop must be an arc");
                // Taking the hop makes exact progress.
                assert_eq!(w + fwd[h as usize][v as usize], fwd[u as usize][v as usize]);
            }
        }
    }

    #[test]
    fn parallel_arcs_keep_min() {
        let mut b = DiGraphBuilder::with_nodes(2);
        b.add_arc(NodeId(0), NodeId(1), 9);
        b.add_arc(NodeId(0), NodeId(1), 4);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.arc_weight(NodeId(0), NodeId(1)), Some(4));
        assert_eq!(g.arc_weight(NodeId(1), NodeId(0)), None);
    }

    #[test]
    fn in_arcs_mirror_out_arcs() {
        let g = triangle();
        let ins: Vec<(u32, u64)> = g.in_arcs(NodeId(2)).map(|(v, w)| (v.0, w)).collect();
        assert_eq!(ins, vec![(0, 10), (1, 2)]);
    }

    #[test]
    fn generator_deterministic() {
        let mut r1 = SmallRng::seed_from_u64(72);
        let mut r2 = SmallRng::seed_from_u64(72);
        let a = random_strongly_connected(25, 50, 1, 5, &mut r1);
        let b = random_strongly_connected(25, 50, 1, 5, &mut r2);
        assert_eq!(a.m(), b.m());
    }
}
