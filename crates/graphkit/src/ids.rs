//! Core scalar types used across the workspace.
//!
//! Node identifiers are `u32` newtypes (half the size of `usize` on 64-bit
//! targets; the perf guidance on smaller indices applies since routing
//! tables hold millions of them). Distances are `u64` so that aspect
//! ratios up to `2^40` — the scale-free experiments' regime — are exact.

use std::fmt;

/// Index of a node inside a [`crate::Graph`]. Dense in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Convert to a `usize` for slice indexing.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline(always)]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    #[inline(always)]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        NodeId(v as u32)
    }
}

/// Edge weight. Strictly positive in every generator so the paper's
/// normalization `min_{u!=v} d(u,v) = 1` holds.
pub type Weight = u64;

/// Accumulated path cost.
pub type Cost = u64;

/// Sentinel for "unreachable".
pub const INFINITY: Cost = u64::MAX;

/// Saturating cost addition that keeps [`INFINITY`] absorbing.
#[inline(always)]
pub fn cost_add(a: Cost, b: Cost) -> Cost {
    if a == INFINITY || b == INFINITY {
        INFINITY
    } else {
        a.saturating_add(b)
    }
}

/// `2^a` as a [`Cost`], saturating at `INFINITY − 1` once `a ≥ 64`.
///
/// Radius exponents in the decomposition go up to `⌈log₂ Δ⌉ + 3`, so
/// graphs whose aspect ratio pushes `⌈log₂ Δ⌉ ≥ 61` would overflow a
/// plain `1u64 << a` (panic in debug, silent wrap in release). The
/// saturated value is a *finite* radius that dominates every real
/// distance while still excluding [`INFINITY`] (unreachable) entries
/// from `dist <= r` tests.
///
/// Documented cap: with edge weights below `2^60` every octave radius
/// is exact; beyond that the top octaves saturate, so balls at those
/// scales may truncate near `u64::MAX`-cost paths (the construction
/// stays panic-free, which is what the regression tests pin down).
#[inline(always)]
pub fn octave_radius(a: u32) -> Cost {
    if a >= 64 {
        INFINITY - 1
    } else {
        1u64 << a // lint:allow(no-raw-octave-shift): the defining site — the a >= 64 branch above saturates first
    }
}

/// `ceil(log2(x))` for `x >= 1`; 0 for `x <= 1`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// `floor(log2(x))` for `x >= 1`.
#[inline]
pub fn floor_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    63 - x.leading_zeros()
}

/// Integer `ceil(n^{1/k})`, the alphabet size `|Sigma|` used throughout
/// the paper's constructions. Computed by binary search to avoid floating
/// point edge cases at large `n`.
pub fn nth_root_ceil(n: u64, k: u32) -> u64 {
    if k == 0 {
        return n;
    }
    if k == 1 || n <= 1 {
        return n;
    }
    let mut lo = 1u64;
    let mut hi = n;
    // Invariant: lo^k < n <= hi^k (checked with saturating pow).
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if checked_pow_ge(mid, k, n) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if checked_pow_ge(lo, k, n) {
        lo
    } else {
        hi
    }
}

/// Does `base^exp >= target`, without overflow.
fn checked_pow_ge(base: u64, exp: u32, target: u64) -> bool {
    let mut acc = 1u64;
    for _ in 0..exp {
        acc = match acc.checked_mul(base) {
            Some(v) => v,
            None => return true,
        };
        if acc >= target {
            return true;
        }
    }
    acc >= target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId(42);
        assert_eq!(v.idx(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(NodeId::from(42usize), v);
        assert_eq!(format!("{v}"), "42");
        assert_eq!(format!("{v:?}"), "v42");
    }

    #[test]
    fn cost_add_saturates() {
        assert_eq!(cost_add(1, 2), 3);
        assert_eq!(cost_add(INFINITY, 2), INFINITY);
        assert_eq!(cost_add(2, INFINITY), INFINITY);
        assert_eq!(cost_add(u64::MAX - 1, 5), INFINITY);
    }

    #[test]
    fn octave_radius_saturates() {
        assert_eq!(octave_radius(0), 1);
        assert_eq!(octave_radius(40), 1 << 40);
        assert_eq!(octave_radius(63), 1 << 63);
        // At and beyond 64 the radius saturates to a finite dominator
        // that still excludes INFINITY from `dist <= r` tests.
        assert_eq!(octave_radius(64), INFINITY - 1);
        assert_eq!(octave_radius(200), INFINITY - 1);
        assert!(INFINITY > octave_radius(200));
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
        assert_eq!(ceil_log2((1 << 40) + 1), 41);
    }

    #[test]
    fn floor_log2_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn nth_root_ceil_exact_powers() {
        assert_eq!(nth_root_ceil(8, 3), 2);
        assert_eq!(nth_root_ceil(27, 3), 3);
        assert_eq!(nth_root_ceil(1024, 2), 32);
        assert_eq!(nth_root_ceil(1, 5), 1);
    }

    #[test]
    fn nth_root_ceil_rounds_up() {
        assert_eq!(nth_root_ceil(9, 3), 3); // 2^3=8 < 9 <= 27=3^3
        assert_eq!(nth_root_ceil(1000, 2), 32); // 31^2=961 < 1000 <= 1024
        assert_eq!(nth_root_ceil(2, 10), 2);
        // k = 1 and k = 0 degenerate cases.
        assert_eq!(nth_root_ceil(77, 1), 77);
        assert_eq!(nth_root_ceil(77, 0), 77);
    }

    #[test]
    fn nth_root_ceil_is_tight() {
        // For a spread of (n, k), result r satisfies r^k >= n > (r-1)^k.
        for n in [2u64, 10, 100, 1000, 65536, 1 << 30] {
            for k in 1..=6u32 {
                let r = nth_root_ceil(n, k);
                assert!(checked_pow_ge(r, k, n), "r^k >= n failed n={n} k={k}");
                if r > 1 {
                    assert!(!checked_pow_ge(r - 1, k, n), "(r-1)^k < n failed n={n} k={k}");
                }
            }
        }
    }
}
