//! Little-endian byte (de)serialization: record primitives plus the
//! versioned **snapshot** container.
//!
//! Two layers live here:
//!
//! * the record substrate — a growable [`Writer`], a bounds-checked
//!   [`Reader`], and the [`Tree`] record format — shared by the build
//!   spill file and every snapshot section;
//! * the snapshot container — [`SnapshotWriter`] / [`SnapshotReader`]:
//!   a magic + format-version header, streamed section payloads, and a
//!   trailing section table of `(id, offset, len, fnv1a64)` entries.
//!   A loader validates the header and per-section checksums before a
//!   single record is decoded, so corrupt or truncated files surface
//!   as [`io::Error`]s, never panics.
//!
//! Spill records stay versionless by design — a spill file never
//! outlives the process that wrote it. A snapshot is the opposite: it
//! exists to outlive its writer, hence the explicit format version
//! ([`SNAPSHOT_VERSION`], bumped on any layout change; readers reject
//! versions they do not know).

use crate::ids::Weight;
use crate::tree::Tree;
use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write as _};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Write a `u8`.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Write a `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write an `f64` (IEEE-754 bits).
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Write a `usize` as a `u64`.
    pub fn len(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Write raw bytes (no length prefix).
    pub fn bytes(&mut self, xs: &[u8]) {
        self.buf.extend_from_slice(xs);
    }

    /// Write a length-prefixed `u8` slice.
    pub fn slice_u8(&mut self, xs: &[u8]) {
        self.len(xs.len());
        self.bytes(xs);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.slice_u8(s.as_bytes());
    }

    /// Write a length-prefixed `u32` slice.
    pub fn slice_u32(&mut self, xs: &[u32]) {
        self.len(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    /// Write a length-prefixed `u64` slice.
    pub fn slice_u64(&mut self, xs: &[u64]) {
        self.len(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }

    /// Write a length-prefixed `(u32, u32)` pair slice (the shape of
    /// every directory arena in `treeroute`).
    pub fn slice_pairs(&mut self, xs: &[(u32, u32)]) {
        self.len(xs.len());
        for &(a, b) in xs {
            self.u32(a);
            self.u32(b);
        }
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over a byte slice written by [`Writer`].
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated wire record")
}

/// The standard malformed-record error.
pub fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        // lint:allow(panic-free-serve): end <= buf.len() checked two lines up; pos <= end by checked_add
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        // lint:allow(panic-free-serve): take(1) returned exactly one byte, so [0] is in bounds
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        // lint:allow(panic-free-serve): take(4) returns exactly 4 bytes — the try_into is infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        // lint:allow(panic-free-serve): take(8) returns exactly 8 bytes — the try_into is infallible
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` (IEEE-754 bits).
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u64` length, capped against the remaining byte count so a
    /// corrupt record cannot trigger a huge allocation.
    pub fn len(&mut self) -> io::Result<usize> {
        let x = self.u64()? as usize;
        if x > self.buf.len().saturating_sub(self.pos) {
            return Err(truncated());
        }
        Ok(x)
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a length-prefixed `u8` slice.
    pub fn slice_u8(&mut self) -> io::Result<Vec<u8>> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> io::Result<String> {
        let bytes = self.slice_u8()?;
        String::from_utf8(bytes).map_err(|_| invalid("non-UTF-8 string"))
    }

    /// Read a length-prefixed `u32` slice.
    pub fn slice_u32(&mut self) -> io::Result<Vec<u32>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` slice.
    pub fn slice_u64(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `(u32, u32)` pair slice.
    pub fn slice_pairs(&mut self) -> io::Result<Vec<(u32, u32)>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push((self.u32()?, self.u32()?));
        }
        Ok(out)
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize a [`Tree`] as its three defining arrays (graph ids,
/// parents, parent weights); children/depths are rebuilt on read by
/// [`Tree::try_from_parents`], which also re-validates the structure.
pub fn write_tree(w: &mut Writer, t: &Tree) {
    let n = t.size();
    w.slice_u32(t.graph_ids());
    let mut parents = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for ix in 0..n as u32 {
        parents.push(t.parent(ix).unwrap_or(u32::MAX));
        weights.push(t.parent_weight(ix));
    }
    w.slice_u32(&parents);
    w.slice_u64(&weights);
}

/// Inverse of [`write_tree`]. Structural corruption (bad parents,
/// cycles) is an [`io::Error`], not a panic.
pub fn read_tree(r: &mut Reader) -> io::Result<Tree> {
    let graph_ids = r.slice_u32()?;
    let parents = r.slice_u32()?;
    let weights: Vec<Weight> = r.slice_u64()?;
    if parents.len() != graph_ids.len() || weights.len() != graph_ids.len() || graph_ids.is_empty()
    {
        return Err(invalid("inconsistent tree record"));
    }
    Tree::try_from_parents(graph_ids, parents, weights).map_err(|msg| invalid(&msg))
}

// ---------------------------------------------------------------------
// FNV-1a 64 — the snapshot's per-section corruption guard.
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher (sections are streamed).
#[derive(Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

// ---------------------------------------------------------------------
// The snapshot container.
// ---------------------------------------------------------------------

/// Snapshot file magic: `AGMSNAP\0`.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AGMSNAP\0";
/// Current snapshot format version. Bump on any layout change; readers
/// reject unknown versions instead of misparsing.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header: magic (8) + version (4) + section-table offset (8).
const HEADER_LEN: u64 = 20;
/// Section-table entry: id (4) + offset (8) + len (8) + checksum (8).
const TABLE_ENTRY_LEN: u64 = 28;

#[derive(Clone, Copy, Debug)]
struct Section {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Streaming writer for a snapshot file: header, then each section's
/// payload in the order begun, then the section table; `finish`
/// back-patches the table offset into the header. Section payloads are
/// streamed (`write` may be called many times between `begin_section`
/// and `end_section`), so a multi-GiB section never has to exist in
/// memory at once.
pub struct SnapshotWriter {
    file: File,
    offset: u64,
    sections: Vec<Section>,
    open: Option<(u32, u64, Fnv64)>,
}

impl SnapshotWriter {
    /// Create (truncating) the snapshot at `path` and write the header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&SNAPSHOT_MAGIC)?;
        file.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        file.write_all(&0u64.to_le_bytes())?; // table offset, patched by finish
        Ok(SnapshotWriter { file, offset: HEADER_LEN, sections: Vec::new(), open: None })
    }

    /// Start a new section. Ids must be unique within a snapshot.
    pub fn begin_section(&mut self, id: u32) {
        assert!(self.open.is_none(), "previous section still open");
        assert!(self.sections.iter().all(|s| s.id != id), "duplicate section id {id}");
        self.open = Some((id, self.offset, Fnv64::new()));
    }

    /// Append payload bytes to the open section.
    pub fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        let (_, _, hash) = self.open.as_mut().expect("no open section");
        hash.update(bytes);
        self.file.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Close the open section, recording its table entry.
    pub fn end_section(&mut self) {
        let (id, start, hash) = self.open.take().expect("no open section");
        self.sections.push(Section {
            id,
            offset: start,
            len: self.offset - start,
            checksum: hash.digest(),
        });
    }

    /// Convenience: a whole section from one byte slice.
    pub fn section(&mut self, id: u32, bytes: &[u8]) -> io::Result<()> {
        self.begin_section(id);
        self.write(bytes)?;
        self.end_section();
        Ok(())
    }

    /// Write the section table, patch the header, and flush.
    pub fn finish(mut self) -> io::Result<()> {
        assert!(self.open.is_none(), "finish with a section still open");
        let table_offset = self.offset;
        let mut w = Writer::new();
        w.u32(self.sections.len() as u32);
        for s in &self.sections {
            w.u32(s.id);
            w.u64(s.offset);
            w.u64(s.len);
            w.u64(s.checksum);
        }
        self.file.write_all(&w.into_bytes())?;
        self.file.seek(SeekFrom::Start(HEADER_LEN - 8))?;
        self.file.write_all(&table_offset.to_le_bytes())?;
        self.file.flush()?;
        self.file.sync_all()
    }
}

/// Read side of a snapshot: validates magic, version, and section-table
/// bounds on open; [`SnapshotReader::section`] reads one section's
/// payload and verifies its checksum. Positional reads only — many
/// threads may share the reader, and a lazy store can keep the file
/// open and read section sub-ranges on demand.
#[derive(Debug)]
pub struct SnapshotReader {
    file: File,
    file_len: u64,
    sections: Vec<Section>,
}

impl SnapshotReader {
    /// Open and validate `path`'s header and section table.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN {
            return Err(invalid("snapshot shorter than its header"));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)?;
        // lint:allow(panic-free-serve): header is a fixed [u8; HEADER_LEN] stack array; constant ranges are in bounds
        if header[..8] != SNAPSHOT_MAGIC {
            return Err(invalid("bad snapshot magic"));
        }
        // lint:allow(panic-free-serve): constant 4-byte range of the fixed header array — try_into is infallible
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(invalid("unsupported snapshot format version"));
        }
        // lint:allow(panic-free-serve): constant 8-byte range of the fixed header array — try_into is infallible
        let table_offset = u64::from_le_bytes(header[12..20].try_into().unwrap());
        if table_offset < HEADER_LEN || table_offset + 4 > file_len {
            return Err(invalid("section table offset out of bounds"));
        }
        let mut count_buf = [0u8; 4];
        file.read_exact_at(&mut count_buf, table_offset)?;
        let count = u32::from_le_bytes(count_buf) as u64;
        let table_len = count.checked_mul(TABLE_ENTRY_LEN).ok_or_else(|| invalid("table size"))?;
        if table_offset + 4 + table_len > file_len {
            return Err(invalid("section table truncated"));
        }
        let mut table = vec![0u8; table_len as usize];
        file.read_exact_at(&mut table, table_offset + 4)?;
        let mut r = Reader::new(&table);
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let s = Section { id: r.u32()?, offset: r.u64()?, len: r.u64()?, checksum: r.u64()? };
            let end = s.offset.checked_add(s.len).ok_or_else(|| invalid("section bounds"))?;
            if s.offset < HEADER_LEN || end > table_offset {
                return Err(invalid("section out of bounds"));
            }
            if sections.iter().any(|t: &Section| t.id == s.id) {
                return Err(invalid("duplicate section id"));
            }
            sections.push(s);
        }
        Ok(SnapshotReader { file, file_len, sections })
    }

    /// Ids of every section, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|s| s.id).collect()
    }

    /// Does the snapshot carry section `id`?
    pub fn has(&self, id: u32) -> bool {
        self.sections.iter().any(|s| s.id == id)
    }

    fn entry(&self, id: u32) -> io::Result<&Section> {
        self.sections.iter().find(|s| s.id == id).ok_or_else(|| invalid("missing snapshot section"))
    }

    /// The `(offset, len)` of section `id`'s payload within the file —
    /// for lazy stores that read records straight out of the snapshot.
    pub fn section_range(&self, id: u32) -> io::Result<(u64, u64)> {
        self.entry(id).map(|s| (s.offset, s.len))
    }

    /// Read section `id`'s payload and verify its checksum.
    pub fn section(&self, id: u32) -> io::Result<Vec<u8>> {
        let s = *self.entry(id)?;
        let mut buf = vec![0u8; s.len as usize];
        self.file.read_exact_at(&mut buf, s.offset)?;
        if fnv1a64(&buf) != s.checksum {
            return Err(invalid("section checksum mismatch"));
        }
        Ok(buf)
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Surrender the underlying file handle (for lazy record stores
    /// that outlive the reader).
    pub fn into_file(self) -> File {
        self.file
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(2.5);
        w.str("phase");
        w.slice_u32(&[1, 2, 3]);
        w.slice_u64(&[]);
        w.slice_pairs(&[(9, 10)]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "phase");
        assert_eq!(r.slice_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.slice_u64().unwrap(), Vec::<u64>::new());
        assert_eq!(r.slice_pairs().unwrap(), vec![(9, 10)]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.slice_u32(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        assert!(r.slice_u32().is_err());
        // A corrupt length larger than the record must not allocate.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len().is_err());
    }

    #[test]
    fn tree_roundtrip() {
        let t = Tree::from_parents(vec![10, 11, 12, 13], vec![u32::MAX, 0, 0, 1], vec![0, 2, 1, 5]);
        let mut w = Writer::new();
        write_tree(&mut w, &t);
        let bytes = w.into_bytes();
        let t2 = read_tree(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(t2.graph_ids(), t.graph_ids());
        for ix in 0..t.size() as u32 {
            assert_eq!(t2.parent(ix), t.parent(ix));
            assert_eq!(t2.parent_weight(ix), t.parent_weight(ix));
            assert_eq!(t2.depth(ix), t.depth(ix));
            assert_eq!(t2.children(ix), t.children(ix));
        }
    }

    #[test]
    fn corrupt_tree_is_an_error_not_a_panic() {
        // A cycle (1 <-> 2) must come back as InvalidData.
        let mut w = Writer::new();
        w.slice_u32(&[0, 1, 2]); // graph ids
        w.slice_u32(&[u32::MAX, 2, 1]); // parents: cycle
        w.slice_u64(&[0, 1, 1]);
        let bytes = w.into_bytes();
        assert!(read_tree(&mut Reader::new(&bytes)).is_err());
        // Parent index out of range.
        let mut w = Writer::new();
        w.slice_u32(&[0, 1]);
        w.slice_u32(&[u32::MAX, 9]);
        w.slice_u64(&[0, 1]);
        let bytes = w.into_bytes();
        assert!(read_tree(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Incremental == one-shot.
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a64(b"foobar"));
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("agm-wire-test-{}-{tag}.snap", std::process::id()))
    }

    #[test]
    fn snapshot_roundtrip() {
        let path = temp_path("roundtrip");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.section(7, b"hello").unwrap();
        w.begin_section(9);
        w.write(b"wor").unwrap();
        w.write(b"ld").unwrap();
        w.end_section();
        w.section(1, b"").unwrap();
        w.finish().unwrap();

        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.section_ids(), vec![7, 9, 1]);
        assert!(r.has(9) && !r.has(2));
        assert_eq!(r.section(7).unwrap(), b"hello");
        assert_eq!(r.section(9).unwrap(), b"world");
        assert_eq!(r.section(1).unwrap(), b"");
        assert!(r.section(2).is_err());
        let (off, len) = r.section_range(9).unwrap();
        assert_eq!(len, 5);
        assert!(off >= 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let path = temp_path("corrupt");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.section(3, b"some payload bytes").unwrap();
        w.finish().unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncation at every prefix length: open or section read must
        // error, never panic.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            if let Ok(r) = SnapshotReader::open(&path) {
                assert!(r.section(3).is_err(), "cut={cut}");
            }
        }
        // Single-byte flips: header flips fail open; payload flips fail
        // the checksum; table flips fail bounds or the checksum.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            if let Ok(r) = SnapshotReader::open(&path) {
                if let Ok(payload) = r.section(3) {
                    // A flip that still reads back must be confined to
                    // unreachable bytes — impossible here, since every
                    // byte of this file is load-bearing.
                    panic!("flip at {i} went unnoticed: {payload:?}")
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let path = temp_path("version");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.section(1, b"x").unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = SNAPSHOT_VERSION as u8 + 1;
        std::fs::write(&path, &bytes).unwrap();
        let err = SnapshotReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
