//! Minimal little-endian byte (de)serialization for spill files.
//!
//! The scheme build can stream completed per-center tree state to disk
//! instead of holding every tree in memory (see `core`'s spill store).
//! This module is the shared wire substrate: a growable [`Writer`], a
//! bounds-checked [`Reader`], and the [`Tree`] record format. Records
//! are versionless by design — a spill file never outlives the process
//! that wrote it.

use crate::ids::Weight;
use crate::tree::Tree;
use std::io;

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Write a `u8`.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Write a `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn len(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Write a length-prefixed `u32` slice.
    pub fn slice_u32(&mut self, xs: &[u32]) {
        self.len(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    /// Write a length-prefixed `u64` slice.
    pub fn slice_u64(&mut self, xs: &[u64]) {
        self.len(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over a byte slice written by [`Writer`].
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated wire record")
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` length, capped against the remaining byte count so a
    /// corrupt record cannot trigger a huge allocation.
    pub fn len(&mut self) -> io::Result<usize> {
        let x = self.u64()? as usize;
        if x > self.buf.len().saturating_sub(self.pos) {
            return Err(truncated());
        }
        Ok(x)
    }

    /// Read a length-prefixed `u32` slice.
    pub fn slice_u32(&mut self) -> io::Result<Vec<u32>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` slice.
    pub fn slice_u64(&mut self) -> io::Result<Vec<u64>> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize a [`Tree`] as its three defining arrays (graph ids,
/// parents, parent weights); children/depths are rebuilt on read by
/// [`Tree::from_parents`], which also re-validates the structure.
pub fn write_tree(w: &mut Writer, t: &Tree) {
    let n = t.size();
    w.slice_u32(t.graph_ids());
    let mut parents = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for ix in 0..n as u32 {
        parents.push(t.parent(ix).unwrap_or(u32::MAX));
        weights.push(t.parent_weight(ix));
    }
    w.slice_u32(&parents);
    w.slice_u64(&weights);
}

/// Inverse of [`write_tree`].
pub fn read_tree(r: &mut Reader) -> io::Result<Tree> {
    let graph_ids = r.slice_u32()?;
    let parents = r.slice_u32()?;
    let weights: Vec<Weight> = r.slice_u64()?;
    if parents.len() != graph_ids.len() || weights.len() != graph_ids.len() || graph_ids.is_empty()
    {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "inconsistent tree record"));
    }
    Ok(Tree::from_parents(graph_ids, parents, weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.slice_u32(&[1, 2, 3]);
        w.slice_u64(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.slice_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.slice_u64().unwrap(), Vec::<u64>::new());
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.slice_u32(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        assert!(r.slice_u32().is_err());
        // A corrupt length larger than the record must not allocate.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len().is_err());
    }

    #[test]
    fn tree_roundtrip() {
        let t = Tree::from_parents(vec![10, 11, 12, 13], vec![u32::MAX, 0, 0, 1], vec![0, 2, 1, 5]);
        let mut w = Writer::new();
        write_tree(&mut w, &t);
        let bytes = w.into_bytes();
        let t2 = read_tree(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(t2.graph_ids(), t.graph_ids());
        for ix in 0..t.size() as u32 {
            assert_eq!(t2.parent(ix), t.parent(ix));
            assert_eq!(t2.parent_weight(ix), t.parent_weight(ix));
            assert_eq!(t2.depth(ix), t.depth(ix));
            assert_eq!(t2.children(ix), t.children(ix));
        }
    }
}
