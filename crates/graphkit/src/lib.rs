#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # graphkit — weighted-graph substrate
//!
//! The foundation every other crate in this workspace builds on:
//!
//! * [`Graph`] / [`GraphBuilder`] — frozen CSR undirected weighted graphs
//!   with deterministic port numbering;
//! * [`mod@dijkstra`] — single-source shortest paths, bounded balls
//!   `B(u, r)`, and the paper's `N(u, m, Z)` m-closest primitive with
//!   `(distance, id)` tie-breaking;
//! * [`Tree`] — rooted weighted trees over graph-node subsets (landmark
//!   shortest-path trees, cover trees);
//! * [`mod@delta`] — churn primitives: [`GraphDelta`] batches applied onto
//!   a frozen graph, plus the exact dirty-set / proximity analysis that
//!   incremental repair builds on;
//! * [`metrics`] — parallel APSP, diameter, aspect ratio Δ;
//! * [`truth`] — [`truth::OnDemandTruth`], exact distances from lazy
//!   per-source Dijkstra (bounded row cache + parallel pair prefetch)
//!   for workloads where the Θ(n²) matrix is unaffordable;
//! * [`gen`] — synthetic workload families, including the
//!   exponential-weight graphs (Δ ≈ 2^40) that the scale-free
//!   experiments require;
//! * [`bits`] — the [`bits::StorageCost`] audit trait behind every
//!   "bits per node" number in EXPERIMENTS.md.
//!
//! ```
//! use graphkit::{gen, metrics, NodeId};
//!
//! let g = gen::Family::Grid.generate(64, 1);
//! let m = metrics::apsp(&g);
//! assert!(m.connected());
//! let sp = graphkit::dijkstra::dijkstra(&g, NodeId(0));
//! assert_eq!(sp.d(NodeId(0)), 0);
//! ```

pub mod bits;
pub mod delta;
pub mod digraph;
pub mod dijkstra;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod io;
pub mod metrics;
pub mod subgraph;
pub mod tree;
pub mod truth;
pub mod wire;

pub use bits::StorageCost;
pub use delta::{apply_deltas, delta_impact, DeltaImpact, GraphDelta};
pub use digraph::{DiGraph, DiGraphBuilder};
pub use dijkstra::{
    ball, ball_size, dijkstra, dijkstra_bounded, m_closest_in_set, DijkstraScratch, Sssp,
};
pub use graph::{graph_from_edges, Graph, GraphBuilder};
pub use ids::{cost_add, octave_radius, Cost, NodeId, Weight, INFINITY};
pub use metrics::{apsp, diameter_matrix_free, DistMatrix};
pub use subgraph::{components, induced_subgraph, Subgraph};
pub use tree::{Tree, TreeIx, TreeScratch};
pub use truth::OnDemandTruth;
