//! Rooted weighted trees over subsets of graph nodes.
//!
//! Every tree in this workspace — landmark shortest-path trees, cover
//! trees — spans a subset of a host graph's nodes, and every tree edge is
//! a host-graph edge. [`Tree`] stores the tree in its own compact index
//! space (`0..size`) and keeps the mapping back to host node ids.

use crate::dijkstra::Sssp;
use crate::graph::Graph;
use crate::ids::{Cost, NodeId, Weight};

/// Index of a node *within a tree* (not a graph id).
pub type TreeIx = u32;

/// Reusable workspace for [`Tree::from_dist_parents_with`]: an
/// epoch-stamped dense graph-id → tree-index map plus the closure
/// buffer. Extracting many small trees (one per center) with one
/// scratch replaces a fresh `HashMap` per tree with two O(n) arrays
/// allocated once per worker; per-tree work stays O(tree size).
pub struct TreeScratch {
    ix: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    closed: Vec<NodeId>,
}

impl TreeScratch {
    /// Scratch for a host graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        TreeScratch { ix: vec![0; n], stamp: vec![0; n], epoch: 0, closed: Vec::new() }
    }

    fn begin(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.closed.clear();
        self.epoch
    }
}

/// A rooted weighted tree over a subset of graph nodes.
#[derive(Clone, Debug)]
pub struct Tree {
    /// Host-graph id of each tree node; `graph_ids\[0\]` is the root.
    graph_ids: Vec<u32>,
    /// Parent tree-index of each node (`u32::MAX` for the root).
    parents: Vec<TreeIx>,
    /// Weight of the edge to the parent (0 for the root).
    parent_weights: Vec<Weight>,
    /// Children adjacency, CSR-style.
    child_offsets: Vec<u32>,
    children: Vec<TreeIx>,
    /// Distance from the root along tree edges.
    depths: Vec<Cost>,
}

impl Tree {
    /// Build a tree from parallel arrays. `graph_ids\[0\]` must be the root
    /// and `parents\[0\] == u32::MAX`; every other parent index must be a
    /// valid tree index appearing *before* use is not required (any order
    /// accepted), but the parent relation must be acyclic.
    pub fn from_parents(
        graph_ids: Vec<u32>,
        parents: Vec<TreeIx>,
        parent_weights: Vec<Weight>,
    ) -> Self {
        match Self::try_from_parents(graph_ids, parents, parent_weights) {
            Ok(t) => t,
            // lint:allow(panic-free-serve): infallible wrapper over try_from_parents for internally-generated arrays; decode paths call try_from_parents directly
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Fallible [`Tree::from_parents`] for data read from disk: structural
    /// corruption (length mismatch, bad parent index, cycle) is an `Err`
    /// carrying the same message [`Tree::from_parents`] panics with, and
    /// depth accumulation saturates so corrupt weights cannot overflow.
    pub fn try_from_parents(
        graph_ids: Vec<u32>,
        parents: Vec<TreeIx>,
        parent_weights: Vec<Weight>,
    ) -> Result<Self, String> {
        let n = graph_ids.len();
        if parents.len() != n || parent_weights.len() != n {
            return Err("tree arrays have mismatched lengths".to_string());
        }
        if n == 0 {
            return Err("tree must be non-empty".to_string());
        }
        if parents[0] != u32::MAX {
            return Err("node 0 must be the root".to_string());
        }
        // Children CSR.
        let mut deg = vec![0u32; n];
        for (i, &p) in parents.iter().enumerate() {
            if i != 0 {
                if p == u32::MAX || (p as usize) >= n {
                    return Err(format!("bad parent for node {i}"));
                }
                deg[p as usize] += 1;
            }
        }
        let mut child_offsets = vec![0u32; n + 1];
        for i in 0..n {
            child_offsets[i + 1] = child_offsets[i] + deg[i];
        }
        let mut children = vec![0 as TreeIx; child_offsets[n] as usize];
        let mut cursor: Vec<u32> = child_offsets[..n].to_vec();
        for (i, &p) in parents.iter().enumerate() {
            if i != 0 {
                children[cursor[p as usize] as usize] = i as TreeIx;
                cursor[p as usize] += 1;
            }
        }
        // Depths via BFS from the root (children arrays make this easy);
        // also validates acyclicity by counting visits.
        let mut depths = vec![Cost::MAX; n];
        depths[0] = 0;
        let mut stack = vec![0 as TreeIx];
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            let (s, e) =
                (child_offsets[u as usize] as usize, child_offsets[u as usize + 1] as usize);
            for &c in &children[s..e] {
                depths[c as usize] = depths[u as usize].saturating_add(parent_weights[c as usize]);
                visited += 1;
                stack.push(c);
            }
        }
        if visited != n {
            return Err("parent relation is not a connected tree".to_string());
        }
        Ok(Tree { graph_ids, parents, parent_weights, child_offsets, children, depths })
    }

    /// Extract the shortest-path tree of an [`Sssp`] run restricted to a
    /// set of member nodes. Every member must be reachable and the set
    /// must be *ancestor-closed enough*: for each member, its whole
    /// shortest path to the source is added (so the result is connected).
    pub fn from_sssp(g: &Graph, sp: &Sssp, members: impl IntoIterator<Item = NodeId>) -> Self {
        Self::from_dist_parents(g, sp.source, &sp.dist, &sp.parent, members)
    }

    /// [`Tree::from_sssp`] over raw distance/parent slices — the form a
    /// [`crate::dijkstra::DijkstraScratch`] run exposes, so matrix-free
    /// construction can extract many small trees without allocating an
    /// [`Sssp`] (or any O(n) marker) per tree. Work and memory are
    /// O(tree size), not O(n).
    pub fn from_dist_parents(
        g: &Graph,
        source: NodeId,
        dist: &[Cost],
        parent: &[u32],
        members: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        use std::collections::HashMap;
        let mut tree_ix: HashMap<u32, u32> = HashMap::new();
        // Close under parents.
        let mut closed: Vec<NodeId> = Vec::new();
        for v in members {
            assert!(dist[v.idx()] != Cost::MAX, "member {v:?} unreachable from {source:?}");
            let mut cur = v;
            while !tree_ix.contains_key(&cur.0) {
                tree_ix.insert(cur.0, u32::MAX);
                closed.push(cur);
                let p = parent[cur.idx()];
                if p == u32::MAX {
                    break;
                }
                cur = NodeId(p);
            }
        }
        tree_ix.entry(source.0).or_insert_with(|| {
            closed.push(source);
            u32::MAX
        });
        // Order: root first, then by (dist, id) for determinism.
        closed.sort_unstable_by_key(|v| (dist[v.idx()], v.0));
        debug_assert_eq!(closed[0], source);
        for (i, v) in closed.iter().enumerate() {
            tree_ix.insert(v.0, i as u32);
        }
        let graph_ids: Vec<u32> = closed.iter().map(|v| v.0).collect();
        let mut parents = Vec::with_capacity(closed.len());
        let mut parent_weights = Vec::with_capacity(closed.len());
        for &v in &closed {
            let p = parent[v.idx()];
            if p != u32::MAX && v != source {
                parents.push(tree_ix[&p]);
                parent_weights
                    .push(g.edge_weight(NodeId(p), v).expect("SPT edge must be a graph edge"));
            } else {
                parents.push(u32::MAX);
                parent_weights.push(0);
            }
        }
        Tree::from_parents(graph_ids, parents, parent_weights)
    }

    /// [`Tree::from_dist_parents`] against a reusable [`TreeScratch`]
    /// instead of a per-call hash map. Produces bit-identical trees
    /// (same `(dist, id)` node order, same parents); only the lookup
    /// structure differs.
    pub fn from_dist_parents_with(
        scratch: &mut TreeScratch,
        g: &Graph,
        source: NodeId,
        dist: &[Cost],
        parent: &[u32],
        members: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let ep = scratch.begin();
        let TreeScratch { ix, stamp, closed, .. } = scratch;
        for v in members {
            assert!(dist[v.idx()] != Cost::MAX, "member {v:?} unreachable from {source:?}");
            let mut cur = v;
            while stamp[cur.idx()] != ep {
                stamp[cur.idx()] = ep;
                closed.push(cur);
                let p = parent[cur.idx()];
                if p == u32::MAX {
                    break;
                }
                cur = NodeId(p);
            }
        }
        if stamp[source.idx()] != ep {
            stamp[source.idx()] = ep;
            closed.push(source);
        }
        // Order: root first, then by (dist, id) for determinism.
        closed.sort_unstable_by_key(|v| (dist[v.idx()], v.0));
        debug_assert_eq!(closed[0], source);
        for (i, v) in closed.iter().enumerate() {
            ix[v.idx()] = i as u32;
        }
        let graph_ids: Vec<u32> = closed.iter().map(|v| v.0).collect();
        let mut parents = Vec::with_capacity(closed.len());
        let mut parent_weights = Vec::with_capacity(closed.len());
        for &v in closed.iter() {
            let p = parent[v.idx()];
            if p != u32::MAX && v != source {
                parents.push(ix[p as usize]);
                // lint:allow(panic-free-serve): p/v is a parent edge of the dijkstra run one call above on this same graph
                let w = g.edge_weight(NodeId(p), v).expect("SPT edge must be a graph edge");
                parent_weights.push(w);
            } else {
                parents.push(u32::MAX);
                parent_weights.push(0);
            }
        }
        Tree::from_parents(graph_ids, parents, parent_weights)
    }

    /// Number of nodes in the tree.
    #[inline(always)]
    pub fn size(&self) -> usize {
        self.graph_ids.len()
    }

    /// Tree index of the root (always 0).
    #[inline(always)]
    pub fn root(&self) -> TreeIx {
        0
    }

    /// Host-graph id of tree node `t`.
    #[inline(always)]
    // lint:allow-fn(panic-free-serve): validate-then-index — every TreeIx handed out by this tree is < size(); decode checks lengths
    pub fn graph_id(&self, t: TreeIx) -> NodeId {
        NodeId(self.graph_ids[t as usize])
    }

    /// All host-graph ids, indexed by tree index.
    pub fn graph_ids(&self) -> &[u32] {
        &self.graph_ids
    }

    /// Tree index of graph node `v`, linear scan (use [`Tree::index_map`]
    /// for bulk lookups).
    pub fn find(&self, v: NodeId) -> Option<TreeIx> {
        self.graph_ids.iter().position(|&g| g == v.0).map(|i| i as u32)
    }

    /// Dense map graph-id -> tree index (`u32::MAX` when absent).
    pub fn index_map(&self, graph_n: usize) -> Vec<u32> {
        let mut map = vec![u32::MAX; graph_n];
        for (i, &gid) in self.graph_ids.iter().enumerate() {
            map[gid as usize] = i as u32;
        }
        map
    }

    /// Parent of `t`, if not the root.
    #[inline(always)]
    pub fn parent(&self, t: TreeIx) -> Option<TreeIx> {
        let p = self.parents[t as usize];
        if p == u32::MAX {
            None
        } else {
            Some(p)
        }
    }

    /// Weight of the edge from `t` to its parent.
    #[inline(always)]
    // lint:allow-fn(panic-free-serve): validate-then-index — every TreeIx handed out by this tree is < size(); decode checks lengths
    pub fn parent_weight(&self, t: TreeIx) -> Weight {
        self.parent_weights[t as usize]
    }

    /// Children of `t`.
    #[inline(always)]
    pub fn children(&self, t: TreeIx) -> &[TreeIx] {
        let (s, e) =
            (self.child_offsets[t as usize] as usize, self.child_offsets[t as usize + 1] as usize);
        &self.children[s..e]
    }

    /// Distance from the root along tree edges.
    #[inline(always)]
    pub fn depth(&self, t: TreeIx) -> Cost {
        self.depths[t as usize]
    }

    /// Tree radius: max depth over all nodes.
    pub fn radius(&self) -> Cost {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Heaviest edge in the tree.
    pub fn max_edge(&self) -> Weight {
        self.parent_weights.iter().copied().max().unwrap_or(0)
    }

    /// Distance between two tree nodes along tree edges (via LCA walk;
    /// O(depth)). Used by tests and analysis, not by routing.
    pub fn tree_distance(&self, mut a: TreeIx, mut b: TreeIx) -> Cost {
        let mut cost = 0;
        while a != b {
            let (da, db) = (self.depths[a as usize], self.depths[b as usize]);
            if da >= db {
                cost += self.parent_weights[a as usize];
                a = self.parents[a as usize];
            } else {
                cost += self.parent_weights[b as usize];
                b = self.parents[b as usize];
            }
        }
        cost
    }

    /// Path between two tree nodes along tree edges, inclusive.
    pub fn tree_path(&self, a: TreeIx, b: TreeIx) -> Vec<TreeIx> {
        let mut up_a = vec![a];
        let mut up_b = vec![b];
        let (mut x, mut y) = (a, b);
        while x != y {
            let (dx, dy) = (self.depths[x as usize], self.depths[y as usize]);
            if dx >= dy {
                x = self.parents[x as usize];
                up_a.push(x);
            } else {
                y = self.parents[y as usize];
                up_b.push(y);
            }
        }
        up_b.pop(); // drop duplicate LCA
        up_a.extend(up_b.into_iter().rev());
        up_a
    }

    /// Nodes ordered by (depth, graph id): the paper's "sorted by
    /// increasing distance from the root" order used by Lemma 4 naming.
    pub fn nodes_by_depth(&self) -> Vec<TreeIx> {
        let mut order: Vec<TreeIx> = (0..self.size() as u32).collect();
        order.sort_unstable_by_key(|&t| (self.depths[t as usize], self.graph_ids[t as usize]));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::graph::graph_from_edges;

    fn sample_tree() -> Tree {
        // root 0; children 1 (w2), 2 (w1); 1's child 3 (w5).
        Tree::from_parents(vec![10, 11, 12, 13], vec![u32::MAX, 0, 0, 1], vec![0, 2, 1, 5])
    }

    #[test]
    fn structure() {
        let t = sample_tree();
        assert_eq!(t.size(), 4);
        assert_eq!(t.root(), 0);
        assert_eq!(t.graph_id(3), NodeId(13));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.depth(3), 7);
        assert_eq!(t.radius(), 7);
        assert_eq!(t.max_edge(), 5);
    }

    #[test]
    fn tree_distance_and_path() {
        let t = sample_tree();
        assert_eq!(t.tree_distance(3, 2), 5 + 2 + 1);
        assert_eq!(t.tree_distance(1, 3), 5);
        assert_eq!(t.tree_distance(2, 2), 0);
        assert_eq!(t.tree_path(3, 2), vec![3, 1, 0, 2]);
        assert_eq!(t.tree_path(0, 3), vec![0, 1, 3]);
    }

    #[test]
    fn find_and_index_map() {
        let t = sample_tree();
        assert_eq!(t.find(NodeId(12)), Some(2));
        assert_eq!(t.find(NodeId(99)), None);
        let map = t.index_map(20);
        assert_eq!(map[11], 1);
        assert_eq!(map[5], u32::MAX);
    }

    #[test]
    fn from_sssp_spans_members() {
        let g = graph_from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 4, 10), (4, 5, 1)]);
        let sp = dijkstra(&g, NodeId(0));
        let t = Tree::from_sssp(&g, &sp, [NodeId(3), NodeId(5)]);
        // Must contain all ancestors: 0,1,2,3,4,5.
        assert_eq!(t.size(), 6);
        assert_eq!(t.graph_id(t.root()), NodeId(0));
        // Depth equals graph distance for SPT members.
        for ti in 0..t.size() as u32 {
            assert_eq!(t.depth(ti), sp.d(t.graph_id(ti)));
        }
    }

    #[test]
    fn from_sssp_subset_only() {
        let g = graph_from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let sp = dijkstra(&g, NodeId(0));
        let t = Tree::from_sssp(&g, &sp, [NodeId(1)]);
        assert_eq!(t.size(), 2);
        assert_eq!(t.find(NodeId(3)), None);
    }

    #[test]
    fn scratch_extraction_matches_hashmap_path() {
        use crate::gen::Family;
        for fam in Family::ALL {
            let g = fam.generate(80, 0x7ACE);
            let sp = dijkstra(&g, NodeId(0));
            let members: Vec<NodeId> =
                g.nodes().filter(|v| sp.d(*v) != Cost::MAX && v.0 % 3 == 0).collect();
            let a = Tree::from_dist_parents(&g, NodeId(0), &sp.dist, &sp.parent, members.clone());
            let mut scratch = TreeScratch::new(g.n());
            // Run twice through the same scratch to exercise epoch reuse.
            for _ in 0..2 {
                let b = Tree::from_dist_parents_with(
                    &mut scratch,
                    &g,
                    NodeId(0),
                    &sp.dist,
                    &sp.parent,
                    members.clone(),
                );
                assert_eq!(a.graph_ids(), b.graph_ids(), "{}", fam.label());
                for t in 0..a.size() as u32 {
                    assert_eq!(a.parent(t), b.parent(t));
                    assert_eq!(a.parent_weight(t), b.parent_weight(t));
                }
            }
        }
    }

    #[test]
    fn nodes_by_depth_order() {
        let t = sample_tree();
        let order = t.nodes_by_depth();
        assert_eq!(order[0], 0);
        let depths: Vec<Cost> = order.iter().map(|&x| t.depth(x)).collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(depths, sorted);
    }

    #[test]
    #[should_panic(expected = "not a connected tree")]
    fn detects_cycle() {
        // 1 and 2 point at each other (and node 0 is a lonely root).
        let _ = Tree::from_parents(vec![0, 1, 2], vec![u32::MAX, 2, 1], vec![0, 1, 1]);
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::from_parents(vec![7], vec![u32::MAX], vec![0]);
        assert_eq!(t.size(), 1);
        assert_eq!(t.radius(), 0);
        assert_eq!(t.tree_distance(0, 0), 0);
    }
}
