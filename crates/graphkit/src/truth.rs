//! On-demand ground-truth distances: lazy per-source Dijkstra behind a
//! bounded row cache, plus a parallel prefetch pass over a pair
//! workload.
//!
//! Dense APSP ([`crate::metrics::apsp`]) is exact but Θ(n²) memory — at
//! n = 10⁵ the matrix alone is 80 GB, so every experiment that
//! evaluates stretch through a [`crate::DistMatrix`] is capped at
//! ~10⁴ nodes. [`OnDemandTruth`] serves the same exact distances from
//! single-source Dijkstra runs performed only for the sources that are
//! actually queried:
//!
//! * [`OnDemandTruth::prefetch_pairs`] groups a pair workload by source,
//!   runs one Dijkstra per distinct source (fanned across threads with
//!   `crossbeam::scope`), and pins exactly the `(s, t)` entries the
//!   workload needs — O(pairs) memory, never O(n²);
//! * [`OnDemandTruth::d`] answers pinned queries from the pair table
//!   and anything else from a bounded FIFO cache of full distance rows,
//!   recomputing a row's Dijkstra on a miss.
//!
//! Every answer is an exact shortest-path distance, so evaluation
//! results are bit-identical to the dense-matrix path.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::dijkstra::dijkstra;
use crate::graph::Graph;
use crate::ids::{Cost, NodeId};

/// Default bound on cached full rows (see [`OnDemandTruth::with_capacity`]).
const DEFAULT_ROW_CAPACITY: usize = 32;

/// Exact shortest-path distances computed lazily, one source at a time.
pub struct OnDemandTruth<'g> {
    g: &'g Graph,
    capacity: usize,
    /// Entries pinned by [`Self::prefetch_pairs`]: `(s << 32 | t)` → d(s, t).
    pinned: HashMap<u64, Cost>,
    cache: Mutex<RowCache>,
    rows_computed: AtomicUsize,
}

/// Bounded FIFO cache of full distance rows.
struct RowCache {
    rows: HashMap<u32, Arc<Vec<Cost>>>,
    order: VecDeque<u32>,
}

impl RowCache {
    fn get(&self, s: u32) -> Option<Arc<Vec<Cost>>> {
        self.rows.get(&s).cloned()
    }

    fn insert(&mut self, s: u32, row: Arc<Vec<Cost>>, capacity: usize) {
        if self.rows.contains_key(&s) {
            return; // another thread raced us to the same row
        }
        self.rows.insert(s, row);
        self.order.push_back(s);
        while self.rows.len() > capacity {
            let evict = self.order.pop_front().expect("order tracks rows");
            self.rows.remove(&evict);
        }
    }
}

impl<'g> OnDemandTruth<'g> {
    /// Truth over `g` with the default row-cache bound.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_capacity(g, DEFAULT_ROW_CAPACITY)
    }

    /// Truth over `g` caching at most `rows` full distance rows
    /// (each row is `n` costs — size the bound to the memory budget,
    /// not the workload; prefetched pairs bypass the row cache).
    pub fn with_capacity(g: &'g Graph, rows: usize) -> Self {
        OnDemandTruth {
            g,
            capacity: rows.max(1),
            pinned: HashMap::new(),
            cache: Mutex::new(RowCache { rows: HashMap::new(), order: VecDeque::new() }),
            rows_computed: AtomicUsize::new(0),
        }
    }

    #[inline(always)]
    fn key(s: u32, t: u32) -> u64 {
        (s as u64) << 32 | t as u64
    }

    /// Exact distance from `s` to `t` ([`crate::INFINITY`] if
    /// unreachable). Pinned prefetch entries are O(1); otherwise the
    /// row cache answers, running one Dijkstra on a miss.
    pub fn d(&self, s: NodeId, t: NodeId) -> Cost {
        if s == t {
            return 0;
        }
        if let Some(&c) = self.pinned.get(&Self::key(s.0, t.0)) {
            return c;
        }
        self.row(s)[t.idx()]
    }

    /// Full distance row from `s` (computing and caching it on a miss).
    pub fn row(&self, s: NodeId) -> Arc<Vec<Cost>> {
        if let Some(row) = self.cache.lock().expect("row cache poisoned").get(s.0) {
            return row;
        }
        // Dijkstra outside the lock: concurrent misses on different
        // sources must not serialize (duplicated work on the *same*
        // source is benign — insert dedups).
        let sp = dijkstra(self.g, s);
        self.rows_computed.fetch_add(1, Ordering::Relaxed);
        let row = Arc::new(sp.dist);
        self.cache.lock().expect("row cache poisoned").insert(s.0, row.clone(), self.capacity);
        row
    }

    /// Pin `d(s, t)` for every pair in `pairs`: one Dijkstra per
    /// distinct source, fanned across `threads` workers (0 = available
    /// parallelism). After this, [`Self::d`] on any prefetched pair is
    /// a hash lookup — the evaluation hot path never takes the cache
    /// lock. Memory is O(|pairs|), independent of n.
    pub fn prefetch_pairs(&mut self, pairs: &[(NodeId, NodeId)], threads: usize) {
        let mut by_src: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(s, t) in pairs {
            if s != t && !self.pinned.contains_key(&Self::key(s.0, t.0)) {
                by_src.entry(s.0).or_default().push(t.0);
            }
        }
        if by_src.is_empty() {
            return;
        }
        let mut srcs: Vec<u32> = by_src.keys().copied().collect();
        srcs.sort_unstable();
        let threads = resolve_threads(threads);
        let chunk = srcs.len().div_ceil(threads);
        let mut found: Vec<Vec<(u64, Cost)>> = vec![Vec::new(); srcs.len().div_ceil(chunk)];
        let g = self.g;
        let by_src = &by_src;
        crossbeam::scope(|scope| {
            for (slot, chunk_srcs) in found.iter_mut().zip(srcs.chunks(chunk)) {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    for &s in chunk_srcs {
                        let sp = dijkstra(g, NodeId(s));
                        for &t in &by_src[&s] {
                            out.push((Self::key(s, t), sp.dist[t as usize]));
                        }
                    }
                    *slot = out;
                });
            }
        })
        .expect("prefetch worker panicked");
        self.rows_computed.fetch_add(srcs.len(), Ordering::Relaxed);
        for shard in found {
            self.pinned.extend(shard);
        }
    }

    /// Number of prefetched `(s, t)` entries held.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Total Dijkstra runs so far (prefetch + cache misses) — the
    /// quantity scale experiments budget against.
    pub fn rows_computed(&self) -> usize {
        self.rows_computed.load(Ordering::Relaxed)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }
}

/// 0 → available parallelism; otherwise the requested worker count.
/// The shared convention for every `threads` parameter in this
/// workspace (prefetch, parallel evaluation).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;
    use crate::metrics::apsp;

    #[test]
    fn matches_dense_matrix_everywhere() {
        let g = Family::Geometric.generate(90, 0xA1);
        let d = apsp(&g);
        let truth = OnDemandTruth::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(truth.d(u, v), d.d(u, v), "{u}->{v}");
            }
        }
    }

    #[test]
    fn prefetch_pins_exactly_the_workload() {
        let g = Family::ErdosRenyi.generate(70, 0xA2);
        let d = apsp(&g);
        let pairs: Vec<(NodeId, NodeId)> =
            (0..60u32).map(|i| (NodeId(i), NodeId((i + 7) % 70))).collect();
        let mut truth = OnDemandTruth::with_capacity(&g, 4);
        truth.prefetch_pairs(&pairs, 3);
        assert_eq!(truth.pinned_len(), pairs.len());
        let after_prefetch = truth.rows_computed();
        assert_eq!(after_prefetch, 60, "one Dijkstra per distinct source");
        for &(s, t) in &pairs {
            assert_eq!(truth.d(s, t), d.d(s, t));
        }
        // Pinned answers must not have touched the row cache.
        assert_eq!(truth.rows_computed(), after_prefetch);
    }

    #[test]
    fn row_cache_is_bounded_and_refills() {
        let g = Family::Ring.generate(40, 0xA3);
        let truth = OnDemandTruth::with_capacity(&g, 2);
        // 3 distinct sources through a 2-row cache: the first is evicted.
        let a = truth.d(NodeId(0), NodeId(5));
        truth.d(NodeId(1), NodeId(5));
        truth.d(NodeId(2), NodeId(5));
        assert_eq!(truth.rows_computed(), 3);
        // Re-query source 0: must recompute (evicted), same answer.
        assert_eq!(truth.d(NodeId(0), NodeId(5)), a);
        assert_eq!(truth.rows_computed(), 4);
        // Source 0 is now cached again: no extra Dijkstra.
        truth.d(NodeId(0), NodeId(6));
        assert_eq!(truth.rows_computed(), 4);
    }

    #[test]
    fn self_distance_is_zero_without_work() {
        let g = Family::Grid.generate(25, 0xA4);
        let truth = OnDemandTruth::new(&g);
        assert_eq!(truth.d(NodeId(3), NodeId(3)), 0);
        assert_eq!(truth.rows_computed(), 0);
    }

    #[test]
    fn empty_prefetch_is_a_noop() {
        let g = Family::Grid.generate(25, 0xA5);
        let mut truth = OnDemandTruth::new(&g);
        truth.prefetch_pairs(&[], 0);
        truth.prefetch_pairs(&[(NodeId(1), NodeId(1))], 0);
        assert_eq!(truth.pinned_len(), 0);
        assert_eq!(truth.rows_computed(), 0);
    }
}
