//! Whole-graph metric computations: parallel all-pairs shortest paths,
//! aspect ratio, diameter.
//!
//! APSP fans rows out across threads with `crossbeam::scope`; each thread
//! writes a disjoint chunk of the distance matrix, so no synchronization
//! is needed on the hot path (see the workspace HPC notes in DESIGN.md).

use crate::dijkstra::dijkstra;
use crate::graph::Graph;
use crate::ids::{Cost, NodeId, INFINITY};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global cap on worker threads used by [`par_chunks`], [`par_per_node`]
/// and [`apsp`]. 0 (the default) means "use available parallelism".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads for every parallel pass in this
/// module (0 restores the default of available parallelism). All
/// parallel merges in the workspace are deterministic in chunk order,
/// so results are bit-identical at any setting; this exists so tests
/// can prove exactly that, and so benchmarks can pin thread counts.
pub fn set_max_threads(threads: usize) {
    MAX_THREADS.store(threads, Ordering::SeqCst);
}

/// The thread count parallel passes will actually use.
pub fn effective_threads() -> usize {
    let avail = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => avail,
        // An explicit cap is honored verbatim (it may exceed the core
        // count: parity tests deliberately force multi-chunk splits on
        // single-core boxes).
        cap => cap,
    }
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Dense n-by-n distance matrix.
#[derive(Clone)]
pub struct DistMatrix {
    n: usize,
    d: Vec<Cost>,
}

impl DistMatrix {
    /// Build from a flat row-major distance vector (`n * n` entries).
    /// Used by metric constructions that are not graph APSP (e.g. the
    /// round-trip metric of [`crate::digraph`]).
    pub fn from_raw(n: usize, d: Vec<Cost>) -> Self {
        assert_eq!(d.len(), n * n, "flat matrix size mismatch");
        DistMatrix { n, d }
    }

    /// Distance from `u` to `v`.
    #[inline(always)]
    pub fn d(&self, u: NodeId, v: NodeId) -> Cost {
        self.d[u.idx() * self.n + v.idx()]
    }

    /// Row of distances from `u`.
    #[inline(always)]
    pub fn row(&self, u: NodeId) -> &[Cost] {
        &self.d[u.idx() * self.n..(u.idx() + 1) * self.n]
    }

    /// Matrix side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is the graph connected (no infinite entries)?
    pub fn connected(&self) -> bool {
        !self.d.contains(&INFINITY)
    }

    /// Largest finite pairwise distance.
    pub fn diameter(&self) -> Cost {
        self.d.iter().copied().filter(|&x| x != INFINITY).max().unwrap_or(0)
    }

    /// Smallest nonzero pairwise distance.
    pub fn min_distance(&self) -> Cost {
        self.d.iter().copied().filter(|&x| x != 0 && x != INFINITY).min().unwrap_or(0)
    }

    /// Aspect ratio Δ = max d(u,v) / min_{u≠v} d(u,v), the paper's
    /// normalized diameter. Returns `None` for graphs with < 2 nodes.
    pub fn aspect_ratio(&self) -> Option<f64> {
        let min = self.min_distance();
        if min == 0 {
            return None;
        }
        Some(self.diameter() as f64 / min as f64)
    }

    /// Number of nodes within distance `r` of `u` (|B(u, r)|).
    pub fn ball_size(&self, u: NodeId, r: Cost) -> usize {
        self.row(u).iter().filter(|&&d| d != INFINITY && d <= r).count()
    }
}

/// Sequential APSP (used for small graphs and as the parallel oracle).
pub fn apsp_sequential(g: &Graph) -> DistMatrix {
    let n = g.n();
    let mut d = vec![INFINITY; n * n];
    for u in 0..n {
        let sp = dijkstra(g, NodeId(u as u32));
        d[u * n..(u + 1) * n].copy_from_slice(&sp.dist);
    }
    DistMatrix { n, d }
}

/// Parallel APSP: one Dijkstra per source, rows distributed over
/// `num_threads` (defaults to available parallelism).
pub fn apsp(g: &Graph) -> DistMatrix {
    let n = g.n();
    let threads = effective_threads();
    if n < 64 || threads == 1 {
        return apsp_sequential(g);
    }
    let mut d = vec![INFINITY; n * n];
    let chunk_rows = n.div_ceil(threads);
    crossbeam::scope(|s| {
        for (c, chunk) in d.chunks_mut(chunk_rows * n).enumerate() {
            let base = c * chunk_rows;
            s.spawn(move |_| {
                for (i, row) in chunk.chunks_mut(n).enumerate() {
                    let sp = dijkstra(g, NodeId((base + i) as u32));
                    row.copy_from_slice(&sp.dist);
                }
            });
        }
    })
    .expect("APSP worker panicked");
    DistMatrix { n, d }
}

/// Exact diameter (largest finite pairwise distance) without an n×n
/// matrix, via the iFUB bounding scheme lifted to weighted graphs.
///
/// Per connected component: a double sweep seeds a lower bound `lb`;
/// from a root `r` on the midpoint of the sweep path, nodes are
/// processed in decreasing `d(r, ·)` order, each contributing its
/// eccentricity to `lb`, until `2·d(r, next) ≤ lb` — at that point any
/// unprocessed pair `x, y` satisfies `d(x, y) ≤ d(x, r) + d(r, y) ≤
/// lb`, so `lb` is the component's diameter. Memory is O(n); the run
/// count is a handful of Dijkstras on small-world graphs and degrades
/// toward O(n) only on path-like metrics (where the dense
/// [`DistMatrix`] is affordable anyway).
pub fn diameter_matrix_free(g: &Graph) -> Cost {
    let mut best = 0;
    for comp in crate::subgraph::components(g) {
        if comp.len() >= 2 {
            best = best.max(component_diameter(g, NodeId(comp[0])));
        }
    }
    best
}

/// iFUB on the component containing `start`.
fn component_diameter(g: &Graph, start: NodeId) -> Cost {
    let farthest = |sp: &crate::dijkstra::Sssp| -> (NodeId, Cost) {
        let (v, d) = sp
            .dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INFINITY)
            .max_by_key(|&(v, &d)| (d, std::cmp::Reverse(v)))
            .expect("component nonempty");
        (NodeId(v as u32), *d)
    };
    // Double sweep: start -> a -> b.
    let sp0 = dijkstra(g, start);
    let (a, _) = farthest(&sp0);
    let spa = dijkstra(g, a);
    let (b, mut lb) = farthest(&spa);
    // Root at the midpoint of the a-b path.
    let path = spa.path_to(b).expect("b reachable from a");
    let root = *path.iter().min_by_key(|&&v| spa.d(v).abs_diff(lb / 2)).expect("path nonempty");
    let spr = dijkstra(g, root);
    let mut order: Vec<(Cost, u32)> = spr
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITY)
        .map(|(v, &d)| (d, v as u32))
        .collect();
    order.sort_unstable_by(|x, y| y.cmp(x)); // decreasing d(root, ·)
    for (dr, v) in order {
        if dr.saturating_mul(2) <= lb {
            break;
        }
        let sp = dijkstra(g, NodeId(v));
        lb = lb.max(farthest(&sp).1);
    }
    lb
}

/// Split `0..count` into one contiguous chunk per worker thread, run
/// `f` on each chunk concurrently (scoped threads), and return the
/// per-chunk results in chunk order — so order-sensitive merges stay
/// deterministic in any thread count. The skeleton behind every
/// parallel pass in this workspace; per-worker scratch (e.g. a
/// [`crate::DijkstraScratch`]) lives inside `f`.
pub fn par_chunks<T: Send>(count: usize, f: impl Fn(std::ops::Range<usize>) -> T + Sync) -> Vec<T> {
    let threads = effective_threads();
    let chunk = count.div_ceil(threads).max(1);
    let mut out: Vec<Option<T>> = (0..count.div_ceil(chunk)).map(|_| None).collect();
    crossbeam::scope(|s| {
        for (i, slot) in out.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let lo = i * chunk;
                *slot = Some(f(lo..(lo + chunk).min(count)));
            });
        }
    })
    .expect("parallel chunk worker panicked");
    out.into_iter().map(|x| x.expect("every chunk filled")).collect()
}

/// Run one Dijkstra per node in parallel and hand each result to `f`
/// (called with the source id). Results are collected in source order.
/// The workhorse for per-node preprocessing in the scheme crates.
pub fn par_per_node<T: Send>(g: &Graph, f: impl Fn(NodeId) -> T + Sync) -> Vec<T> {
    let n = g.n();
    let threads = effective_threads();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if n < 64 || threads == 1 {
        for (u, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(NodeId(u as u32)));
        }
    } else {
        let chunk = n.div_ceil(threads);
        crossbeam::scope(|s| {
            for (c, slots) in out.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                let f = &f;
                s.spawn(move |_| {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(NodeId((base + i) as u32)));
                    }
                });
            }
        })
        .expect("per-node worker panicked");
    }
    out.into_iter().map(|x| x.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn ring(n: u32, w: u64) -> Graph {
        let edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, w)).collect();
        graph_from_edges(n as usize, &edges)
    }

    #[test]
    fn apsp_matches_sequential() {
        let g = ring(100, 3);
        let a = apsp_sequential(&g);
        let b = apsp(&g);
        for u in g.nodes() {
            assert_eq!(a.row(u), b.row(u));
        }
    }

    #[test]
    fn ring_metrics() {
        let g = ring(8, 2);
        let m = apsp(&g);
        assert!(m.connected());
        assert_eq!(m.diameter(), 8); // 4 hops * 2
        assert_eq!(m.min_distance(), 2);
        assert_eq!(m.aspect_ratio(), Some(4.0));
        assert_eq!(m.ball_size(NodeId(0), 2), 3);
        assert_eq!(m.ball_size(NodeId(0), 0), 1);
    }

    #[test]
    fn disconnected_detected() {
        let g = graph_from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let m = apsp(&g);
        assert!(!m.connected());
        assert_eq!(m.diameter(), 1);
    }

    #[test]
    fn symmetry() {
        let g = ring(40, 5);
        let m = apsp(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.d(u, v), m.d(v, u));
            }
        }
    }

    #[test]
    fn matrix_free_diameter_matches_apsp() {
        use crate::gen::Family;
        for fam in Family::ALL {
            let g = fam.generate(120, 0xD1A);
            let m = apsp(&g);
            assert_eq!(diameter_matrix_free(&g), m.diameter(), "{}", fam.label());
        }
    }

    #[test]
    fn matrix_free_diameter_on_rings_and_disconnected() {
        // Ring: the adversarial case for iFUB (many eccentricity runs,
        // still exact).
        let g = ring(101, 3);
        assert_eq!(diameter_matrix_free(&g), apsp(&g).diameter());
        // Disconnected: the largest finite distance across components.
        let g = graph_from_edges(7, &[(0, 1, 5), (1, 2, 5), (3, 4, 2), (5, 6, 40)]);
        assert_eq!(diameter_matrix_free(&g), apsp(&g).diameter());
        // Isolated nodes only.
        let g = graph_from_edges(3, &[]);
        assert_eq!(diameter_matrix_free(&g), 0);
    }

    #[test]
    fn par_chunks_covers_in_order() {
        for count in [0usize, 1, 7, 64, 1000] {
            // merge: this test pins down chunk-order flattening itself.
            let ranges = par_chunks(count, |r| r);
            let flat: Vec<usize> = ranges.into_iter().flatten().collect();
            assert_eq!(flat, (0..count).collect::<Vec<_>>(), "count={count}");
        }
    }

    #[test]
    fn par_per_node_orders_results() {
        let g = ring(200, 1);
        let ids = par_per_node(&g, |u| u.0 * 2);
        for (i, v) in ids.iter().enumerate() {
            assert_eq!(*v, (i * 2) as u32);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = graph_from_edges(
            5,
            &[(0, 1, 3), (1, 2, 4), (2, 3, 2), (3, 4, 6), (4, 0, 1), (1, 3, 10)],
        );
        let m = apsp(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    assert!(m.d(a, c) <= m.d(a, b) + m.d(b, c));
                }
            }
        }
    }
}
