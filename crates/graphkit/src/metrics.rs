//! Whole-graph metric computations: parallel all-pairs shortest paths,
//! aspect ratio, diameter.
//!
//! APSP fans rows out across threads with `crossbeam::scope`; each thread
//! writes a disjoint chunk of the distance matrix, so no synchronization
//! is needed on the hot path (see the workspace HPC notes in DESIGN.md).

use crate::dijkstra::dijkstra;
use crate::graph::Graph;
use crate::ids::{Cost, NodeId, INFINITY};

/// Dense n-by-n distance matrix.
#[derive(Clone)]
pub struct DistMatrix {
    n: usize,
    d: Vec<Cost>,
}

impl DistMatrix {
    /// Build from a flat row-major distance vector (`n * n` entries).
    /// Used by metric constructions that are not graph APSP (e.g. the
    /// round-trip metric of [`crate::digraph`]).
    pub fn from_raw(n: usize, d: Vec<Cost>) -> Self {
        assert_eq!(d.len(), n * n, "flat matrix size mismatch");
        DistMatrix { n, d }
    }

    /// Distance from `u` to `v`.
    #[inline(always)]
    pub fn d(&self, u: NodeId, v: NodeId) -> Cost {
        self.d[u.idx() * self.n + v.idx()]
    }

    /// Row of distances from `u`.
    #[inline(always)]
    pub fn row(&self, u: NodeId) -> &[Cost] {
        &self.d[u.idx() * self.n..(u.idx() + 1) * self.n]
    }

    /// Matrix side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is the graph connected (no infinite entries)?
    pub fn connected(&self) -> bool {
        !self.d.contains(&INFINITY)
    }

    /// Largest finite pairwise distance.
    pub fn diameter(&self) -> Cost {
        self.d.iter().copied().filter(|&x| x != INFINITY).max().unwrap_or(0)
    }

    /// Smallest nonzero pairwise distance.
    pub fn min_distance(&self) -> Cost {
        self.d.iter().copied().filter(|&x| x != 0 && x != INFINITY).min().unwrap_or(0)
    }

    /// Aspect ratio Δ = max d(u,v) / min_{u≠v} d(u,v), the paper's
    /// normalized diameter. Returns `None` for graphs with < 2 nodes.
    pub fn aspect_ratio(&self) -> Option<f64> {
        let min = self.min_distance();
        if min == 0 {
            return None;
        }
        Some(self.diameter() as f64 / min as f64)
    }

    /// Number of nodes within distance `r` of `u` (|B(u, r)|).
    pub fn ball_size(&self, u: NodeId, r: Cost) -> usize {
        self.row(u).iter().filter(|&&d| d != INFINITY && d <= r).count()
    }
}

/// Sequential APSP (used for small graphs and as the parallel oracle).
pub fn apsp_sequential(g: &Graph) -> DistMatrix {
    let n = g.n();
    let mut d = vec![INFINITY; n * n];
    for u in 0..n {
        let sp = dijkstra(g, NodeId(u as u32));
        d[u * n..(u + 1) * n].copy_from_slice(&sp.dist);
    }
    DistMatrix { n, d }
}

/// Parallel APSP: one Dijkstra per source, rows distributed over
/// `num_threads` (defaults to available parallelism).
pub fn apsp(g: &Graph) -> DistMatrix {
    let n = g.n();
    let threads = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
    if n < 64 || threads == 1 {
        return apsp_sequential(g);
    }
    let mut d = vec![INFINITY; n * n];
    let chunk_rows = n.div_ceil(threads);
    crossbeam::scope(|s| {
        for (c, chunk) in d.chunks_mut(chunk_rows * n).enumerate() {
            let base = c * chunk_rows;
            s.spawn(move |_| {
                for (i, row) in chunk.chunks_mut(n).enumerate() {
                    let sp = dijkstra(g, NodeId((base + i) as u32));
                    row.copy_from_slice(&sp.dist);
                }
            });
        }
    })
    .expect("APSP worker panicked");
    DistMatrix { n, d }
}

/// Run one Dijkstra per node in parallel and hand each result to `f`
/// (called with the source id). Results are collected in source order.
/// The workhorse for per-node preprocessing in the scheme crates.
pub fn par_per_node<T: Send>(g: &Graph, f: impl Fn(NodeId) -> T + Sync) -> Vec<T> {
    let n = g.n();
    let threads = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if n < 64 || threads == 1 {
        for (u, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(NodeId(u as u32)));
        }
    } else {
        let chunk = n.div_ceil(threads);
        crossbeam::scope(|s| {
            for (c, slots) in out.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                let f = &f;
                s.spawn(move |_| {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(f(NodeId((base + i) as u32)));
                    }
                });
            }
        })
        .expect("per-node worker panicked");
    }
    out.into_iter().map(|x| x.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn ring(n: u32, w: u64) -> Graph {
        let edges: Vec<(u32, u32, u64)> = (0..n).map(|i| (i, (i + 1) % n, w)).collect();
        graph_from_edges(n as usize, &edges)
    }

    #[test]
    fn apsp_matches_sequential() {
        let g = ring(100, 3);
        let a = apsp_sequential(&g);
        let b = apsp(&g);
        for u in g.nodes() {
            assert_eq!(a.row(u), b.row(u));
        }
    }

    #[test]
    fn ring_metrics() {
        let g = ring(8, 2);
        let m = apsp(&g);
        assert!(m.connected());
        assert_eq!(m.diameter(), 8); // 4 hops * 2
        assert_eq!(m.min_distance(), 2);
        assert_eq!(m.aspect_ratio(), Some(4.0));
        assert_eq!(m.ball_size(NodeId(0), 2), 3);
        assert_eq!(m.ball_size(NodeId(0), 0), 1);
    }

    #[test]
    fn disconnected_detected() {
        let g = graph_from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let m = apsp(&g);
        assert!(!m.connected());
        assert_eq!(m.diameter(), 1);
    }

    #[test]
    fn symmetry() {
        let g = ring(40, 5);
        let m = apsp(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.d(u, v), m.d(v, u));
            }
        }
    }

    #[test]
    fn par_per_node_orders_results() {
        let g = ring(200, 1);
        let ids = par_per_node(&g, |u| u.0 * 2);
        for (i, v) in ids.iter().enumerate() {
            assert_eq!(*v, (i * 2) as u32);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = graph_from_edges(
            5,
            &[(0, 1, 3), (1, 2, 4), (2, 3, 2), (3, 4, 6), (4, 0, 1), (1, 3, 10)],
        );
        let m = apsp(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    assert!(m.d(a, c) <= m.d(a, b) + m.d(b, c));
                }
            }
        }
    }
}
