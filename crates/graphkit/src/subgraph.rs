//! Induced subgraphs with id mappings.
//!
//! The dense-level machinery builds tree covers on the subgraphs `G_i`
//! induced by `V_i = {u : i ∈ R(u)}`; this module extracts an induced
//! subgraph as a standalone [`Graph`] plus the two-way node-id mapping.

use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// An induced subgraph together with its id translation tables.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced graph, with nodes renumbered `0..members.len()`.
    pub graph: Graph,
    /// `local -> host` node id.
    pub to_host: Vec<u32>,
    /// `host -> local` node id (`u32::MAX` when absent).
    pub to_local: Vec<u32>,
}

impl Subgraph {
    /// Host id of a local node.
    pub fn host(&self, local: NodeId) -> NodeId {
        NodeId(self.to_host[local.idx()])
    }

    /// Local id of a host node, if it belongs to the subgraph.
    pub fn local(&self, host: NodeId) -> Option<NodeId> {
        let l = self.to_local[host.idx()];
        if l == u32::MAX {
            None
        } else {
            Some(NodeId(l))
        }
    }

    /// Does the subgraph contain this host node?
    pub fn contains(&self, host: NodeId) -> bool {
        self.to_local[host.idx()] != u32::MAX
    }
}

/// Extract the subgraph induced by `members` (host node ids, any order,
/// deduplicated here). Edges keep their weights.
pub fn induced_subgraph(g: &Graph, members: &[u32]) -> Subgraph {
    let mut to_host: Vec<u32> = members.to_vec();
    to_host.sort_unstable();
    to_host.dedup();
    let mut to_local = vec![u32::MAX; g.n()];
    for (l, &h) in to_host.iter().enumerate() {
        to_local[h as usize] = l as u32;
    }
    let mut b = GraphBuilder::with_nodes(to_host.len());
    for &h in &to_host {
        let u = NodeId(h);
        let lu = to_local[h as usize];
        for (v, w) in g.edges_of(u) {
            let lv = to_local[v.idx()];
            if lv != u32::MAX && lu < lv {
                b.add_edge(NodeId(lu), NodeId(lv), w);
            }
        }
    }
    Subgraph { graph: b.build(), to_host, to_local }
}

/// Connected components of a graph, each as a sorted list of node ids.
pub fn components(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut out: Vec<Vec<u32>> = Vec::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let c = out.len() as u32;
        let mut stack = vec![start];
        let mut members = Vec::new();
        comp[start as usize] = c;
        while let Some(u) = stack.pop() {
            members.push(u);
            for &v in g.neighbors(NodeId(u)) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = c;
                    stack.push(v);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn sample() -> Graph {
        graph_from_edges(6, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (4, 5, 6), (0, 5, 7)])
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let s = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(s.graph.n(), 3);
        assert_eq!(s.graph.m(), 2); // 1-2, 2-3
        let l1 = s.local(NodeId(1)).unwrap();
        let l2 = s.local(NodeId(2)).unwrap();
        assert_eq!(s.graph.edge_weight(l1, l2), Some(3));
        assert!(!s.contains(NodeId(0)));
        assert_eq!(s.host(l1), NodeId(1));
    }

    #[test]
    fn induced_dedups_members() {
        let g = sample();
        let s = induced_subgraph(&g, &[2, 2, 1, 1]);
        assert_eq!(s.graph.n(), 2);
    }

    #[test]
    fn induced_full_set_is_isomorphic() {
        let g = sample();
        let s = induced_subgraph(&g, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(s.graph.n(), 6);
        assert_eq!(s.graph.m(), 6);
    }

    #[test]
    fn components_of_disconnected() {
        let g = graph_from_edges(7, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (5, 6, 1)]);
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5, 6]);
    }

    #[test]
    fn components_of_connected_is_single() {
        let comps = components(&sample());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 6);
    }

    #[test]
    fn isolated_nodes_are_singleton_components() {
        let g = graph_from_edges(3, &[(0, 1, 1)]);
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1], vec![2]);
    }
}
