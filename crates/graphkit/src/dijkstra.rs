//! Single-source shortest paths, bounded variants, and m-closest queries.
//!
//! Ties are broken by node id everywhere (the paper fixes an arbitrary
//! lexicographic order on nodes; we use the integer order of ids). This
//! makes `N(u, m, Z)` — the m closest nodes of `Z` to `u` — a unique,
//! deterministic set, which several lemmas rely on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;
use crate::ids::{cost_add, Cost, NodeId, INFINITY};

/// Result of a single-source run: distances and parent pointers.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]` = d(source, v), `INFINITY` if unreachable.
    pub dist: Vec<Cost>,
    /// `parent[v]` = predecessor of `v` on a shortest path from the
    /// source; `u32::MAX` for the source itself and unreachable nodes.
    pub parent: Vec<u32>,
}

impl Sssp {
    /// Distance to `v`.
    #[inline(always)]
    pub fn d(&self, v: NodeId) -> Cost {
        self.dist[v.idx()]
    }

    /// Is `v` reachable from the source?
    #[inline(always)]
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v.idx()] != INFINITY
    }

    /// Parent of `v` in the shortest-path tree, if any.
    pub fn parent_of(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent[v.idx()];
        if p == u32::MAX {
            None
        } else {
            Some(NodeId(p))
        }
    }

    /// Reconstruct the shortest path source -> v (inclusive); `None` if
    /// unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }
}

/// Full Dijkstra from `source`.
///
/// Tie-break: when two relaxations yield equal distance, the parent with
/// the smaller id wins, so shortest-path trees are canonical.
pub fn dijkstra(g: &Graph, source: NodeId) -> Sssp {
    dijkstra_bounded(g, source, INFINITY)
}

/// Dijkstra that never settles nodes at distance `> radius`.
/// Nodes beyond the radius report `INFINITY`.
pub fn dijkstra_bounded(g: &Graph, source: NodeId, radius: Cost) -> Sssp {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[source.idx()] = 0;
    heap.push(Reverse((0, source.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let u_id = NodeId(u);
        for (v, w) in g.edges_of(u_id) {
            let nd = cost_add(d, w);
            if nd > radius {
                continue;
            }
            let dv = &mut dist[v.idx()];
            if nd < *dv || (nd == *dv && u < parent[v.idx()]) {
                let improved = nd < *dv;
                *dv = nd;
                parent[v.idx()] = u;
                if improved {
                    heap.push(Reverse((nd, v.0)));
                }
            }
        }
    }
    Sssp { source, dist, parent }
}

/// Reusable buffers for repeated bounded Dijkstra runs from many
/// sources over the same graph size.
///
/// [`dijkstra_bounded`] allocates (and zeroes) two `n`-length vectors
/// per call, which turns `n` small-ball runs into Θ(n²) work. The
/// scratch keeps the vectors alive across runs and resets only the
/// entries the previous run touched, so a run costs O(ball) rather
/// than O(n). This is the workhorse behind the matrix-free scheme
/// construction (per-node ranges, `E(u,i)` balls, level-0 S-sets).
pub struct DijkstraScratch {
    dist: Vec<Cost>,
    parent: Vec<u32>,
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
    /// Nodes whose `dist`/`parent` entries are dirty.
    touched: Vec<u32>,
    /// Settled `(distance, node)` pairs of the last run, in increasing
    /// `(distance, id)` order (the heap pop order).
    settled: Vec<(Cost, u32)>,
    source: NodeId,
}

impl DijkstraScratch {
    /// Scratch for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            dist: vec![INFINITY; n],
            parent: vec![u32::MAX; n],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            settled: Vec::new(),
            source: NodeId(0),
        }
    }

    /// Run Dijkstra from `source`, stopping at distance `> radius` and
    /// additionally once `settle_cap` nodes have been settled (pass
    /// `usize::MAX` for no cap). Settled nodes and their distances —
    /// in increasing `(distance, id)` order — are available through
    /// [`Self::settled`] until the next run; `dist`/`parent` views stay
    /// consistent with [`dijkstra_bounded`] for every settled node.
    ///
    /// With a `settle_cap`, the run stops *after* the cap-th pop, so
    /// the settled list is exactly the `settle_cap` smallest
    /// `(distance, id)` pairs (ties broken by id, as everywhere).
    pub fn run(&mut self, g: &Graph, source: NodeId, radius: Cost, settle_cap: usize) {
        // Lazy reset of the previous run's footprint.
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
            self.parent[v as usize] = u32::MAX;
        }
        self.touched.clear();
        self.settled.clear();
        self.heap.clear();
        self.source = source;
        self.dist[source.idx()] = 0;
        self.touched.push(source.0);
        self.heap.push(Reverse((0, source.0)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue; // stale entry
            }
            self.settled.push((d, u));
            if self.settled.len() >= settle_cap {
                break;
            }
            for (v, w) in g.edges_of(NodeId(u)) {
                let nd = cost_add(d, w);
                if nd > radius {
                    continue;
                }
                let dv = &mut self.dist[v.idx()];
                if nd < *dv || (nd == *dv && u < self.parent[v.idx()]) {
                    let improved = nd < *dv;
                    if *dv == INFINITY {
                        self.touched.push(v.0);
                    }
                    *dv = nd;
                    self.parent[v.idx()] = u;
                    if improved {
                        self.heap.push(Reverse((nd, v.0)));
                    }
                }
            }
        }
    }

    /// Settled `(distance, node)` pairs of the last run, in increasing
    /// `(distance, id)` order.
    pub fn settled(&self) -> &[(Cost, u32)] {
        &self.settled
    }

    /// Distance to `v` as of the last run (`INFINITY` if unsettled —
    /// meaningful only for nodes the run settled).
    #[inline(always)]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist[v.idx()]
    }

    /// Shortest-path-tree parent of `v` as of the last run
    /// (`u32::MAX` for the source and unsettled nodes). Identical to
    /// the full-run parent for every settled node: any predecessor on
    /// a shortest path to a settled node lies strictly closer, hence
    /// inside the bound as well.
    #[inline(always)]
    pub fn parent(&self, v: NodeId) -> u32 {
        self.parent[v.idx()]
    }

    /// Source of the last run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Full distance view of the last run (`INFINITY` outside the
    /// settled ball) — the slice form [`crate::Tree::from_dist_parents`]
    /// consumes.
    pub fn dists(&self) -> &[Cost] {
        &self.dist
    }

    /// Full parent view of the last run (`u32::MAX` outside the
    /// settled ball).
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// The number of settled nodes whose `(distance, id)` key is
    /// strictly below `key` — the rank/position primitive behind the
    /// level-0 S-set queries. Exact whenever the run's radius reached
    /// `key.0`.
    pub fn position_below(&self, key: (Cost, u32)) -> usize {
        self.settled.partition_point(|&e| e < key)
    }
}

/// Settle nodes in nondecreasing distance order until `m` nodes from the
/// candidate set `in_set` have been found (or the graph is exhausted).
/// Returns the settled members of the set, ordered by `(distance, id)`.
///
/// This is the paper's `N(u, m, Z)` primitive. It runs a truncated
/// Dijkstra, so the cost is proportional to the ball that contains the m
/// closest members of `Z`, not to the whole graph.
pub fn m_closest_in_set(
    g: &Graph,
    source: NodeId,
    m: usize,
    in_set: impl Fn(NodeId) -> bool,
) -> Vec<(NodeId, Cost)> {
    let n = g.n();
    if m == 0 {
        return Vec::new();
    }
    let mut dist = vec![INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[source.idx()] = 0;
    heap.push(Reverse((0, source.0)));
    let mut found: Vec<(NodeId, Cost)> = Vec::with_capacity(m.min(n));
    // We must settle *all* nodes at the threshold distance before we can
    // apply the (distance, id) tie-break, so we collect candidates and
    // trim at the end.
    let mut settled: Vec<(Cost, u32)> = Vec::new();
    let mut members_seen = 0usize;
    let mut cutoff: Option<Cost> = None;
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if let Some(c) = cutoff {
            if d > c {
                break;
            }
        }
        if in_set(NodeId(u)) {
            settled.push((d, u));
            members_seen += 1;
            if members_seen >= m && cutoff.is_none() {
                // Finish everything at this same distance to break ties
                // deterministically, then stop.
                cutoff = Some(d);
            }
        }
        for (v, w) in g.edges_of(NodeId(u)) {
            let nd = cost_add(d, w);
            if nd < dist[v.idx()] {
                dist[v.idx()] = nd;
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    settled.sort_unstable();
    for (d, u) in settled.into_iter().take(m) {
        found.push((NodeId(u), d));
    }
    found
}

/// All nodes within distance `r` of `u`, with distances, ordered by
/// `(distance, id)`. The paper's ball `B(u, r)`.
pub fn ball(g: &Graph, u: NodeId, r: Cost) -> Vec<(NodeId, Cost)> {
    let sp = dijkstra_bounded(g, u, r);
    let mut out: Vec<(Cost, u32)> = sp
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITY && d <= r)
        .map(|(v, &d)| (d, v as u32))
        .collect();
    out.sort_unstable();
    out.into_iter().map(|(d, v)| (NodeId(v), d)).collect()
}

/// Size of `B(u, r)` without materializing it.
pub fn ball_size(g: &Graph, u: NodeId, r: Cost) -> usize {
    let sp = dijkstra_bounded(g, u, r);
    sp.dist.iter().filter(|&&d| d != INFINITY && d <= r).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    /// Path graph 0-1-2-3-4 with unit weights.
    fn path5() -> Graph {
        graph_from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)])
    }

    fn weighted() -> Graph {
        // Square with a costly diagonal and a pendant.
        graph_from_edges(5, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 0, 2), (0, 2, 10), (3, 4, 7)])
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(sp.path_to(NodeId(4)).unwrap().len(), 5);
    }

    #[test]
    fn distances_weighted() {
        let g = weighted();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.d(NodeId(2)), 4); // around the square, not the diagonal
        assert_eq!(sp.d(NodeId(4)), 9);
    }

    #[test]
    fn unreachable_nodes() {
        let g = graph_from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let sp = dijkstra(&g, NodeId(0));
        assert!(sp.reachable(NodeId(1)));
        assert!(!sp.reachable(NodeId(2)));
        assert_eq!(sp.path_to(NodeId(3)), None);
    }

    #[test]
    fn bounded_truncates() {
        let g = path5();
        let sp = dijkstra_bounded(&g, NodeId(0), 2);
        assert_eq!(sp.d(NodeId(2)), 2);
        assert_eq!(sp.d(NodeId(3)), INFINITY);
    }

    #[test]
    fn path_reconstruction_is_shortest() {
        let g = weighted();
        let sp = dijkstra(&g, NodeId(1));
        let p = sp.path_to(NodeId(4)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(1)));
        assert_eq!(p.last(), Some(&NodeId(4)));
        // Cost along reconstructed path equals reported distance.
        let mut cost = 0;
        for win in p.windows(2) {
            cost += g.edge_weight(win[0], win[1]).unwrap();
        }
        assert_eq!(cost, sp.d(NodeId(4)));
    }

    #[test]
    fn ball_contents() {
        let g = path5();
        let b = ball(&g, NodeId(2), 1);
        let ids: Vec<u32> = b.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![2, 1, 3]); // ordered by (dist, id)
        assert_eq!(ball_size(&g, NodeId(2), 2), 5);
        assert_eq!(ball_size(&g, NodeId(0), 0), 1);
    }

    #[test]
    fn m_closest_basic() {
        let g = path5();
        let c = m_closest_in_set(&g, NodeId(0), 3, |_| true);
        let ids: Vec<u32> = c.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn m_closest_respects_set() {
        let g = path5();
        // Only odd nodes are candidates.
        let c = m_closest_in_set(&g, NodeId(0), 2, |v| v.0 % 2 == 1);
        let ids: Vec<u32> = c.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn m_closest_tie_break_by_id() {
        // Star: center 0, leaves 1..=4 all at distance 5.
        let g = graph_from_edges(5, &[(0, 1, 5), (0, 2, 5), (0, 3, 5), (0, 4, 5)]);
        let c = m_closest_in_set(&g, NodeId(0), 3, |v| v.0 != 0);
        let ids: Vec<u32> = c.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn m_closest_more_than_available() {
        let g = path5();
        let c = m_closest_in_set(&g, NodeId(0), 100, |v| v.0 >= 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn scratch_matches_bounded_across_runs() {
        let g = weighted();
        let mut scratch = DijkstraScratch::new(g.n());
        for src in 0..5u32 {
            for radius in [0u64, 2, 4, 9, u64::MAX - 1] {
                scratch.run(&g, NodeId(src), radius, usize::MAX);
                let sp = dijkstra_bounded(&g, NodeId(src), radius);
                for (d, v) in scratch.settled() {
                    assert_eq!(*d, sp.d(NodeId(*v)));
                    assert_eq!(scratch.parent(NodeId(*v)), sp.parent[*v as usize]);
                }
                let want: usize = sp.dist.iter().filter(|&&d| d != INFINITY).count();
                assert_eq!(scratch.settled().len(), want, "src={src} r={radius}");
            }
        }
    }

    #[test]
    fn scratch_settle_cap_takes_smallest_pairs() {
        // Star with equal spokes: the cap must cut by (distance, id).
        let g = graph_from_edges(5, &[(0, 1, 5), (0, 2, 5), (0, 3, 5), (0, 4, 5)]);
        let mut scratch = DijkstraScratch::new(g.n());
        scratch.run(&g, NodeId(0), u64::MAX - 1, 3);
        let ids: Vec<u32> = scratch.settled().iter().map(|&(_, v)| v).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(scratch.position_below((5, 2)), 2); // {(0,0), (5,1)}
        assert_eq!(scratch.position_below((5, 0)), 1);
    }

    #[test]
    fn canonical_parents_under_ties() {
        // Two equal-length routes to node 3: via 1 and via 2.
        let g = graph_from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let sp = dijkstra(&g, NodeId(0));
        // Parent must be the smaller-id predecessor.
        assert_eq!(sp.parent_of(NodeId(3)), Some(NodeId(1)));
    }
}
