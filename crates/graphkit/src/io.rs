//! Graph serialization: a DIMACS-flavored weighted edge-list format.
//!
//! ```text
//! c comment lines start with 'c'
//! p <nodes> <edges>
//! e <u> <v> <weight>
//! ```
//!
//! Node ids are 0-based. The format round-trips exactly (edges are
//! written in canonical `u < v` order), so experiment instances can be
//! exported, shared, and re-loaded bit-for-bit.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::graph::{Graph, GraphBuilder};
use crate::ids::NodeId;

/// Errors from [`parse_graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The `p` header line is missing or malformed.
    BadHeader(String),
    /// An `e` line did not have three integer fields.
    BadEdge {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown line type was encountered.
    UnknownLine {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// The header promised a different edge count.
    EdgeCountMismatch {
        /// Edge count declared in the `p` header.
        expected: usize,
        /// Edges actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseError::BadEdge { line, content } => {
                write!(f, "bad edge on line {line}: {content}")
            }
            ParseError::NodeOutOfRange { line } => {
                write!(f, "node id out of range on line {line}")
            }
            ParseError::UnknownLine { line, content } => {
                write!(f, "unknown line {line}: {content}")
            }
            ParseError::EdgeCountMismatch { expected, found } => {
                write!(f, "header declared {expected} edges, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a graph. Deterministic: canonical edge order.
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c compact-routing graph");
    let _ = writeln!(out, "p {} {}", g.n(), g.m());
    for (u, v, w) in g.all_edges() {
        let _ = writeln!(out, "e {} {} {}", u.0, v.0, w);
    }
    out
}

/// Parse the format produced by [`write_graph`].
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut found_edges = 0usize;
    for (ix, raw) in text.lines().enumerate() {
        let line = ix + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("p") => {
                let n = parse_field::<usize>(fields.next())
                    .ok_or_else(|| ParseError::BadHeader(trimmed.to_string()))?;
                declared_edges = parse_field::<usize>(fields.next())
                    .ok_or_else(|| ParseError::BadHeader(trimmed.to_string()))?;
                builder = Some(GraphBuilder::with_nodes(n));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::BadHeader("missing p line".into()))?;
                let (u, v, w) = (
                    parse_field::<u32>(fields.next()),
                    parse_field::<u32>(fields.next()),
                    parse_field::<u64>(fields.next()),
                );
                match (u, v, w) {
                    (Some(u), Some(v), Some(w)) => {
                        if u as usize >= b.num_nodes() || v as usize >= b.num_nodes() {
                            return Err(ParseError::NodeOutOfRange { line });
                        }
                        b.add_edge(NodeId(u), NodeId(v), w);
                        found_edges += 1;
                    }
                    _ => return Err(ParseError::BadEdge { line, content: trimmed.to_string() }),
                }
            }
            _ => return Err(ParseError::UnknownLine { line, content: trimmed.to_string() }),
        }
    }
    if found_edges != declared_edges {
        return Err(ParseError::EdgeCountMismatch { expected: declared_edges, found: found_edges });
    }
    let b = builder.ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    Ok(b.build())
}

fn parse_field<T: FromStr>(f: Option<&str>) -> Option<T> {
    f.and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from_edges;

    fn sample() -> Graph {
        graph_from_edges(4, &[(0, 1, 5), (1, 2, 1), (2, 3, 7), (0, 3, 2)])
    }

    #[test]
    fn roundtrip_exact() {
        let g = sample();
        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        let e1: Vec<_> = g.all_edges().collect();
        let e2: Vec<_> = g2.all_edges().collect();
        assert_eq!(e1, e2);
        // Serialization itself is canonical.
        assert_eq!(text, write_graph(&g2));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "c hello\n\np 2 1\nc mid\ne 0 1 9\n";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(9));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(parse_graph("e 0 1 2\n"), Err(ParseError::BadHeader(_))));
        assert!(matches!(parse_graph(""), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn rejects_bad_edge() {
        assert!(matches!(
            parse_graph("p 2 1\ne 0 x 2\n"),
            Err(ParseError::BadEdge { line: 2, .. })
        ));
        assert!(matches!(parse_graph("p 2 1\ne 0 1\n"), Err(ParseError::BadEdge { .. })));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            parse_graph("p 2 1\ne 0 5 2\n"),
            Err(ParseError::NodeOutOfRange { line: 2 })
        ));
    }

    #[test]
    fn rejects_unknown_line() {
        assert!(matches!(parse_graph("p 2 1\nq 1 2 3\n"), Err(ParseError::UnknownLine { .. })));
    }

    #[test]
    fn rejects_count_mismatch() {
        assert!(matches!(
            parse_graph("p 2 2\ne 0 1 1\n"),
            Err(ParseError::EdgeCountMismatch { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn error_display_messages() {
        let e = ParseError::EdgeCountMismatch { expected: 2, found: 1 };
        assert!(e.to_string().contains("declared 2"));
        assert!(ParseError::BadHeader("x".into()).to_string().contains("bad header"));
    }

    #[test]
    fn generated_families_roundtrip() {
        for fam in crate::gen::Family::ALL {
            let g = fam.generate(60, 9);
            let g2 = parse_graph(&write_graph(&g)).unwrap();
            let e1: Vec<_> = g.all_edges().collect();
            let e2: Vec<_> = g2.all_edges().collect();
            assert_eq!(e1, e2, "{}", fam.label());
        }
    }
}
