//! Graph mutations for churn workloads: edge-primitive deltas, strict
//! application onto a frozen [`Graph`], and the repair-side impact
//! analysis (which nodes' distance vectors changed, and how close each
//! node sits to any changed edge).
//!
//! Node-level churn (leave/join) is deliberately *not* a primitive
//! here: `core::churn` lowers it to failing/restoring the node's
//! incident edges, so the node count `n` never changes and every
//! per-node arena in the scheme keeps its indexing.
//!
//! ## The dirty-set theorem
//!
//! Let `E_Δ` be the changed edges between `G` and `G'` (same node
//! set), `P` their endpoints, and
//!
//! ```text
//! D = { v : d_G(v, p) ≠ d_G'(v, p) for some p ∈ P }.
//! ```
//!
//! Then every `v ∉ D` has its **entire** distance vector unchanged:
//! `d_G(v, x) = d_G'(v, x)` for all `x`. Proof sketch (decrease case;
//! increase is symmetric with `G`/`G'` swapped, and removal/addition
//! are the `w → ∞` limits): suppose `d'(v, x) < d(v, x)` with `v ∉ D`.
//! The new shortest path must use a changed edge; take its *last*
//! changed edge `(p, q)` (traversed `p → q`). The suffix `q ⇝ x` uses
//! only unchanged edges, so it costs at least `d_G(q, x)`; the prefix
//! costs at least `d'(v, p) = d_G(v, p)` (endpoint columns are stable
//! for `v`). So `d'(v, x) ≥ d'(v, q) + d_G(q, x) = d_G(v, q) +
//! d_G(q, x) ≥ d_G(v, x)` by the triangle inequality in `G` —
//! contradiction. Hence comparing `2·|P|` Dijkstra columns (each
//! endpoint on the *final* graphs only — no per-delta overlay
//! sequencing) yields the exact invalidation set.
//!
//! The same columns give each node's proximity to the change set
//! (`min_p d(v, p)`), which is what lets the scheme prove a bounded
//! region around a center tree was untouched (see
//! DESIGN.md §"Churn & incremental repair").

use std::collections::HashMap;

use crate::dijkstra::dijkstra;
use crate::graph::{Graph, GraphBuilder};
use crate::ids::{Cost, NodeId, Weight, INFINITY};

/// One edge-level mutation. Semantics are strict: failing a missing
/// edge, restoring a present one, or re-weighting a missing one is a
/// caller bug and panics with a message naming the edge — churn
/// drivers track live/failed state and never emit such deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphDelta {
    /// Remove the existing edge `{u, v}`.
    EdgeFail {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Re-insert the absent edge `{u, v}` with weight `w ≥ 1`.
    EdgeRestore {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Restored weight.
        w: Weight,
    },
    /// Change the weight of the existing edge `{u, v}` to `w ≥ 1`.
    SetWeight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// New weight.
        w: Weight,
    },
}

impl GraphDelta {
    /// The two endpoints the delta touches.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            GraphDelta::EdgeFail { u, v }
            | GraphDelta::EdgeRestore { u, v, .. }
            | GraphDelta::SetWeight { u, v, .. } => (u, v),
        }
    }
}

/// Canonical undirected key.
#[inline]
fn key(u: NodeId, v: NodeId) -> (u32, u32) {
    (u.0.min(v.0), u.0.max(v.0))
}

/// Apply `deltas` in order to a frozen graph, producing a new frozen
/// graph over the same node set. The output is deterministic in the
/// *final* edge set ([`GraphBuilder`] canonicalizes and sorts at
/// freeze time), so any two delta sequences with the same net effect
/// yield byte-identical CSR arenas.
///
/// Panics on malformed deltas (see [`GraphDelta`]) and on self-loops,
/// out-of-range endpoints, or zero weights — the same contract
/// [`GraphBuilder::add_edge`] enforces.
pub fn apply_deltas(g: &Graph, deltas: &[GraphDelta]) -> Graph {
    let n = g.n();
    let mut edges: HashMap<(u32, u32), Weight> =
        g.all_edges().map(|(u, v, w)| ((u.0, v.0), w)).collect();
    for (i, d) in deltas.iter().enumerate() {
        let (u, v) = d.endpoints();
        assert!(u != v, "delta {i}: self-loop at {u:?}");
        assert!(u.idx() < n && v.idx() < n, "delta {i}: endpoint out of range");
        let k = key(u, v);
        match *d {
            GraphDelta::EdgeFail { .. } => {
                assert!(
                    edges.remove(&k).is_some(),
                    "delta {i}: EdgeFail on missing edge {{{}, {}}}",
                    k.0,
                    k.1
                );
            }
            GraphDelta::EdgeRestore { w, .. } => {
                assert!(w >= 1, "delta {i}: weight must be >= 1");
                assert!(
                    edges.insert(k, w).is_none(),
                    "delta {i}: EdgeRestore on present edge {{{}, {}}}",
                    k.0,
                    k.1
                );
            }
            GraphDelta::SetWeight { w, .. } => {
                assert!(w >= 1, "delta {i}: weight must be >= 1");
                let Some(slot) = edges.get_mut(&k) else {
                    // lint:allow(panic-free-serve): delta validation — a malformed churn script is a caller bug, asserted like the sibling arms above
                    panic!("delta {i}: SetWeight on missing edge {{{}, {}}}", k.0, k.1);
                };
                *slot = w;
            }
        }
    }
    let mut b = GraphBuilder::with_nodes(n);
    for (&(u, v), &w) in &edges {
        b.add_edge(NodeId(u), NodeId(v), w);
    }
    b.build()
}

/// What a batch of deltas invalidated, computed on the *final* graphs
/// only (see the module-level theorem).
pub struct DeltaImpact {
    /// `dirty[v]` — some distance out of `v` changed. Every `v` with
    /// `dirty[v] == false` has its full distance vector (and hence its
    /// decomposition ranges, landmark lists, and sorted positions)
    /// bit-identical between the two graphs.
    pub dirty: Vec<bool>,
    /// The dirty nodes, ascending.
    pub dirty_nodes: Vec<u32>,
    /// `min_p d_G(v, p)` over all changed-edge endpoints `p` (old
    /// graph); `INFINITY` when unreachable or no deltas.
    pub old_prox: Vec<Cost>,
    /// Same on the new graph.
    pub new_prox: Vec<Cost>,
    /// Distinct changed-edge endpoints, ascending.
    pub endpoints: Vec<u32>,
}

/// Compare per-endpoint distance columns between `g_old` and `g_new`
/// (two full Dijkstras per distinct endpoint) and reduce them to the
/// dirty set plus per-node proximity to the change set.
pub fn delta_impact(g_old: &Graph, g_new: &Graph, deltas: &[GraphDelta]) -> DeltaImpact {
    assert_eq!(g_old.n(), g_new.n(), "delta application never changes the node set");
    let n = g_old.n();
    let mut endpoints: Vec<u32> = deltas
        .iter()
        .flat_map(|d| {
            let (u, v) = d.endpoints();
            [u.0, v.0]
        })
        .collect();
    endpoints.sort_unstable();
    endpoints.dedup();

    // merge: per-shard (dirty, old_prox, new_prox) triples reduced by
    // elementwise OR / min / min — commutative and exact (u64), so the
    // result is independent of chunk count and merge order.
    let shards = crate::metrics::par_chunks(endpoints.len(), |range| {
        let mut dirty = vec![false; n];
        let mut old_prox = vec![INFINITY; n];
        let mut new_prox = vec![INFINITY; n];
        for pi in range {
            let p = NodeId(endpoints[pi]);
            let old = dijkstra(g_old, p).dist;
            let new = dijkstra(g_new, p).dist;
            for v in 0..n {
                if old[v] != new[v] {
                    dirty[v] = true;
                }
                old_prox[v] = old_prox[v].min(old[v]);
                new_prox[v] = new_prox[v].min(new[v]);
            }
        }
        (dirty, old_prox, new_prox)
    });
    let mut dirty = vec![false; n];
    let mut old_prox = vec![INFINITY; n];
    let mut new_prox = vec![INFINITY; n];
    for (sd, so, sn) in shards {
        for v in 0..n {
            dirty[v] |= sd[v];
            old_prox[v] = old_prox[v].min(so[v]);
            new_prox[v] = new_prox[v].min(sn[v]);
        }
    }
    let dirty_nodes: Vec<u32> = (0..n as u32).filter(|&v| dirty[v as usize]).collect();
    DeltaImpact { dirty, dirty_nodes, old_prox, new_prox, endpoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;
    use crate::graph_from_edges;
    use crate::metrics::apsp;

    fn path4() -> Graph {
        graph_from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4)])
    }

    #[test]
    fn apply_fail_restore_set() {
        let g = path4();
        let g2 = apply_deltas(
            &g,
            &[
                GraphDelta::EdgeFail { u: NodeId(1), v: NodeId(2) },
                GraphDelta::EdgeRestore { u: NodeId(2), v: NodeId(1), w: 7 },
                GraphDelta::SetWeight { u: NodeId(0), v: NodeId(1), w: 5 },
            ],
        );
        assert_eq!(g2.n(), 4);
        assert_eq!(g2.m(), 3);
        assert_eq!(g2.edge_weight(NodeId(1), NodeId(2)), Some(7));
        assert_eq!(g2.edge_weight(NodeId(0), NodeId(1)), Some(5));
        assert_eq!(g2.edge_weight(NodeId(2), NodeId(3)), Some(4));
    }

    #[test]
    fn apply_is_deterministic_in_net_effect() {
        let g = Family::Geometric.generate(60, 11);
        let (u, v, w) = g.all_edges().next().unwrap();
        // Two routes to the same final edge set.
        let a = apply_deltas(&g, &[GraphDelta::SetWeight { u, v, w: w + 1 }]);
        let b = apply_deltas(
            &g,
            &[
                GraphDelta::EdgeFail { u, v },
                GraphDelta::EdgeRestore { u: v, v: u, w: 99 },
                GraphDelta::SetWeight { u, v, w: w + 1 },
            ],
        );
        let mut wa = crate::wire::Writer::new();
        a.to_wire(&mut wa);
        let mut wb = crate::wire::Writer::new();
        b.to_wire(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    #[should_panic(expected = "EdgeFail on missing edge")]
    fn fail_missing_panics() {
        apply_deltas(&path4(), &[GraphDelta::EdgeFail { u: NodeId(0), v: NodeId(3) }]);
    }

    #[test]
    #[should_panic(expected = "EdgeRestore on present edge")]
    fn restore_present_panics() {
        apply_deltas(&path4(), &[GraphDelta::EdgeRestore { u: NodeId(0), v: NodeId(1), w: 1 }]);
    }

    #[test]
    #[should_panic(expected = "SetWeight on missing edge")]
    fn set_missing_panics() {
        apply_deltas(&path4(), &[GraphDelta::SetWeight { u: NodeId(0), v: NodeId(3), w: 1 }]);
    }

    /// The theorem, brute-forced: every node outside the computed dirty
    /// set must have a bit-identical APSP row across the mutation.
    #[test]
    fn clean_nodes_keep_whole_distance_vectors() {
        for (fam, seed) in
            [(Family::Geometric, 21u64), (Family::PrefAttach, 22), (Family::ErdosRenyi, 23)]
        {
            let g = fam.generate(90, seed);
            let edges: Vec<_> = g.all_edges().collect();
            let (u1, v1, w1) = edges[edges.len() / 3];
            let (u2, v2, _) = edges[2 * edges.len() / 3];
            let deltas = vec![
                GraphDelta::SetWeight { u: u1, v: v1, w: w1 * 3 + 1 },
                GraphDelta::EdgeFail { u: u2, v: v2 },
            ];
            let g2 = apply_deltas(&g, &deltas);
            let impact = delta_impact(&g, &g2, &deltas);
            let d_old = apsp(&g);
            let d_new = apsp(&g2);
            for v in g.nodes() {
                let row_changed = g.nodes().any(|x| d_old.d(v, x) != d_new.d(v, x));
                if !impact.dirty[v.idx()] {
                    assert!(!row_changed, "clean node {v:?} has a changed distance");
                }
                // Dirty is exact, not just sound: flagged ⇒ changed.
                if impact.dirty[v.idx()] {
                    assert!(row_changed, "node {v:?} flagged dirty but unchanged");
                }
            }
        }
    }

    #[test]
    fn proximity_columns_match_direct_dijkstra() {
        let g = Family::PrefAttach.generate(70, 31);
        let (u, v, w) = g.all_edges().nth(5).unwrap();
        let deltas = vec![GraphDelta::SetWeight { u, v, w: w + 9 }];
        let g2 = apply_deltas(&g, &deltas);
        let impact = delta_impact(&g, &g2, &deltas);
        assert_eq!(impact.endpoints, {
            let mut e = vec![u.0, v.0];
            e.sort_unstable();
            e
        });
        let ou = dijkstra(&g, u).dist;
        let ov = dijkstra(&g, v).dist;
        let nu = dijkstra(&g2, u).dist;
        let nv = dijkstra(&g2, v).dist;
        for x in 0..g.n() {
            assert_eq!(impact.old_prox[x], ou[x].min(ov[x]));
            assert_eq!(impact.new_prox[x], nu[x].min(nv[x]));
        }
    }

    #[test]
    fn empty_delta_batch_is_all_clean() {
        let g = path4();
        let g2 = apply_deltas(&g, &[]);
        let impact = delta_impact(&g, &g2, &[]);
        assert!(impact.dirty_nodes.is_empty());
        assert!(impact.endpoints.is_empty());
        assert!(impact.old_prox.iter().all(|&d| d == INFINITY));
    }
}
