//! Property-based tests for the graph substrate: Dijkstra against a
//! Floyd–Warshall oracle, metric axioms, ball/m-closest consistency,
//! and tree extraction invariants.

use graphkit::{
    ball, dijkstra, graph_from_edges, m_closest_in_set, Cost, Graph, NodeId, Tree, INFINITY,
};
use proptest::prelude::*;

/// A random (possibly disconnected) graph as an edge list.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (3usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 1u64..100), 0..(n * 2))
            .prop_map(|es| es.into_iter().filter(|(u, v, _)| u != v).collect::<Vec<_>>());
        (Just(n), edges)
    })
}

fn floyd_warshall(g: &Graph) -> Vec<Vec<Cost>> {
    let n = g.n();
    let mut d = vec![vec![INFINITY; n]; n];
    for (v, row) in d.iter_mut().enumerate() {
        row[v] = 0;
    }
    for (u, v, w) in g.all_edges() {
        d[u.idx()][v.idx()] = d[u.idx()][v.idx()].min(w);
        d[v.idx()][u.idx()] = d[v.idx()][u.idx()].min(w);
    }
    for m in 0..n {
        for a in 0..n {
            if d[a][m] == INFINITY {
                continue;
            }
            for b in 0..n {
                if d[m][b] == INFINITY {
                    continue;
                }
                let via = d[a][m] + d[m][b];
                if via < d[a][b] {
                    d[a][b] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Dijkstra equals Floyd–Warshall on every source.
    #[test]
    fn dijkstra_matches_oracle((n, edges) in arb_edges()) {
        let g = graph_from_edges(n, &edges);
        let oracle = floyd_warshall(&g);
        for s in 0..n as u32 {
            let sp = dijkstra(&g, NodeId(s));
            prop_assert_eq!(&sp.dist, &oracle[s as usize]);
        }
    }

    /// Reconstructed shortest paths have exactly the reported cost and
    /// consist of real edges.
    #[test]
    fn paths_cost_their_distance((n, edges) in arb_edges()) {
        let g = graph_from_edges(n, &edges);
        let sp = dijkstra(&g, NodeId(0));
        for v in 0..n as u32 {
            if let Some(path) = sp.path_to(NodeId(v)) {
                let mut cost = 0;
                for w in path.windows(2) {
                    cost += g.edge_weight(w[0], w[1]).expect("path edge must exist");
                }
                prop_assert_eq!(cost, sp.d(NodeId(v)));
            }
        }
    }

    /// `ball(u, r)` is exactly the distance-filtered node set, ordered
    /// by (distance, id).
    #[test]
    fn ball_matches_distances((n, edges) in arb_edges(), r in 1u64..300) {
        let g = graph_from_edges(n, &edges);
        let sp = dijkstra(&g, NodeId(0));
        let b = ball(&g, NodeId(0), r);
        let expect: usize =
            sp.dist.iter().filter(|&&d| d != INFINITY && d <= r).count();
        prop_assert_eq!(b.len(), expect);
        for w in b.windows(2) {
            prop_assert!(w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for (v, dist) in b {
            prop_assert_eq!(dist, sp.d(v));
        }
    }

    /// `m_closest_in_set` agrees with sorting the full distance vector.
    #[test]
    fn m_closest_matches_sort((n, edges) in arb_edges(), m in 1usize..10) {
        let g = graph_from_edges(n, &edges);
        let sp = dijkstra(&g, NodeId(0));
        let got = m_closest_in_set(&g, NodeId(0), m, |v| v.0 % 2 == 0);
        let mut expect: Vec<(Cost, u32)> = (0..n as u32)
            .filter(|v| v % 2 == 0 && sp.reachable(NodeId(*v)))
            .map(|v| (sp.d(NodeId(v)), v))
            .collect();
        expect.sort_unstable();
        expect.truncate(m);
        let got_pairs: Vec<(Cost, u32)> = got.iter().map(|&(v, d)| (d, v.0)).collect();
        prop_assert_eq!(got_pairs, expect);
    }

    /// SPT extraction: member depths equal graph distances; every tree
    /// edge is a graph edge of matching weight.
    #[test]
    fn spt_depths_are_distances((n, edges) in arb_edges()) {
        let g = graph_from_edges(n, &edges);
        let sp = dijkstra(&g, NodeId(0));
        let members: Vec<NodeId> =
            g.nodes().filter(|&v| sp.reachable(v)).collect();
        let t = Tree::from_sssp(&g, &sp, members);
        for ix in 0..t.size() as u32 {
            prop_assert_eq!(t.depth(ix), sp.d(t.graph_id(ix)));
            if let Some(p) = t.parent(ix) {
                let w = g
                    .edge_weight(t.graph_id(p), t.graph_id(ix))
                    .expect("tree edge must be a graph edge");
                prop_assert_eq!(w, t.parent_weight(ix));
            }
        }
    }

    /// On-demand truth equals the dense matrix on every queried pair,
    /// regardless of cache capacity, prefetch coverage, or thread
    /// count (including disconnected graphs, where both report
    /// INFINITY).
    #[test]
    fn on_demand_truth_matches_apsp(
        (n, edges) in arb_edges(),
        cap in 1usize..6,
        threads in 1usize..5,
    ) {
        let g = graph_from_edges(n, &edges);
        let d = graphkit::metrics::apsp(&g);
        let mut truth = graphkit::OnDemandTruth::with_capacity(&g, cap);
        // Prefetch an arbitrary slice of the pair space; the rest goes
        // through the bounded row cache.
        let prefetched: Vec<(NodeId, NodeId)> = (0..n as u32)
            .filter(|v| v % 2 == 0)
            .map(|v| (NodeId(v), NodeId((v + 1) % n as u32)))
            .collect();
        truth.prefetch_pairs(&prefetched, threads);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(truth.d(NodeId(u), NodeId(v)), d.d(NodeId(u), NodeId(v)));
            }
        }
    }

    /// CSR construction: neighbor lists sorted, degrees sum to 2m,
    /// ports invert.
    #[test]
    fn csr_invariants((n, edges) in arb_edges()) {
        let g = graph_from_edges(n, &edges);
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        for u in g.nodes() {
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbor");
            }
            for (p, &v) in nb.iter().enumerate() {
                prop_assert_eq!(g.endpoint(u, p as u32), NodeId(v));
                prop_assert_eq!(g.port_to(u, NodeId(v)), Some(p as u32));
            }
        }
    }
}
