#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # decomposition — sparse/dense neighborhood decomposition (§2)
//!
//! The paper's central device (Definition 1): around every node `u`,
//! a series of balls `A(u,0) = {u} ⊆ A(u,1) ⊆ … ⊆ A(u,k)` where each
//! ball has at least `n^{1/k}` times the nodes of the previous one
//! *and* at least twice its radius; the radius exponents are the
//! *ranges* `a(u,i)` (so `A(u,i) = B(u, 2^{a(u,i)})`).
//!
//! A level `i` is **dense** when the `n^{1/k}`-fold growth happened
//! within 3 octaves (`a(u,i+1) ≤ a(u,i)+3`), otherwise **sparse**
//! (Definition 2). Dense levels are handled with cover trees over the
//! subgraphs `G_i`, sparse levels with landmark trees; this split is
//! what removes the aspect ratio from the storage bound, because each
//! node's *extended range set* `R(u)` — the scales where it
//! participates in covers — has only `O(k)` members regardless of Δ.
//!
//! This crate computes the ranges, classifies levels, materializes
//! `L(u)`, `R(u)`, `F(u,i) = B(u, 2^{a(u,i)−1})` and
//! `E(u,i) = B(u, 2^{a(u,i+1)}/6)`, and verifies Lemma 2's dense-
//! neighborhood property per instance.

use graphkit::ids::{ceil_log2, octave_radius};
use graphkit::{Cost, DijkstraScratch, DistMatrix, Graph, NodeId};

/// The per-graph decomposition: all ranges `a(u, i)` plus the derived
/// range sets.
#[derive(Clone, Debug)]
pub struct Decomposition {
    k: usize,
    n: usize,
    /// `ranges[u * (k+1) + i] = a(u, i)` (radius exponents).
    ranges: Vec<u32>,
    /// `⌈log₂ Δ⌉` — the cap used when a ball cannot grow further.
    log_delta: u32,
}

impl Decomposition {
    /// Compute all ranges from a distance matrix. Parallel over nodes.
    ///
    /// Two engineering choices relative to the paper's Definition 1
    /// (both documented in DESIGN.md §"Substitutions"):
    ///
    /// * the cap is `⌈log₂ Δ⌉ + 3` rather than `⌈log₂ Δ⌉`, so
    ///   `2^cap ≥ 8Δ` and the top ball `B(u, 2^cap/6)` provably contains
    ///   the whole component;
    /// * `a(u, k)` is *forced* to the cap. This closes the coverage gap
    ///   at the last level: level `k−1` is then either sparse with
    ///   `E(u, k−1) = B(u, 2^cap/6) = V`, or dense with
    ///   `a(u, k−1) ≥ cap−3`, in which case the scale-`a(u,k−1)` cover
    ///   tree spans the component (every node's `R(v)` contains
    ///   `[cap−4, cap+1]` because `cap ∈ L(v)` for all `v`).
    pub fn build(d: &DistMatrix, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = d.n();
        assert!(n >= 2);
        let log_delta = ceil_log2(d.diameter().max(1)).max(1) + 3;
        let width = k + 1;
        // merge: per-node range rows, flattened in chunk (= node id) order.
        let ranges: Vec<u32> = graphkit::metrics::par_chunks(n, |nodes| {
            let mut out = vec![0u32; nodes.len() * width];
            for (row_out, u) in out.chunks_mut(width).zip(nodes) {
                compute_ranges(d, NodeId(u as u32), k, log_delta, row_out);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
        Decomposition { k, n, ranges, log_delta }
    }

    /// Compute all ranges without a distance matrix: one
    /// radius/size-bounded Dijkstra per level per node instead of a
    /// dense row. Computes the exact diameter first (matrix-free, via
    /// [`graphkit::diameter_matrix_free`]); pass a precomputed value
    /// through [`Decomposition::build_on_demand_with_diameter`] to
    /// reuse it. Identical output to [`Decomposition::build`].
    pub fn build_on_demand(g: &Graph, k: usize) -> Self {
        Self::build_on_demand_with_diameter(g, k, graphkit::diameter_matrix_free(g))
    }

    /// [`Decomposition::build_on_demand`] reusing an exact diameter.
    ///
    /// Per node, level `i` costs the ball holding the `n^{i/k}`-growth
    /// target — O(n^{(k−1)/k}) settles per node in total rather than a
    /// full Dijkstra, which is what lets ranges exist at 10⁵+ nodes.
    /// (Levels that cap at `⌈log₂ Δ⌉` before `i = k−1` degrade toward
    /// whole-component balls, exactly as the dense path degrades to
    /// full rows.)
    pub fn build_on_demand_with_diameter(g: &Graph, k: usize, diameter: Cost) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = g.n();
        assert!(n >= 2);
        let log_delta = ceil_log2(diameter.max(1)).max(1) + 3;
        let width = k + 1;
        // merge: per-node range rows, flattened in chunk (= node id) order.
        let ranges: Vec<u32> = graphkit::metrics::par_chunks(n, |nodes| {
            let mut scratch = DijkstraScratch::new(n);
            let mut out = vec![0u32; nodes.len() * width];
            for (row_out, u) in out.chunks_mut(width).zip(nodes) {
                compute_ranges_on_demand(g, &mut scratch, NodeId(u as u32), k, log_delta, row_out);
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
        Decomposition { k, n, ranges, log_delta }
    }

    /// The trade-off parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `⌈log₂ Δ⌉`, the largest radius exponent in `I`.
    pub fn log_delta(&self) -> u32 {
        self.log_delta
    }

    /// The range `a(u, i)` for `i ∈ {0, …, k}`.
    pub fn a(&self, u: NodeId, i: usize) -> u32 {
        debug_assert!(i <= self.k);
        self.ranges[u.idx() * (self.k + 1) + i]
    }

    /// Radius of `A(u, i)`: `2^{a(u,i)}` for `i ≥ 1`; 0 for `i = 0`
    /// (the paper sets `A(u,0) = {u}`). Saturating per
    /// [`octave_radius`] once the exponent leaves `u64` (see the cap
    /// documented there).
    pub fn ball_radius(&self, u: NodeId, i: usize) -> Cost {
        if i == 0 {
            0
        } else {
            octave_radius(self.a(u, i))
        }
    }

    /// Number of nodes in `A(u, i)`.
    pub fn ball_size(&self, d: &DistMatrix, u: NodeId, i: usize) -> usize {
        d.ball_size(u, self.ball_radius(u, i))
    }

    /// Is level `i ∈ {0, …, k−1}` dense for `u` (Definition 2)?
    pub fn is_dense(&self, u: NodeId, i: usize) -> bool {
        debug_assert!(i < self.k, "level classification needs a(u, i+1)");
        let a_i = self.a(u, i);
        let a_next = self.a(u, i + 1);
        a_i < a_next && a_next <= a_i + 3
    }

    /// The range set `L(u) = {a(u,i) : i ∈ K}` (sorted, deduplicated).
    pub fn range_set(&self, u: NodeId) -> Vec<u32> {
        let mut l: Vec<u32> = (0..=self.k).map(|i| self.a(u, i)).collect();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// The extended range set
    /// `R(u) = {i ∈ I : ∃a ∈ L(u), −1 ≤ a − i ≤ 4}` (sorted).
    pub fn extended_range_set(&self, u: NodeId) -> Vec<u32> {
        let mut r = Vec::new();
        for a in self.range_set(u) {
            let lo = a.saturating_sub(4);
            let hi = (a + 1).min(self.log_delta);
            for i in lo..=hi {
                r.push(i);
            }
        }
        r.sort_unstable();
        r.dedup();
        r
    }

    /// Is scale `i ∈ I` in `R(u)`? (Constant-time form used by the
    /// scheme when building the subgraphs `G_i`.)
    pub fn in_extended_range(&self, u: NodeId, i: u32) -> bool {
        if i > self.log_delta {
            return false;
        }
        (0..=self.k).any(|lvl| {
            let a = self.a(u, lvl);
            // −1 ≤ a − i ≤ 4  ⟺  a ≥ i − 1 and a ≤ i + 4.
            a + 1 >= i && a <= i + 4
        })
    }

    /// Members of `F(u, i) = B(u, 2^{a(u,i)−1})`, the region a dense
    /// level's cover tree is guaranteed to reach (Lemma 8).
    /// Membership test: `2·d(u,v) ≤ 2^{a(u,i)}`, evaluated as
    /// `d(u,v) ≤ 2^{a(u,i)}/2` so huge distances cannot overflow the
    /// doubled side.
    pub fn f_members(&self, d: &DistMatrix, u: NodeId, i: usize) -> Vec<u32> {
        let radius = self.f_radius(u, i);
        d.row(u)
            .iter()
            .enumerate()
            .filter(|&(_, &dist)| dist != graphkit::INFINITY && dist <= radius)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// [`Decomposition::f_members`] from the graph alone: one
    /// radius-bounded Dijkstra instead of a dense row. Identical
    /// output (ids ascending).
    pub fn f_members_on_demand(&self, g: &Graph, u: NodeId, i: usize) -> Vec<u32> {
        ball_ids(g, u, self.f_radius(u, i))
    }

    /// Largest integer distance inside `F(u, i)`: `⌊2^{a(u,i)}/2⌋`.
    pub fn f_radius(&self, u: NodeId, i: usize) -> Cost {
        octave_radius(self.a(u, i)) / 2
    }

    /// Members of `E(u, i) = B(u, 2^{a(u,i+1)}/6)`, the region a sparse
    /// level's landmark search is guaranteed to reach (Lemma 10).
    /// Membership test: `6·d(u,v) ≤ 2^{a(u,i+1)}`, evaluated as
    /// `d(u,v) ≤ 2^{a(u,i+1)}/6` (overflow-safe, same integer set).
    pub fn e_members(&self, d: &DistMatrix, u: NodeId, i: usize) -> Vec<u32> {
        debug_assert!(i < self.k);
        let radius = self.e_radius(u, i);
        d.row(u)
            .iter()
            .enumerate()
            .filter(|&(_, &dist)| dist != graphkit::INFINITY && dist <= radius)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// [`Decomposition::e_members`] from the graph alone: one
    /// radius-bounded Dijkstra instead of a dense row. Identical
    /// output (ids ascending).
    pub fn e_members_on_demand(&self, g: &Graph, u: NodeId, i: usize) -> Vec<u32> {
        debug_assert!(i < self.k);
        ball_ids(g, u, self.e_radius(u, i))
    }

    /// [`Decomposition::ball_size`] from the graph alone: one
    /// radius-bounded Dijkstra instead of a dense row.
    pub fn ball_size_on_demand(&self, g: &Graph, u: NodeId, i: usize) -> usize {
        graphkit::ball_size(g, u, self.ball_radius(u, i))
    }

    /// Radius of `E(u,i)` as an exact rational bound `2^{a(u,i+1)}/6`,
    /// returned as the largest integer distance that qualifies.
    pub fn e_radius(&self, u: NodeId, i: usize) -> Cost {
        octave_radius(self.a(u, i + 1)) / 6
    }

    /// Is `E(u, i)` the whole (connected) graph by construction? True
    /// exactly when `a(u,i+1)` hit the `⌈log₂ Δ⌉ + 3` cap *and* the
    /// cap's octave is exact, since then `2^{cap}/6 ≥ 8Δ/6 > Δ`. The
    /// scheme uses this to swap a Θ(n)-member enumeration for an O(1)
    /// "all nodes" scope.
    pub fn e_is_global(&self, u: NodeId, i: usize) -> bool {
        debug_assert!(i < self.k);
        self.a(u, i + 1) == self.log_delta && self.log_delta < 64
    }

    /// Serialize into a wire buffer (snapshot support).
    pub fn to_wire(&self, w: &mut graphkit::wire::Writer) {
        w.u64(self.k as u64);
        w.u64(self.n as u64);
        w.u32(self.log_delta);
        w.slice_u32(&self.ranges);
    }

    /// Inverse of [`Decomposition::to_wire`]; corrupt input is an
    /// `InvalidData` error, never a panic.
    pub fn from_wire(r: &mut graphkit::wire::Reader<'_>) -> std::io::Result<Self> {
        let k = r.u64()? as usize;
        let n = r.u64()? as usize;
        let log_delta = r.u32()?;
        let ranges = r.slice_u32()?;
        if k < 1 || n < 2 || log_delta < 4 {
            return Err(graphkit::wire::invalid("bad decomposition header"));
        }
        if ranges.len() != n * (k + 1) {
            return Err(graphkit::wire::invalid("decomposition range table has wrong length"));
        }
        for row in ranges.chunks(k + 1) {
            // Ranges are radius exponents: non-decreasing per node,
            // capped at log_delta, with a(u, k) forced to the cap.
            // lint:allow(panic-free-serve): chunks(k+1) yields rows of exactly k+1 > k elements, so row[k] is in bounds
            if row.windows(2).any(|p| p[0] > p[1]) || row[k] != log_delta {
                return Err(graphkit::wire::invalid("decomposition ranges are not monotone"));
            }
        }
        Ok(Decomposition { k, n, ranges, log_delta })
    }
}

/// Ids (ascending) of the ball `B(u, radius)` via one bounded Dijkstra.
fn ball_ids(g: &Graph, u: NodeId, radius: Cost) -> Vec<u32> {
    let sp = graphkit::dijkstra_bounded(g, u, radius);
    sp.dist
        .iter()
        .enumerate()
        .filter(|&(_, &dist)| dist != graphkit::INFINITY && dist <= radius)
        .map(|(v, _)| v as u32)
        .collect()
}

/// Compute `a(u, 0..=k)` into `out`.
fn compute_ranges(d: &DistMatrix, u: NodeId, k: usize, log_delta: u32, out: &mut [u32]) {
    let mut sorted: Vec<u64> = d.row(u).to_vec();
    sorted.sort_unstable();
    let n = d.n() as u64;
    // octave_radius keeps huge caps (⌈log₂Δ⌉ ≥ 61) from overflowing
    // the shift while still excluding INFINITY (unreachable) entries.
    let size_at = |j: u32| -> u64 { sorted.partition_point(|&x| x <= octave_radius(j)) as u64 };
    out[0] = 0;
    let mut prev_size = 1u64; // |A(u,0)| = 1
    for i in 1..=k {
        let prev_a = out[i - 1];
        // Smallest j > 0 with |B(u,2^j)| ≥ n^{1/k} · prev_size.
        // (For i ≥ 2 growth forces j > prev_a; scanning from prev_a+1
        // is safe because |B(u,2^{prev_a})| = prev_size < target. For
        // i = 1, prev_size = |{u}| ≤ |B(u,2^0)|, so start at j = 1.)
        let start = if i == 1 { 1 } else { prev_a + 1 };
        let mut chosen = None;
        for j in start..=log_delta {
            if grows_enough(size_at(j), prev_size, n, k as u32) {
                chosen = Some(j);
                break;
            }
        }
        let a_i = chosen.unwrap_or(log_delta);
        out[i] = a_i;
        prev_size = size_at(a_i);
    }
    // Coverage override: the top range always reaches the cap (see
    // `Decomposition::build` docs).
    out[k] = log_delta;
}

/// Matrix-free twin of [`compute_ranges`]: identical output, but each
/// level's crossing octave comes from a size-capped Dijkstra (the
/// `target`-th settled node's distance pins the smallest octave whose
/// ball reaches the growth target) instead of a sorted dense row.
fn compute_ranges_on_demand(
    g: &Graph,
    scratch: &mut DijkstraScratch,
    u: NodeId,
    k: usize,
    log_delta: u32,
    out: &mut [u32],
) {
    let n = g.n() as u64;
    out[0] = 0;
    let mut prev_size = 1u64; // |A(u,0)| = 1
    for i in 1..k {
        let start = if i == 1 { 1 } else { out[i - 1] + 1 };
        let a_i = match smallest_growth_target(prev_size, n, k as u32) {
            Some(target) if start <= log_delta => {
                scratch.run(g, u, graphkit::INFINITY - 1, target as usize);
                if (scratch.settled().len() as u64) < target {
                    log_delta // ball never grows enough: cap
                } else {
                    let d_target = scratch.settled()[target as usize - 1].0;
                    ceil_log2(d_target).max(start).min(log_delta)
                }
            }
            _ => log_delta,
        };
        out[i] = a_i;
        if i + 1 < k {
            scratch.run(g, u, octave_radius(a_i), usize::MAX);
            prev_size = scratch.settled().len() as u64;
        }
    }
    // Coverage override: the top range always reaches the cap (see
    // `Decomposition::build` docs).
    out[k] = log_delta;
}

/// Smallest integer `s` with `grows_enough(s, prev, n, k)`, i.e. the
/// ball size the next level must reach; `None` when even `s = n`
/// fails (the level caps at `⌈log₂ Δ⌉`).
fn smallest_growth_target(prev: u64, n: u64, k: u32) -> Option<u64> {
    if !grows_enough(n, prev, n, k) {
        return None;
    }
    let (mut lo, mut hi) = (prev, n); // invariant: ¬grows(lo), grows(hi)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if grows_enough(mid, prev, n, k) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Exact test `size ≥ n^{1/k} · prev` via `size^k ≥ n · prev^k` in
/// u128 (falls back to f64 only on overflow, which needs n > 2^25 at
/// k = 5 — beyond any workload here).
fn grows_enough(size: u64, prev: u64, n: u64, k: u32) -> bool {
    fn pow_checked(b: u64, e: u32) -> Option<u128> {
        let mut acc: u128 = 1;
        for _ in 0..e {
            acc = acc.checked_mul(b as u128)?;
        }
        Some(acc)
    }
    match (pow_checked(size, k), pow_checked(prev, k).and_then(|p| p.checked_mul(n as u128))) {
        (Some(l), Some(r)) => l >= r,
        _ => (size as f64) >= (n as f64).powf(1.0 / k as f64) * prev as f64,
    }
}

/// Result of checking Lemma 2 over all dense levels.
#[derive(Clone, Debug, Default)]
pub struct Lemma2Report {
    /// (u, i, v) triples checked.
    pub checked: usize,
    /// Triples where `a(u,i) ∉ R(v)`.
    pub violations: usize,
    /// Largest `|R(u)|` seen (the paper bounds it by `6(k+1)`).
    pub max_extended_range: usize,
}

/// Verify Lemma 2: for every `u`, dense level `i`, and `v ∈ F(u,i)`,
/// the scale `a(u,i)` belongs to `R(v)`.
pub fn verify_lemma2(d: &DistMatrix, dec: &Decomposition) -> Lemma2Report {
    let mut report = Lemma2Report::default();
    for u in 0..dec.n() as u32 {
        let u = NodeId(u);
        report.max_extended_range = report.max_extended_range.max(dec.extended_range_set(u).len());
        for i in 0..dec.k() {
            if !dec.is_dense(u, i) {
                continue;
            }
            let a = dec.a(u, i);
            for v in dec.f_members(d, u, i) {
                report.checked += 1;
                if !dec.in_extended_range(NodeId(v), a) {
                    report.violations += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    fn dec_for(fam: Family, n: usize, k: usize, seed: u64) -> (DistMatrix, Decomposition) {
        let g = fam.generate(n, seed);
        let d = apsp(&g);
        let dec = Decomposition::build(&d, k);
        (d, dec)
    }

    #[test]
    fn ranges_monotone_and_capped() {
        for fam in [Family::ErdosRenyi, Family::Ring, Family::ExpRing] {
            let (_, dec) = dec_for(fam, 150, 3, 31);
            for u in 0..150u32 {
                let u = NodeId(u);
                assert_eq!(dec.a(u, 0), 0);
                for i in 0..3 {
                    assert!(dec.a(u, i) <= dec.a(u, i + 1), "{}: ranges not monotone", fam.label());
                    assert!(dec.a(u, i + 1) <= dec.log_delta());
                }
            }
        }
    }

    #[test]
    fn growth_condition_holds() {
        // Whenever a(u,i+1) was *not* capped at logΔ, the ball must have
        // grown by ≥ n^{1/k}; and 2^{a(u,i+1)} is the smallest such octave.
        let (d, dec) = dec_for(Family::Geometric, 200, 3, 32);
        let n = 200u64;
        for u in (0..200u32).step_by(13) {
            let u = NodeId(u);
            for i in 0..3usize {
                let a_next = dec.a(u, i + 1);
                let prev_size = dec.ball_size(&d, u, i) as u64;
                let next_size = d.ball_size(u, octave_radius(a_next)) as u64;
                if a_next < dec.log_delta() {
                    assert!(
                        grows_enough(next_size, prev_size, n, 3),
                        "growth violated at u={u:?} i={i}"
                    );
                    // Minimality: one octave earlier must not suffice
                    // (unless it is not a positive integer).
                    if a_next >= 2 && a_next - 1 > if i == 0 { 0 } else { dec.a(u, i) } {
                        let smaller = d.ball_size(u, octave_radius(a_next - 1)) as u64;
                        assert!(
                            !grows_enough(smaller, prev_size, n, 3),
                            "a(u,{}) not minimal at u={u:?}",
                            i + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dense_classification_matches_definition() {
        let (_, dec) = dec_for(Family::ErdosRenyi, 180, 3, 33);
        for u in 0..180u32 {
            let u = NodeId(u);
            for i in 0..3usize {
                let (a, b) = (dec.a(u, i), dec.a(u, i + 1));
                assert_eq!(dec.is_dense(u, i), a < b && b <= a + 3);
            }
        }
    }

    #[test]
    fn extended_range_is_union_of_windows() {
        let (_, dec) = dec_for(Family::Grid, 144, 2, 34);
        for u in (0..144u32).step_by(7) {
            let u = NodeId(u);
            let r = dec.extended_range_set(u);
            for &i in &r {
                assert!(dec.in_extended_range(u, i));
                assert!(
                    dec.range_set(u).iter().any(|&a| a + 1 >= i && a <= i + 4),
                    "scale {i} in R(u) without a witness"
                );
            }
            // Complement check on a sample of scales.
            for i in 0..=dec.log_delta() {
                assert_eq!(dec.in_extended_range(u, i), r.binary_search(&i).is_ok());
            }
        }
    }

    #[test]
    fn extended_range_is_o_of_k() {
        // |R(u)| ≤ 6(k+1) regardless of Δ — the scale-free heart.
        for fam in [Family::ExpRing, Family::ExpTree] {
            for k in [1usize, 2, 4] {
                let (_, dec) = dec_for(fam, 120, k, 35);
                for u in 0..120u32 {
                    let r = dec.extended_range_set(NodeId(u)).len();
                    assert!(r <= 6 * (k + 1), "{} k={k}: |R(u)|={r} exceeds 6(k+1)", fam.label());
                }
            }
        }
    }

    #[test]
    fn lemma2_holds_on_all_families() {
        for fam in Family::ALL {
            let (d, dec) = dec_for(fam, 100, 3, 36);
            let rep = verify_lemma2(&d, &dec);
            assert_eq!(rep.violations, 0, "{}: Lemma 2 violated", fam.label());
        }
    }

    #[test]
    fn lemma2_exercised_on_dense_graphs() {
        // ER with avg degree 8 at n=200 has genuinely dense levels.
        let (d, dec) = dec_for(Family::ErdosRenyi, 200, 2, 37);
        let rep = verify_lemma2(&d, &dec);
        assert!(rep.checked > 0, "no dense (u,i,v) triples checked");
        assert_eq!(rep.violations, 0);
    }

    #[test]
    fn f_and_e_members_are_balls() {
        let (d, dec) = dec_for(Family::Geometric, 150, 3, 38);
        for u in (0..150u32).step_by(11) {
            let u = NodeId(u);
            for i in 1..3usize {
                let f = dec.f_members(&d, u, i);
                assert!(f.contains(&u.0), "u must lie in F(u,i)");
                // Divided form of 2·d ≤ 2^{a(u,i)} — same integer set,
                // and safe when a(u,i) ≥ 64 (octave_radius saturates).
                let bound = dec.f_radius(u, i);
                for &v in &f {
                    assert!(d.d(u, NodeId(v)) <= bound);
                }
                let e = dec.e_members(&d, u, i - 1);
                assert!(e.contains(&u.0));
                for &v in &e {
                    assert!(d.d(u, NodeId(v)) <= dec.e_radius(u, i - 1));
                }
            }
        }
    }

    #[test]
    fn e_subset_of_next_ball() {
        // E(u,i) ⊆ A(u,i+1) since 2^{a}/6 < 2^{a}.
        let (d, dec) = dec_for(Family::PrefAttach, 130, 3, 39);
        for u in (0..130u32).step_by(9) {
            let u = NodeId(u);
            for i in 0..3usize {
                let r_next = dec.ball_radius(u, i + 1);
                for v in dec.e_members(&d, u, i) {
                    assert!(d.d(u, NodeId(v)) <= r_next);
                }
            }
        }
    }

    #[test]
    fn sparse_levels_dominate_on_exp_ring() {
        // On the exponential ring, ball sizes grow slowly per octave, so
        // most levels must be sparse.
        let (_, dec) = dec_for(Family::ExpRing, 100, 3, 40);
        let mut dense = 0;
        let mut total = 0;
        for u in 0..100u32 {
            for i in 0..3usize {
                total += 1;
                if dec.is_dense(NodeId(u), i) {
                    dense += 1;
                }
            }
        }
        assert!(dense * 2 < total, "exp-ring unexpectedly dense: {dense}/{total}");
    }

    #[test]
    fn dense_levels_dominate_on_complete_like() {
        // On ER with high degree, the whole graph fits in few octaves:
        // the first level is dense for most nodes.
        let (_, dec) = dec_for(Family::ErdosRenyi, 150, 2, 41);
        let dense0 = (0..150u32).filter(|&u| dec.is_dense(NodeId(u), 0)).count();
        assert!(dense0 > 75, "expected mostly-dense level 0, got {dense0}/150");
    }

    #[test]
    fn on_demand_build_matches_dense() {
        for fam in [Family::ErdosRenyi, Family::ExpRing, Family::Geometric, Family::ExpTree] {
            for k in [1usize, 2, 3] {
                let g = fam.generate(120, 61);
                let d = apsp(&g);
                let dense = Decomposition::build(&d, k);
                let od = Decomposition::build_on_demand(&g, k);
                assert_eq!(dense.log_delta(), od.log_delta(), "{} k={k}", fam.label());
                for u in 0..g.n() as u32 {
                    for i in 0..=k {
                        assert_eq!(
                            dense.a(NodeId(u), i),
                            od.a(NodeId(u), i),
                            "{} k={k} u={u} i={i}",
                            fam.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn on_demand_members_match_dense() {
        let g = Family::Geometric.generate(140, 62);
        let d = apsp(&g);
        let dec = Decomposition::build(&d, 3);
        for u in (0..140u32).step_by(7) {
            let u = NodeId(u);
            for i in 0..3usize {
                assert_eq!(dec.e_members(&d, u, i), dec.e_members_on_demand(&g, u, i));
                if i >= 1 {
                    assert_eq!(dec.f_members(&d, u, i), dec.f_members_on_demand(&g, u, i));
                }
                assert_eq!(dec.ball_size(&d, u, i), dec.ball_size_on_demand(&g, u, i));
            }
        }
    }

    #[test]
    fn near_u64_max_weights_do_not_overflow() {
        // One edge near u64::MAX pushes ⌈log₂Δ⌉ to 63, so the +3 cap
        // would shift past the u64 range without the saturating
        // octave_radius — this used to panic in debug builds.
        let g = graphkit::graph_from_edges(
            4,
            &[(0, 1, u64::MAX - 2), (1, 2, 1), (2, 3, 7), (3, 0, u64::MAX / 2)],
        );
        let d = apsp(&g);
        for k in [1usize, 2, 3] {
            let dense = Decomposition::build(&d, k);
            let od = Decomposition::build_on_demand(&g, k);
            assert_eq!(dense.log_delta(), od.log_delta());
            assert!(dense.log_delta() >= 64, "cap must exceed the shift range");
            for u in 0..4u32 {
                let u = NodeId(u);
                for i in 0..=k {
                    assert_eq!(dense.a(u, i), od.a(u, i));
                    // Saturated radii stay finite and ordered.
                    assert!(dense.ball_radius(u, i) < graphkit::INFINITY);
                }
                for i in 0..k {
                    assert_eq!(dense.e_members(&d, u, i), dense.e_members_on_demand(&g, u, i));
                    assert!(dense.e_radius(u, i) < graphkit::INFINITY);
                    // Divided-membership path at range exponents ≥ 64:
                    // every member satisfies d ≤ ⌊2^{a}/6⌋ exactly (the
                    // multiplied/shifted form `6·d ≤ 1 << a` would
                    // overflow the shift here).
                    let er = dense.e_radius(u, i);
                    for v in 0..4u32 {
                        let dv = d.d(u, NodeId(v));
                        assert_eq!(
                            dense.e_members(&d, u, i).contains(&v),
                            dv != graphkit::INFINITY && dv <= er
                        );
                    }
                }
                for i in 1..=k {
                    assert_eq!(dense.f_members(&d, u, i), dense.f_members_on_demand(&g, u, i));
                    let fr = dense.f_radius(u, i);
                    for v in 0..4u32 {
                        let dv = d.d(u, NodeId(v));
                        assert_eq!(
                            dense.f_members(&d, u, i).contains(&v),
                            dv != graphkit::INFINITY && dv <= fr
                        );
                    }
                }
                // Extended ranges and classification stay computable.
                let _ = dense.extended_range_set(u);
                let _ = dense.is_dense(u, 0);
            }
        }
    }

    #[test]
    fn on_demand_handles_disconnected_graphs() {
        let g = graphkit::graph_from_edges(
            8,
            &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (4, 5, 9), (5, 6, 9), (6, 7, 9)],
        );
        let d = apsp(&g);
        for k in [1usize, 2, 3] {
            let dense = Decomposition::build(&d, k);
            let od = Decomposition::build_on_demand(&g, k);
            for u in 0..8u32 {
                for i in 0..=k {
                    assert_eq!(dense.a(NodeId(u), i), od.a(NodeId(u), i), "k={k} u={u} i={i}");
                }
            }
        }
    }

    #[test]
    fn grows_enough_exact_cases() {
        // size^k >= n * prev^k: 4^2 = 16 >= 16 * 1.
        assert!(grows_enough(4, 1, 16, 2));
        assert!(!grows_enough(3, 1, 16, 2));
        // Equality boundary with prev > 1: (6)^2 = 36 >= 9 * 4 = 36.
        assert!(grows_enough(6, 2, 9, 2));
        assert!(!grows_enough(5, 2, 9, 2));
    }
}
