//! Property-based tests for the sparse/dense decomposition on random
//! weighted graphs: Definition 1 exactness, Lemma 2, and the O(k)
//! extended-range bound at arbitrary aspect ratios.

use decomposition::{verify_lemma2, Decomposition};
use graphkit::gen::WeightDist;
use graphkit::metrics::apsp;
use graphkit::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_instance() -> impl Strategy<Value = (graphkit::Graph, usize)> {
    (6usize..50, 1usize..5, any::<u64>(), 0u32..30).prop_map(|(n, k, seed, wexp)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Tree backbone + a few extras; power-of-two weights sweep the
        // aspect ratio up to 2^30 within the strategy.
        let g =
            graphkit::gen::erdos_renyi(n, 0.05, WeightDist::PowerOfTwo { max_exp: wexp }, &mut rng);
        (g, k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Definition 1: a(u,0)=0; each a(u,i+1) is minimal for the
    /// n^{1/k} growth unless capped; the final range hits the cap.
    #[test]
    fn ranges_well_formed((g, k) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let dec = Decomposition::build(&d, k);
        let n = g.n() as f64;
        let factor = n.powf(1.0 / k as f64);
        for u in 0..g.n() as u32 {
            let u = NodeId(u);
            prop_assert_eq!(dec.a(u, 0), 0);
            prop_assert_eq!(dec.a(u, k), dec.log_delta(), "top range must be capped");
            for i in 0..k {
                prop_assert!(dec.a(u, i) <= dec.a(u, i + 1));
                let a_next = dec.a(u, i + 1);
                if a_next < dec.log_delta() {
                    // Growth achieved (with float slack on the boundary).
                    let prev = dec.ball_size(&d, u, i) as f64;
                    let next = d.ball_size(u, graphkit::ids::octave_radius(a_next)) as f64;
                    prop_assert!(next + 1e-9 >= factor * prev,
                        "growth failed at u={:?} i={}", u, i);
                }
            }
        }
    }

    /// Lemma 2 and |R(u)| ≤ 6(k+1) on arbitrary aspect ratios.
    #[test]
    fn lemma2_and_range_bound((g, k) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let dec = Decomposition::build(&d, k);
        let rep = verify_lemma2(&d, &dec);
        prop_assert_eq!(rep.violations, 0);
        prop_assert!(rep.max_extended_range <= 6 * (k + 1));
    }

    /// E(u,i) ⊆ A(u,i+1) and F(u,i) ⊆ A(u,i); u belongs to both.
    #[test]
    fn guarantee_regions_nest((g, k) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let dec = Decomposition::build(&d, k);
        for u in (0..g.n() as u32).step_by(3) {
            let u = NodeId(u);
            for i in 0..k {
                let e = dec.e_members(&d, u, i);
                prop_assert!(e.contains(&u.0));
                for &v in &e {
                    prop_assert!(d.d(u, NodeId(v)) <= dec.ball_radius(u, i + 1));
                }
                if i >= 1 {
                    let f = dec.f_members(&d, u, i);
                    prop_assert!(f.contains(&u.0));
                    for &v in &f {
                        prop_assert!(d.d(u, NodeId(v)) <= dec.ball_radius(u, i));
                    }
                }
            }
        }
    }

    /// The level-k ball covers the whole (connected) graph: coverage
    /// of the phase router's final level.
    #[test]
    fn top_level_covers_graph((g, k) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let dec = Decomposition::build(&d, k);
        for u in (0..g.n() as u32).step_by(5) {
            let u = NodeId(u);
            // E(u, k−1) uses a(u,k) = cap, with 2^cap ≥ 8·diam:
            // every node satisfies 6·d ≤ 2^cap.
            let e = dec.e_members(&d, u, k - 1);
            prop_assert_eq!(e.len(), g.n(), "E(u,k-1) must be V");
        }
    }
}
