//! Thorup–Zwick approximate distance oracles (\[30\] in the paper — the
//! machinery behind the labeled scheme \[29\] that Theorem 1 is measured
//! against).
//!
//! For a parameter `k ≥ 1`: preprocessing stores `Õ(k·n^{1/k})` words
//! per node (pivots + *bunch* distances), and a query returns an
//! estimate `d(u,v) ≤ d̃(u,v) ≤ (2k−1)·d(u,v)` in `O(k)` time by the
//! classic pivot-swapping walk. Included because a routing library's
//! users routinely need distance *estimates* alongside routes, and
//! because experiment X2's labeled column builds on the same bunches.

use std::collections::HashMap;

use graphkit::bits::{bits_for_distance, bits_for_node};
use graphkit::{Cost, DistMatrix, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Thorup–Zwick approximate distance oracle.
pub struct DistanceOracle {
    k: usize,
    /// `pivots[u][i]` = (p_i(u), d(u, p_i(u))).
    pivots: Vec<Vec<(u32, Cost)>>,
    /// `bunch[u]`: w → d(u, w) for every w in B(u).
    bunch: Vec<HashMap<u32, Cost>>,
}

impl DistanceOracle {
    /// Preprocess from a distance matrix (the oracle keeps only the
    /// sampled structures, not the matrix).
    pub fn build(d: &DistMatrix, k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        let n = d.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = (n as f64).powf(-1.0 / k as f64);
        // A_0 ⊇ … ⊇ A_{k−1}, A_{k−1} forced nonempty.
        let mut levels: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        for _ in 1..k {
            let next: Vec<u32> =
                levels.last().unwrap().iter().copied().filter(|_| rng.gen_bool(p)).collect();
            levels.push(next);
        }
        if levels[k - 1].is_empty() {
            let seed_node = levels.iter().rev().find(|l| !l.is_empty()).map(|l| l[0]).unwrap_or(0);
            for level in levels.iter_mut().skip(1) {
                if level.is_empty() {
                    level.push(seed_node);
                }
            }
        }
        let mut level_of = vec![0usize; n];
        for (i, level) in levels.iter().enumerate() {
            for &w in level {
                level_of[w as usize] = i;
            }
        }
        // Pivots (closest member per level, ties by id).
        let mut pivots = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let row = d.row(NodeId(u));
            let per_level: Vec<(u32, Cost)> = (0..k)
                .map(|i| {
                    let w = *levels[i]
                        .iter()
                        .min_by_key(|&&w| (row[w as usize], w))
                        .expect("level nonempty");
                    (w, row[w as usize])
                })
                .collect();
            pivots.push(per_level);
        }
        // Bunches: w ∈ B(u) iff d(u,w) < d(u, p_{level(w)+1}(u)); the
        // top level joins every bunch.
        let mut bunch: Vec<HashMap<u32, Cost>> = (0..n).map(|_| HashMap::new()).collect();
        for u in 0..n as u32 {
            let row = d.row(NodeId(u));
            for w in 0..n as u32 {
                let i = level_of[w as usize];
                let member =
                    if i >= k - 1 { true } else { row[w as usize] < pivots[u as usize][i + 1].1 };
                if member {
                    bunch[u as usize].insert(w, row[w as usize]);
                }
            }
        }
        DistanceOracle { k, pivots, bunch }
    }

    /// The trade-off parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Size of `B(u)`.
    pub fn bunch_size(&self, u: NodeId) -> usize {
        self.bunch[u.idx()].len()
    }

    /// The classic O(k) query: estimate `d(u, v)` within factor 2k−1.
    pub fn query(&self, u: NodeId, v: NodeId) -> Cost {
        if u == v {
            return 0;
        }
        let (mut u, mut v) = (u, v);
        // Invariant: w = p_i(u) and duw = d(u, w), maintained from the
        // pivot table (w need not be in u's bunch).
        let mut w = u.0;
        let mut duw: Cost = 0;
        let mut i = 0usize;
        loop {
            if let Some(&dvw) = self.bunch[v.idx()].get(&w) {
                return duw + dvw;
            }
            i += 1;
            debug_assert!(i < self.k, "top-level pivot must be in every bunch");
            std::mem::swap(&mut u, &mut v);
            let (pw, pd) = self.pivots[u.idx()][i];
            w = pw;
            duw = pd;
        }
    }

    /// Storage bits at `u`: pivots + bunch entries.
    pub fn node_bits(&self, u: NodeId, n: usize) -> u64 {
        let id = bits_for_node(n);
        let mut bits =
            self.pivots[u.idx()].iter().map(|&(_, d)| id + bits_for_distance(d)).sum::<u64>();
        for &d in self.bunch[u.idx()].values() {
            bits += id + bits_for_distance(d);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    fn check(fam: Family, n: usize, k: usize, seed: u64) {
        let g = fam.generate(n, seed);
        let d = apsp(&g);
        let oracle = DistanceOracle::build(&d, k, seed);
        let bound = (2 * k - 1) as f64;
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let est = oracle.query(NodeId(u), NodeId(v));
                let exact = d.d(NodeId(u), NodeId(v));
                assert!(est >= exact, "{}: underestimate {est} < {exact}", fam.label());
                assert!(
                    est as f64 <= bound * exact as f64 + 1e-9,
                    "{}: {u}->{v} est {est} > (2k-1)*{exact}",
                    fam.label()
                );
            }
        }
    }

    #[test]
    fn within_2k_minus_1_on_families() {
        for fam in [Family::Geometric, Family::ErdosRenyi, Family::ExpRing] {
            for k in [1usize, 2, 3] {
                check(fam, 80, k, 0xD0 + k as u64);
            }
        }
    }

    #[test]
    fn k1_is_exact() {
        let g = Family::Grid.generate(49, 0xD5);
        let d = apsp(&g);
        let oracle = DistanceOracle::build(&d, 1, 0xD5);
        for u in 0..49u32 {
            for v in 0..49u32 {
                assert_eq!(oracle.query(NodeId(u), NodeId(v)), d.d(NodeId(u), NodeId(v)));
            }
        }
    }

    #[test]
    fn bunches_shrink_with_k() {
        let g = Family::Geometric.generate(300, 0xD6);
        let d = apsp(&g);
        let o1 = DistanceOracle::build(&d, 1, 0xD6);
        let o3 = DistanceOracle::build(&d, 3, 0xD6);
        let mean = |o: &DistanceOracle| -> f64 {
            (0..300u32).map(|u| o.bunch_size(NodeId(u))).sum::<usize>() as f64 / 300.0
        };
        assert_eq!(mean(&o1), 300.0, "k=1 bunch is everything");
        assert!(mean(&o3) < 120.0, "k=3 bunches should be far below n: {}", mean(&o3));
    }

    #[test]
    fn query_symmetric_enough() {
        // The estimate need not be symmetric in theory, but must obey
        // the bound both ways; sanity-check both directions.
        let g = Family::PrefAttach.generate(100, 0xD7);
        let d = apsp(&g);
        let oracle = DistanceOracle::build(&d, 2, 0xD7);
        for u in (0..100u32).step_by(7) {
            for v in (0..100u32).step_by(11) {
                let a = oracle.query(NodeId(u), NodeId(v));
                let b = oracle.query(NodeId(v), NodeId(u));
                let exact = d.d(NodeId(u), NodeId(v));
                assert!(a >= exact && b >= exact);
                assert!(a <= 3 * exact && b <= 3 * exact);
            }
        }
    }

    #[test]
    fn storage_accounted() {
        let g = Family::Geometric.generate(120, 0xD8);
        let d = apsp(&g);
        let oracle = DistanceOracle::build(&d, 3, 0xD8);
        for u in 0..120u32 {
            assert!(oracle.node_bits(NodeId(u), 120) > 0);
        }
    }
}
