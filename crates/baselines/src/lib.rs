#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # baselines — the comparison schemes of the paper's frontier (§1.3)
//!
//! Four reference points the experiments measure the AGM scheme
//! against:
//!
//! | id | scheme | model | stretch | space/node | scale-free |
//! |----|--------|-------|---------|------------|------------|
//! | B1 | [`ShortestPathTables`] | name-indep. | 1 | Ω(n log n) | yes |
//! | B2 | [`HierarchicalScheme`] | name-indep. | O(k) | Õ(n^{1/k} **log Δ**) | **no** |
//! | B3 | [`LandmarkChaining`] | name-indep. | **O(2^k)-shaped** | Õ(n^{1/k}) | yes |
//! | B4 | [`TzLabeled`] | **labeled** | 4k−5 | Õ(n^{1/k}) | yes |
//! | — | [`DistanceOracle`] | distance queries | est ≤ (2k−1)·d | Õ(k·n^{1/k}) | yes |
//!
//! B2 is the Awerbuch–Peleg \[10\] / AGM DISC'04 \[3\] line the paper
//! de-scales; B3 is the pre-2006 scale-free line (\[6, 7, 8\]) whose
//! exponential stretch Theorem 1 eliminates; B4 is the labeled-model
//! bound \[29\] that name-independent schemes chase.

pub mod distance_oracle;
pub mod exponential;
pub mod hierarchical;
pub mod shortest_path;
pub mod tz_labeled;

pub use distance_oracle::DistanceOracle;
pub use exponential::LandmarkChaining;
pub use hierarchical::HierarchicalScheme;
pub use shortest_path::ShortestPathTables;
pub use tz_labeled::{TzLabel, TzLabeled};

// Every baseline router must stay shareable across threads so
// `sim::evaluate_parallel` can shard pair workloads over them.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<ShortestPathTables>();
    assert_sync::<HierarchicalScheme>();
    assert_sync::<LandmarkChaining>();
    assert_sync::<TzLabeled>();
    assert_sync::<DistanceOracle>();
};
