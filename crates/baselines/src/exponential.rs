//! B3 — scale-free landmark chaining with exponential stretch
//! (in the spirit of Awerbuch–Bar-Noy–Linial–Peleg \[7, 8\] and
//! Arias et al. \[6\]).
//!
//! Before this paper, the only scale-free name-independent schemes paid
//! `O(2^k)` stretch. This baseline reproduces that *shape* with the
//! classic mechanism: a `k`-level landmark hierarchy where every node
//! registers its location at its closest level-`i` landmark, and a
//! search climbs landmark to landmark. Each climb leg is bounded by the
//! distance to the next-level landmark of the *current* position, so
//! the search drifts — and the worst-case accumulated drift doubles
//! per level: exponential stretch, independent of Δ.
//!
//! Experiment X1 plots this scheme's stretch against the paper's O(k).

use graphkit::bits::{bits_for_distance, bits_for_node};
use graphkit::{dijkstra, DistMatrix, Graph, NodeId};
use landmarks::LandmarkHierarchy;
use sim::{RouteTrace, Router};

/// Registration record: the full path from a landmark to a node.
struct Registration {
    node: u32,
    /// Path from the landmark to the node (inclusive endpoints).
    path: Vec<u32>,
    cost: u64,
}

/// Per-node state: paths to its landmark of each level.
struct NodeState {
    /// `up[i]` = (landmark id, path from this node to it, cost).
    up: Vec<(u32, Vec<u32>, u64)>,
}

/// The exponential-stretch landmark-chaining scheme.
pub struct LandmarkChaining {
    g: Graph,
    k: usize,
    /// Registrations stored *at* each landmark, sorted by node id.
    registry: Vec<Vec<Registration>>,
    nodes: Vec<NodeState>,
}

impl LandmarkChaining {
    /// Build with a fresh hierarchy; the top level is collapsed to a
    /// single deterministic root so searches always terminate.
    pub fn build(g: Graph, k: usize, seed: u64) -> Self {
        let d = graphkit::apsp(&g);
        Self::build_with_matrix(g, &d, k, seed)
    }

    /// The level sets the scheme registers at: levels 1..k−1 from the
    /// hierarchy (empty levels collapse to node 0) plus a single root
    /// level, shared by both constructors.
    fn level_sets(hier: &LandmarkHierarchy, k: usize) -> Vec<Vec<u32>> {
        let mut level_sets: Vec<Vec<u32>> = Vec::new();
        for i in 1..k {
            let mut l = hier.level(i).to_vec();
            if l.is_empty() {
                l = vec![0];
            }
            level_sets.push(l);
        }
        let root = level_sets.last().map(|l| l[0]).unwrap_or(0);
        level_sets.push(vec![root]);
        level_sets
    }

    /// Build reusing a distance matrix.
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, k: usize, seed: u64) -> Self {
        assert!(d.connected(), "landmark chaining requires a connected graph");
        let n = g.n();
        let hier = LandmarkHierarchy::sample(n, k.max(2), seed);
        let level_sets = Self::level_sets(&hier, k);
        // Closest landmark per level per node (ties by id).
        let sps: Vec<_> = graphkit::metrics::par_per_node(&g, |u| dijkstra::dijkstra(&g, u));
        let closest = |u: u32, set: &[u32]| -> u32 {
            *set.iter()
                .min_by_key(|&&c| (d.d(NodeId(u), NodeId(c)), c))
                .expect("level set nonempty")
        };
        let mut nodes = Vec::with_capacity(n);
        let mut registry: Vec<Vec<Registration>> = (0..n).map(|_| Vec::new()).collect();
        for u in 0..n as u32 {
            let mut up = Vec::with_capacity(level_sets.len());
            for set in &level_sets {
                let l = closest(u, set);
                let path: Vec<u32> =
                    sps[u as usize].path_to(NodeId(l)).unwrap().iter().map(|x| x.0).collect();
                let cost = d.d(NodeId(u), NodeId(l));
                // Register u at l (path from l to u = reverse).
                let mut rp: Vec<u32> = path.clone();
                rp.reverse();
                up.push((l, path, cost));
                registry[l as usize].push(Registration { node: u, path: rp, cost });
            }
            nodes.push(NodeState { up });
        }
        for r in &mut registry {
            r.sort_unstable_by_key(|x| x.node);
            // A landmark serving several levels (e.g. the collapsed
            // root) would otherwise store the same node once per level.
            r.dedup_by_key(|x| x.node);
        }
        LandmarkChaining { g, k: level_sets.len(), registry, nodes }
    }

    /// Build without ever materializing a dense distance matrix: one
    /// Dijkstra per *landmark* (≈ n^{1/2} of them at the default k)
    /// instead of APSP plus one per node — O(L·n) memory and work, so
    /// the scheme assembles at 10⁵–10⁶ nodes where `build` cannot.
    ///
    /// Landmark choices and registration costs are identical to
    /// [`Self::build_with_matrix`] (same hierarchy, same `(distance,
    /// id)` tie-break); stored walks — and therefore exact storage
    /// bits — may differ among equal-cost shortest paths because they
    /// are extracted from the landmark's shortest-path tree rather
    /// than the node's.
    pub fn build_on_demand(g: Graph, k: usize, seed: u64) -> Self {
        let n = g.n();
        let hier = LandmarkHierarchy::sample(n, k.max(2), seed);
        let level_sets = Self::level_sets(&hier, k);
        let num_levels = level_sets.len();
        let mut landmarks: Vec<u32> = level_sets.concat();
        landmarks.sort_unstable();
        landmarks.dedup();
        // levels_of[landmark] = indices of the level sets containing it.
        let mut levels_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, set) in level_sets.iter().enumerate() {
            for &l in set {
                levels_of[l as usize].push(j);
            }
        }
        let threads = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1);
        let chunk = landmarks.len().div_ceil(threads);

        // Pass 1: per-landmark distance rows, folded into the closest
        // landmark per (node, level) under the (distance, id) order.
        // Each worker folds its landmark chunk locally; the sequential
        // merge keeps the result deterministic in any thread count.
        const NONE: (u64, u32) = (u64::MAX, u32::MAX);
        let mut folds: Vec<Vec<(u64, u32)>> =
            vec![Vec::new(); landmarks.len().div_ceil(chunk.max(1))];
        let (g_ref, levels_of_ref) = (&g, &levels_of);
        crossbeam::scope(|s| {
            for (slot, chunk_lms) in folds.iter_mut().zip(landmarks.chunks(chunk.max(1))) {
                s.spawn(move |_| {
                    let mut best = vec![NONE; n * num_levels];
                    for &l in chunk_lms {
                        let sp = dijkstra::dijkstra(g_ref, NodeId(l));
                        for &j in &levels_of_ref[l as usize] {
                            for u in 0..n {
                                let cand = (sp.dist[u], l);
                                let slot = &mut best[u * num_levels + j];
                                if cand < *slot {
                                    *slot = cand;
                                }
                            }
                        }
                    }
                    *slot = best;
                });
            }
        })
        .expect("landmark-distance worker panicked");
        let mut best = vec![NONE; n * num_levels];
        for fold in folds {
            for (slot, cand) in best.iter_mut().zip(fold) {
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
        assert!(
            best.iter().all(|&(d, _)| d != u64::MAX),
            "landmark chaining requires a connected graph"
        );

        // Pass 2: re-run each landmark's Dijkstra and extract the walks
        // for exactly the (node, level) slots it won.
        type Up = (u32, Vec<u32>, u64); // (landmark, walk to it, cost)
                                        // (landmark, node, level, walk landmark→node, cost)
        type Won = (u32, u32, usize, Vec<u32>, u64);
        let best_ref = &best;
        let mut extracted: Vec<Vec<Won>> = vec![Vec::new(); landmarks.len().div_ceil(chunk.max(1))];
        crossbeam::scope(|s| {
            for (slot, chunk_lms) in extracted.iter_mut().zip(landmarks.chunks(chunk.max(1))) {
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    for &l in chunk_lms {
                        let sp = dijkstra::dijkstra(g_ref, NodeId(l));
                        for u in 0..n {
                            for j in 0..num_levels {
                                if best_ref[u * num_levels + j].1 != l {
                                    continue;
                                }
                                let down: Vec<u32> = sp
                                    .path_to(NodeId(u as u32))
                                    .expect("winner must be reachable")
                                    .iter()
                                    .map(|x| x.0)
                                    .collect();
                                out.push((l, u as u32, j, down, sp.dist[u]));
                            }
                        }
                    }
                    *slot = out;
                });
            }
        })
        .expect("landmark-path worker panicked");

        let mut registry: Vec<Vec<Registration>> = (0..n).map(|_| Vec::new()).collect();
        let mut ups: Vec<Vec<Option<Up>>> = vec![vec![None; num_levels]; n];
        for (l, u, j, down, cost) in extracted.into_iter().flatten() {
            let mut up_walk = down.clone();
            up_walk.reverse();
            registry[l as usize].push(Registration { node: u, path: down, cost });
            ups[u as usize][j] = Some((l, up_walk, cost));
        }
        for r in &mut registry {
            r.sort_unstable_by_key(|x| x.node);
            r.dedup_by_key(|x| x.node); // a landmark may win several levels
        }
        let nodes: Vec<NodeState> = ups
            .into_iter()
            .map(|row| NodeState {
                up: row.into_iter().map(|e| e.expect("every level has a winner")).collect(),
            })
            .collect();
        LandmarkChaining { g, k: num_levels, registry, nodes }
    }

    fn lookup(&self, landmark: u32, node: u32) -> Option<&Registration> {
        let regs = &self.registry[landmark as usize];
        regs.binary_search_by_key(&node, |r| r.node).ok().map(|i| &regs[i])
    }
}

impl Router for LandmarkChaining {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost = 0u64;
        let mut at = src;
        for level in 0..self.k {
            // Walk from the current position to its level-`level` landmark.
            let (lm, walk, c) = &self.nodes[at.idx()].up[level];
            for &x in &walk[1..] {
                path.push(NodeId(x));
            }
            cost += c;
            at = NodeId(*lm);
            // Does this landmark know the destination?
            if at == dst {
                return RouteTrace { path, cost, delivered: true };
            }
            if let Some(reg) = self.lookup(at.0, dst.0) {
                for &x in &reg.path[1..] {
                    path.push(NodeId(x));
                }
                cost += reg.cost;
                return RouteTrace { path, cost, delivered: true };
            }
        }
        RouteTrace { path, cost, delivered: false }
    }

    fn name(&self) -> &str {
        "landmark-chaining-exp"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        let id = bits_for_node(self.g.n());
        // Upward paths.
        let mut bits = 0;
        for (_, walk, cost) in &self.nodes[v.idx()].up {
            bits += id + walk.len() as u64 * id + bits_for_distance(*cost);
        }
        // Registrations held at v.
        for reg in &self.registry[v.idx()] {
            bits += id + reg.path.len() as u64 * id + bits_for_distance(reg.cost);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::{evaluate, pairs, StorageAudit};

    #[test]
    fn delivers_all_pairs() {
        for fam in [Family::Geometric, Family::ExpRing] {
            let g = fam.generate(70, 50);
            let d = apsp(&g);
            let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 3, 50);
            let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
            assert_eq!(stats.failures, 0, "{}", fam.label());
        }
    }

    #[test]
    fn stretch_worse_than_constant() {
        // The chaining detour must actually show up (stretch > 1 on
        // average pairs; the X1 experiment quantifies the growth in k).
        let g = Family::Geometric.generate(120, 51);
        let d = apsp(&g);
        let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 4, 51);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert!(stats.max_stretch > 1.5, "implausibly good: {}", stats.max_stretch);
    }

    #[test]
    fn storage_is_scale_free() {
        // Mean storage must not blow up with Δ (contrast with B2).
        let small = Family::Ring.generate(48, 52);
        let big = Family::ExpRing.generate(48, 52);
        let rs = LandmarkChaining::build(small.clone(), 3, 52);
        let rb = LandmarkChaining::build(big.clone(), 3, 52);
        let a = StorageAudit::collect(&rs, 48).mean_bits();
        let b = StorageAudit::collect(&rb, 48).mean_bits();
        assert!(b < 3.0 * a, "storage should be Δ-independent: {a} vs {b}");
    }

    #[test]
    fn on_demand_build_matches_matrix_build() {
        for fam in [Family::Geometric, Family::PrefAttach, Family::ExpRing] {
            let g = fam.generate(80, 54);
            let d = apsp(&g);
            let a = LandmarkChaining::build_with_matrix(g.clone(), &d, 3, 54);
            let b = LandmarkChaining::build_on_demand(g.clone(), 3, 54);
            assert_eq!(a.k, b.k, "{}", fam.label());
            // Same landmark assignments and climb costs at every node
            // and level (walks may differ among equal-cost paths).
            for u in 0..g.n() {
                for j in 0..a.k {
                    let (la, _, ca) = &a.nodes[u].up[j];
                    let (lb, _, cb) = &b.nodes[u].up[j];
                    assert_eq!((la, ca), (lb, cb), "{} node {u} level {j}", fam.label());
                }
            }
            // Same evaluation results (costs drive every aggregate
            // except hop counts, which tie-broken walks may shift).
            let workload = pairs::sample(g.n(), 400, 55);
            let sa = evaluate(&g, &d, &a, &workload);
            let sb = evaluate(&g, &d, &b, &workload);
            assert_eq!(sa.failures, sb.failures, "{}", fam.label());
            assert_eq!(sa.max_stretch.to_bits(), sb.max_stretch.to_bits(), "{}", fam.label());
            assert_eq!(sa.mean_stretch.to_bits(), sb.mean_stretch.to_bits(), "{}", fam.label());
        }
    }

    #[test]
    fn on_demand_build_scales_without_matrix() {
        // A graph size where the dense matrix would already be 128 MB;
        // the on-demand build must stay comfortably lazy (one Dijkstra
        // per landmark, two passes).
        let g = Family::PrefAttach.generate(4000, 56);
        let r = LandmarkChaining::build_on_demand(g.clone(), 2, 56);
        let workload = pairs::sample_grouped(g.n(), 32, 8, 56);
        let mut truth = graphkit::OnDemandTruth::new(&g);
        truth.prefetch_pairs(&workload, 0);
        let stats = sim::evaluate_parallel(&g, &truth, &r, &workload, 0);
        assert_eq!(stats.failures, 0);
        assert!(stats.max_stretch >= 1.0);
    }

    #[test]
    fn root_terminates_every_search() {
        let g = Family::PrefAttach.generate(60, 53);
        let d = apsp(&g);
        let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 2, 53);
        for v in 0..60u32 {
            let t = r.route(NodeId(0), NodeId(v));
            assert!(t.delivered);
        }
    }
}
