//! B3 — scale-free landmark chaining with exponential stretch
//! (in the spirit of Awerbuch–Bar-Noy–Linial–Peleg \[7, 8\] and
//! Arias et al. \[6\]).
//!
//! Before this paper, the only scale-free name-independent schemes paid
//! `O(2^k)` stretch. This baseline reproduces that *shape* with the
//! classic mechanism: a `k`-level landmark hierarchy where every node
//! registers its location at its closest level-`i` landmark, and a
//! search climbs landmark to landmark. Each climb leg is bounded by the
//! distance to the next-level landmark of the *current* position, so
//! the search drifts — and the worst-case accumulated drift doubles
//! per level: exponential stretch, independent of Δ.
//!
//! Experiment X1 plots this scheme's stretch against the paper's O(k).

use graphkit::bits::{bits_for_distance, bits_for_node};
use graphkit::{dijkstra, DistMatrix, Graph, NodeId};
use landmarks::LandmarkHierarchy;
use sim::{RouteTrace, Router};

/// Registration record: the full path from a landmark to a node.
struct Registration {
    node: u32,
    /// Path from the landmark to the node (inclusive endpoints).
    path: Vec<u32>,
    cost: u64,
}

/// Per-node state: paths to its landmark of each level.
struct NodeState {
    /// `up[i]` = (landmark id, path from this node to it, cost).
    up: Vec<(u32, Vec<u32>, u64)>,
}

/// The exponential-stretch landmark-chaining scheme.
pub struct LandmarkChaining {
    g: Graph,
    k: usize,
    /// Registrations stored *at* each landmark, sorted by node id.
    registry: Vec<Vec<Registration>>,
    nodes: Vec<NodeState>,
}

impl LandmarkChaining {
    /// Build with a fresh hierarchy; the top level is collapsed to a
    /// single deterministic root so searches always terminate.
    pub fn build(g: Graph, k: usize, seed: u64) -> Self {
        let d = graphkit::apsp(&g);
        Self::build_with_matrix(g, &d, k, seed)
    }

    /// Build reusing a distance matrix.
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, k: usize, seed: u64) -> Self {
        assert!(d.connected(), "landmark chaining requires a connected graph");
        let n = g.n();
        let hier = LandmarkHierarchy::sample(n, k.max(2), seed);
        // Levels 1..k−1 from the hierarchy; level k = a single root
        // (the global min-id member of the last nonempty level).
        let mut level_sets: Vec<Vec<u32>> = Vec::new();
        for i in 1..k {
            let mut l = hier.level(i).to_vec();
            if l.is_empty() {
                l = vec![0];
            }
            level_sets.push(l);
        }
        let root = level_sets.last().map(|l| l[0]).unwrap_or(0);
        level_sets.push(vec![root]);
        // Closest landmark per level per node (ties by id).
        let sps: Vec<_> = graphkit::metrics::par_per_node(&g, |u| dijkstra::dijkstra(&g, u));
        let closest = |u: u32, set: &[u32]| -> u32 {
            *set.iter()
                .min_by_key(|&&c| (d.d(NodeId(u), NodeId(c)), c))
                .expect("level set nonempty")
        };
        let mut nodes = Vec::with_capacity(n);
        let mut registry: Vec<Vec<Registration>> = (0..n).map(|_| Vec::new()).collect();
        for u in 0..n as u32 {
            let mut up = Vec::with_capacity(level_sets.len());
            for set in &level_sets {
                let l = closest(u, set);
                let path: Vec<u32> =
                    sps[u as usize].path_to(NodeId(l)).unwrap().iter().map(|x| x.0).collect();
                let cost = d.d(NodeId(u), NodeId(l));
                // Register u at l (path from l to u = reverse).
                let mut rp: Vec<u32> = path.clone();
                rp.reverse();
                up.push((l, path, cost));
                registry[l as usize].push(Registration { node: u, path: rp, cost });
            }
            nodes.push(NodeState { up });
        }
        for r in &mut registry {
            r.sort_unstable_by_key(|x| x.node);
        }
        LandmarkChaining { g, k: level_sets.len(), registry, nodes }
    }

    fn lookup(&self, landmark: u32, node: u32) -> Option<&Registration> {
        let regs = &self.registry[landmark as usize];
        regs.binary_search_by_key(&node, |r| r.node).ok().map(|i| &regs[i])
    }
}

impl Router for LandmarkChaining {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost = 0u64;
        let mut at = src;
        for level in 0..self.k {
            // Walk from the current position to its level-`level` landmark.
            let (lm, walk, c) = &self.nodes[at.idx()].up[level];
            for &x in &walk[1..] {
                path.push(NodeId(x));
            }
            cost += c;
            at = NodeId(*lm);
            // Does this landmark know the destination?
            if at == dst {
                return RouteTrace { path, cost, delivered: true };
            }
            if let Some(reg) = self.lookup(at.0, dst.0) {
                for &x in &reg.path[1..] {
                    path.push(NodeId(x));
                }
                cost += reg.cost;
                return RouteTrace { path, cost, delivered: true };
            }
        }
        RouteTrace { path, cost, delivered: false }
    }

    fn name(&self) -> &str {
        "landmark-chaining-exp"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        let id = bits_for_node(self.g.n());
        // Upward paths.
        let mut bits = 0;
        for (_, walk, cost) in &self.nodes[v.idx()].up {
            bits += id + walk.len() as u64 * id + bits_for_distance(*cost);
        }
        // Registrations held at v.
        for reg in &self.registry[v.idx()] {
            bits += id + reg.path.len() as u64 * id + bits_for_distance(reg.cost);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::{evaluate, pairs, StorageAudit};

    #[test]
    fn delivers_all_pairs() {
        for fam in [Family::Geometric, Family::ExpRing] {
            let g = fam.generate(70, 50);
            let d = apsp(&g);
            let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 3, 50);
            let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
            assert_eq!(stats.failures, 0, "{}", fam.label());
        }
    }

    #[test]
    fn stretch_worse_than_constant() {
        // The chaining detour must actually show up (stretch > 1 on
        // average pairs; the X1 experiment quantifies the growth in k).
        let g = Family::Geometric.generate(120, 51);
        let d = apsp(&g);
        let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 4, 51);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert!(stats.max_stretch > 1.5, "implausibly good: {}", stats.max_stretch);
    }

    #[test]
    fn storage_is_scale_free() {
        // Mean storage must not blow up with Δ (contrast with B2).
        let small = Family::Ring.generate(48, 52);
        let big = Family::ExpRing.generate(48, 52);
        let rs = LandmarkChaining::build(small.clone(), 3, 52);
        let rb = LandmarkChaining::build(big.clone(), 3, 52);
        let a = StorageAudit::collect(&rs, 48).mean_bits();
        let b = StorageAudit::collect(&rb, 48).mean_bits();
        assert!(b < 3.0 * a, "storage should be Δ-independent: {a} vs {b}");
    }

    #[test]
    fn root_terminates_every_search() {
        let g = Family::PrefAttach.generate(60, 53);
        let d = apsp(&g);
        let r = LandmarkChaining::build_with_matrix(g.clone(), &d, 2, 53);
        for v in 0..60u32 {
            let t = r.route(NodeId(0), NodeId(v));
            assert!(t.delivered);
        }
    }
}
