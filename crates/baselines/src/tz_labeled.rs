//! B4 — Thorup–Zwick labeled compact routing (\[29\], stretch `4k−5`).
//!
//! The labeled-model reference point of the paper's related-work
//! frontier (§1.3): node names are chosen by the scheme designer, so a
//! destination's *label* can carry topology information — which is
//! exactly what name-independent schemes are not allowed to assume.
//!
//! Construction (the distance-oracle machinery of \[29, 30\]):
//!
//! * sampled hierarchy `V = A₀ ⊇ A₁ ⊇ … ⊇ A_{k−1}` (prob `n^{−1/k}`);
//! * pivots `p_i(v)` = closest member of `A_i`;
//! * clusters `C(w) = {v : d(w,v) < d(v, p_{i+1}(v))}` for
//!   `w ∈ A_i \ A_{i+1}`, and `C(w) = V` for `w ∈ A_{k−1}`; each node
//!   belongs to `Õ(k·n^{1/k})` clusters w.h.p.;
//! * every cluster carries a shortest-path tree with the Lemma 5
//!   labeled tree-routing scheme; a node stores `µ(T(w), ·)` for every
//!   cluster containing it;
//! * `label(v)` = the pivots `p_i(v)` and tree-routing labels
//!   `λ(T(p_i(v)), v)` for the levels whose cluster contains `v`.
//!
//! Routing picks the smallest level whose cluster contains both
//! endpoints (level `k−1` always does) and routes within that tree.

use std::collections::HashMap;

use graphkit::bits::{bits_for_distance, bits_for_node};
use graphkit::{dijkstra, DistMatrix, Graph, NodeId, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::{RouteTrace, Router};
use treeroute::labeled::{LabeledTree, RouteLabel};

/// A cluster tree with its host-id index.
struct ClusterTree {
    lt: LabeledTree,
    /// host id -> tree ix (dense; u32::MAX absent).
    ix_of: Vec<u32>,
}

/// The destination label of one node.
#[derive(Clone, Debug)]
pub struct TzLabel {
    /// `(level, pivot id, λ(T(pivot), v))` for each level whose cluster
    /// contains the node, ascending by level.
    pub entries: Vec<(usize, u32, RouteLabel)>,
}

/// The Thorup–Zwick labeled scheme.
pub struct TzLabeled {
    g: Graph,
    k: usize,
    /// Cluster trees keyed by landmark id.
    clusters: HashMap<u32, ClusterTree>,
    /// Per-node labels (the "addresses" of the labeled model).
    labels: Vec<TzLabel>,
    /// Per-node cluster memberships (sorted landmark ids).
    member_of: Vec<Vec<u32>>,
}

impl TzLabeled {
    /// Build with APSP computed internally.
    pub fn build(g: Graph, k: usize, seed: u64) -> Self {
        let d = graphkit::apsp(&g);
        Self::build_with_matrix(g, &d, k, seed)
    }

    /// Build reusing a distance matrix.
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        assert!(d.connected(), "TZ requires a connected graph");
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = (n as f64).powf(-1.0 / k as f64);
        // A_0 ⊇ A_1 ⊇ … ⊇ A_{k−1}; force A_{k−1} nonempty.
        let mut levels: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        for _ in 1..k {
            let prev = levels.last().unwrap();
            let next: Vec<u32> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
            levels.push(next);
        }
        if levels[k - 1].is_empty() {
            let seed_node = levels.iter().rev().find(|l| !l.is_empty()).map(|l| l[0]).unwrap_or(0);
            for level in levels.iter_mut().skip(1) {
                if level.is_empty() {
                    level.push(seed_node);
                }
            }
        }
        // Level of each landmark: the max i with w ∈ A_i.
        let mut level_of = vec![0usize; n];
        for (i, level) in levels.iter().enumerate() {
            for &w in level {
                level_of[w as usize] = i;
            }
        }
        // Pivots p_i(v) and pivot distances.
        let pivot = |v: u32, i: usize| -> u32 {
            *levels[i]
                .iter()
                .min_by_key(|&&w| (d.d(NodeId(v), NodeId(w)), w))
                .expect("level nonempty")
        };
        let mut pivots = vec![[0u32; 8]; n]; // k ≤ 8 supported
        assert!(k <= 8, "k > 8 not supported by this baseline");
        for v in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                pivots[v as usize][i] = pivot(v, i);
            }
        }
        // Cluster membership: v ∈ C(w), w at level i < k−1, iff
        // d(w,v) < d(v, p_{i+1}(v)); top-level clusters span V.
        let in_cluster = |w: u32, v: u32| -> bool {
            if w == v {
                return true;
            }
            let i = level_of[w as usize];
            if i >= k - 1 {
                return true;
            }
            let pv = pivots[v as usize][i + 1];
            d.d(NodeId(w), NodeId(v)) < d.d(NodeId(v), NodeId(pv))
        };
        // Build cluster trees for every landmark that is someone's pivot
        // or needed at the top level. (Clusters of level-0 non-pivot
        // landmarks are singletons and never used for routing.)
        let mut needed: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                needed.push(pivots[v as usize][i]);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let built: Vec<(u32, ClusterTree)> = graphkit::metrics::par_per_node(&g, |u| {
            if needed.binary_search(&u.0).is_err() {
                return None;
            }
            let w = u.0;
            let members: Vec<NodeId> =
                (0..n as u32).filter(|&v| in_cluster(w, v)).map(NodeId).collect();
            let sp = dijkstra::dijkstra(&g, NodeId(w));
            let tree = Tree::from_sssp(&g, &sp, members);
            let ix_of = tree.index_map(n);
            Some((w, ClusterTree { lt: LabeledTree::new(tree), ix_of }))
        })
        .into_iter()
        .flatten()
        .collect();
        let clusters: HashMap<u32, ClusterTree> = built.into_iter().collect();
        // Labels + memberships.
        let mut labels = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let mut entries = Vec::new();
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                let w = pivots[v as usize][i];
                if let Some(ct) = clusters.get(&w) {
                    let ix = ct.ix_of[v as usize];
                    if ix != u32::MAX {
                        entries.push((i, w, ct.lt.label(ix).to_owned()));
                    }
                }
            }
            assert!(
                entries.iter().any(|(i, _, _)| *i == k - 1),
                "top-level cluster must contain every node"
            );
            labels.push(TzLabel { entries });
        }
        let mut member_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (&w, ct) in &clusters {
            for v in 0..n as u32 {
                if ct.ix_of[v as usize] != u32::MAX {
                    member_of[v as usize].push(w);
                }
            }
        }
        for m in &mut member_of {
            m.sort_unstable();
        }
        TzLabeled { g, k, clusters, labels, member_of }
    }

    /// The label (address) of `v` — what a sender must be told.
    pub fn label(&self, v: NodeId) -> &TzLabel {
        &self.labels[v.idx()]
    }

    /// Bits of the label of `v` (reported by experiment X2).
    pub fn label_bits(&self, v: NodeId) -> u64 {
        let id = bits_for_node(self.g.n());
        self.labels[v.idx()]
            .entries
            .iter()
            .map(|(_, w, l)| {
                let ct = &self.clusters[w];
                let ix = ct.ix_of[v.idx()];
                8 + id + ct.lt.label_bits(ix.min(ct.lt.tree().size() as u32 - 1)) + {
                    let _ = l;
                    0
                }
            })
            .sum()
    }

    /// The trade-off parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Router for TzLabeled {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let label = &self.labels[dst.idx()];
        // Smallest level whose pivot cluster contains both endpoints.
        for (_, w, tree_label) in &label.entries {
            let ct = &self.clusters[w];
            let from = ct.ix_of[src.idx()];
            if from == u32::MAX {
                continue;
            }
            let (tpath, cost) =
                ct.lt.route(from, tree_label.as_ref()).expect("label must route in its tree");
            let path: Vec<NodeId> = tpath.iter().map(|&t| ct.lt.tree().graph_id(t)).collect();
            return RouteTrace { path, cost, delivered: true };
        }
        unreachable!("top-level cluster contains every pair");
    }

    fn name(&self) -> &str {
        "thorup-zwick-labeled"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        let id = bits_for_node(self.g.n());
        let mut bits = self.k as u64 * (id + bits_for_distance(1 << 20)); // pivot list
        for w in &self.member_of[v.idx()] {
            let ct = &self.clusters[w];
            let ix = ct.ix_of[v.idx()];
            bits += id + ct.lt.local_bits(ix);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::{evaluate, pairs, StorageAudit};

    #[test]
    fn delivers_all_pairs() {
        for fam in [Family::Geometric, Family::ErdosRenyi] {
            let g = fam.generate(90, 60);
            let d = apsp(&g);
            for k in [1usize, 2, 3] {
                let r = TzLabeled::build_with_matrix(g.clone(), &d, k, 60);
                let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
                assert_eq!(stats.failures, 0, "{} k={k}", fam.label());
                // Stretch bound: generous 4k−5-ish envelope (+slack for
                // the simplified level selection).
                let bound = (4 * k) as f64;
                assert!(
                    stats.max_stretch <= bound,
                    "{} k={k}: stretch {} > {bound}",
                    fam.label(),
                    stats.max_stretch
                );
            }
        }
    }

    #[test]
    fn k1_is_shortest_path() {
        // k = 1: single level, every cluster = V, pivot = closest member
        // of A_0 = v itself; labels route exactly.
        let g = Family::Grid.generate(49, 61);
        let d = apsp(&g);
        let r = TzLabeled::build_with_matrix(g.clone(), &d, 1, 61);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert!(stats.max_stretch < 1.0 + 1e-9);
    }

    #[test]
    fn storage_shrinks_with_k() {
        let g = Family::Geometric.generate(150, 62);
        let d = apsp(&g);
        let r1 = TzLabeled::build_with_matrix(g.clone(), &d, 1, 62);
        let r3 = TzLabeled::build_with_matrix(g.clone(), &d, 3, 62);
        let a1 = StorageAudit::collect(&r1, g.n());
        let a3 = StorageAudit::collect(&r3, g.n());
        assert!(
            a3.mean_bits() < a1.mean_bits() / 2.0,
            "k=3 should be much smaller: {} vs {}",
            a3.mean_bits(),
            a1.mean_bits()
        );
    }

    #[test]
    fn labels_are_polylog() {
        let g = Family::ErdosRenyi.generate(120, 63);
        let d = apsp(&g);
        let r = TzLabeled::build_with_matrix(g.clone(), &d, 3, 63);
        for v in 0..g.n() as u32 {
            assert!(!r.label(NodeId(v)).entries.is_empty());
            // O(k · log² n) bits with constant 8.
            let logn = (g.n() as f64).log2();
            assert!(
                (r.label_bits(NodeId(v)) as f64) <= 8.0 * 3.0 * logn * logn,
                "label of {v} too big: {}",
                r.label_bits(NodeId(v))
            );
        }
    }

    #[test]
    fn exp_ring_works() {
        let g = Family::ExpRing.generate(50, 64);
        let d = apsp(&g);
        let r = TzLabeled::build_with_matrix(g.clone(), &d, 2, 64);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert_eq!(stats.failures, 0);
    }
}
