//! B2 — the aspect-ratio-dependent hierarchical scheme
//! (Awerbuch–Peleg \[10\] with the tree-routing of AGM DISC'04 \[3\]).
//!
//! Tree covers at *every* geometric scale `2^0, 2^1, …, 2^{⌈log Δ⌉}`
//! over the full graph; routing tries scales in increasing order until
//! the destination's home-ball scale is reached. Stretch is `O(k)`
//! (with \[3\]'s cover router), but every node stores state at **all**
//! `⌈log Δ⌉` scales — the `log Δ` memory factor that makes the scheme
//! *not* scale-free. Experiment SF plots exactly this divergence
//! against the paper's scheme.

use std::collections::HashMap;

use graphkit::bits::bits_for_node;
use graphkit::ids::ceil_log2;
use graphkit::{Graph, NodeId, TreeIx};
use sim::{RouteTrace, Router};
use treeroute::cover_router::{CoverOutcome, CoverTreeRouter};

/// One scale's cover, with routers attached.
struct Scale {
    routers: Vec<Entry>,
    /// node -> home router index.
    home: Vec<u32>,
}

struct Entry {
    router: CoverTreeRouter,
    ix: HashMap<u32, TreeIx>,
}

/// The log Δ-storage hierarchical scheme.
pub struct HierarchicalScheme {
    g: Graph,
    k: usize,
    scales: Vec<Scale>,
}

impl HierarchicalScheme {
    /// Build covers at all scales `0..=⌈log₂ diam⌉`.
    pub fn build(g: Graph, k: usize, seed: u64) -> Self {
        let d = graphkit::apsp(&g);
        assert!(d.connected(), "hierarchical scheme requires a connected graph");
        let max_scale = ceil_log2(d.diameter().max(1)).max(1);
        let sigma = graphkit::ids::nth_root_ceil(g.n() as u64, k as u32).max(2);
        let mut scales = Vec::with_capacity(max_scale as usize + 1);
        for s in 0..=max_scale {
            let cover = covers::build_cover(&g, k, graphkit::ids::octave_radius(s));
            let routers: Vec<Entry> = cover
                .trees
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let ix: HashMap<u32, TreeIx> = t
                        .graph_ids()
                        .iter()
                        .enumerate()
                        .map(|(i, &gid)| (gid, i as TreeIx))
                        .collect();
                    let router = CoverTreeRouter::new(
                        t.clone(),
                        sigma,
                        seed ^ ((s as u64) << 32 | ti as u64),
                    );
                    Entry { router, ix }
                })
                .collect();
            scales.push(Scale { routers, home: cover.home.clone() });
        }
        HierarchicalScheme { g, k, scales }
    }

    /// Number of scales (= `⌈log₂ Δ⌉ + 1`), the storage multiplier.
    pub fn num_scales(&self) -> usize {
        self.scales.len()
    }

    /// The trade-off parameter k.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Router for HierarchicalScheme {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost = 0;
        for scale in &self.scales {
            let entry = &scale.routers[scale.home[src.idx()] as usize];
            let from = entry.ix[&src.0];
            let (outcome, tpath) = entry.router.route(from, dst);
            let tree = entry.router.labeled().tree();
            for &t in &tpath[1..] {
                path.push(tree.graph_id(t));
            }
            cost += outcome.cost();
            if matches!(outcome, CoverOutcome::Found { .. }) {
                return RouteTrace { path, cost, delivered: true };
            }
            debug_assert_eq!(*path.last().unwrap(), src);
        }
        RouteTrace { path, cost, delivered: false }
    }

    fn name(&self) -> &str {
        "awerbuch-peleg-hierarchical"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        let id = bits_for_node(self.g.n());
        let mut bits = 0;
        for scale in &self.scales {
            // Home-root pointer at every scale…
            bits += id;
            // …plus φ(T, v) for every cover tree containing v.
            for entry in &scale.routers {
                if let Some(&ix) = entry.ix.get(&v.0) {
                    bits += entry.router.node_bits(ix);
                }
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::{evaluate, pairs, StorageAudit};

    #[test]
    fn delivers_all_pairs() {
        let g = Family::Geometric.generate(80, 40);
        let d = apsp(&g);
        let r = HierarchicalScheme::build(g.clone(), 2, 40);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert_eq!(stats.failures, 0);
        // Stretch O(k): generous envelope.
        assert!(stats.max_stretch <= 30.0, "stretch {}", stats.max_stretch);
    }

    #[test]
    fn storage_grows_with_aspect_ratio() {
        // Same node count, wildly different Δ: storage per node must
        // grow by at least 2x (it has ~10x the scales).
        let small = Family::Ring.generate(48, 41); // Δ = n/2
        let big = Family::ExpRing.generate(48, 41); // Δ ≈ 2^40
        let rs = HierarchicalScheme::build(small.clone(), 2, 41);
        let rb = HierarchicalScheme::build(big.clone(), 2, 41);
        assert!(rb.num_scales() >= rs.num_scales() + 10);
        let asmall = StorageAudit::collect(&rs, small.n());
        let abig = StorageAudit::collect(&rb, big.n());
        assert!(
            abig.mean_bits() > 2.0 * asmall.mean_bits(),
            "log Δ growth not visible: {} vs {}",
            abig.mean_bits(),
            asmall.mean_bits()
        );
    }

    #[test]
    fn delivers_on_exp_ring() {
        let g = Family::ExpRing.generate(40, 42);
        let d = apsp(&g);
        let r = HierarchicalScheme::build(g.clone(), 3, 42);
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        assert_eq!(stats.failures, 0);
    }
}
