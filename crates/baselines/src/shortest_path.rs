//! B1 — trivial shortest-path routing tables.
//!
//! Every node stores the next hop of an all-pairs shortest path for all
//! `n−1` destinations: stretch exactly 1 at `Ω(n log n)` bits per node.
//! This is the paper's opening strawman ("this solution is very
//! expensive") and the stretch floor every scheme is measured against.

use graphkit::bits::bits_for_node;
use graphkit::{dijkstra, Graph, NodeId};
use sim::{RouteTrace, Router};

/// Full next-hop tables.
pub struct ShortestPathTables {
    g: Graph,
    /// `next[u * n + v]` = neighbor of `u` on a shortest path to `v`.
    next: Vec<u32>,
}

impl ShortestPathTables {
    /// Build by one Dijkstra per node (parallel).
    pub fn build(g: Graph) -> Self {
        let n = g.n();
        let rows = graphkit::metrics::par_per_node(&g, |u| {
            let sp = dijkstra::dijkstra(&g, u);
            // next[v]: first node after u on the path u -> v, computed by
            // child-propagation over the SPT parent pointers.
            let mut next = vec![u32::MAX; n];
            next[u.idx()] = u.0;
            // Order nodes by distance so parents resolve before children.
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by_key(|&v| sp.dist[v as usize]);
            for v in order {
                if v == u.0 || !sp.reachable(NodeId(v)) {
                    continue;
                }
                let p = sp.parent[v as usize];
                next[v as usize] = if p == u.0 { v } else { next[p as usize] };
            }
            next
        });
        let mut next = Vec::with_capacity(n * n);
        for row in rows {
            next.extend(row);
        }
        ShortestPathTables { g, next }
    }

    /// Next hop at `u` toward `v`.
    pub fn next_hop(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        let x = self.next[u.idx() * self.g.n() + v.idx()];
        if x == u32::MAX {
            None
        } else {
            Some(NodeId(x))
        }
    }
}

impl Router for ShortestPathTables {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost = 0;
        let mut at = src;
        while at != dst {
            let Some(nx) = self.next_hop(at, dst) else {
                return RouteTrace { path, cost, delivered: false };
            };
            cost += self.g.edge_weight(at, nx).expect("next hop must be a neighbor");
            at = nx;
            path.push(at);
            debug_assert!(path.len() <= self.g.n(), "next-hop loop");
        }
        RouteTrace { path, cost, delivered: true }
    }

    fn name(&self) -> &str {
        "shortest-path-tables"
    }

    fn node_storage_bits(&self, _v: NodeId) -> u64 {
        // n−1 entries of ⌈log n⌉ bits (ports would be smaller; we charge
        // node ids, as the paper's Ω(n log n) strawman does).
        (self.g.n() as u64 - 1) * bits_for_node(self.g.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::{evaluate, pairs};

    #[test]
    fn stretch_exactly_one() {
        for fam in [Family::Geometric, Family::ExpRing] {
            let g = fam.generate(90, 30);
            let d = apsp(&g);
            let r = ShortestPathTables::build(g.clone());
            let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
            assert!((stats.max_stretch - 1.0).abs() < 1e-12, "{}", fam.label());
        }
    }

    #[test]
    fn storage_is_n_log_n() {
        let g = Family::Ring.generate(64, 31);
        let r = ShortestPathTables::build(g);
        assert_eq!(r.node_storage_bits(NodeId(0)), 63 * 6);
    }

    #[test]
    fn self_route() {
        let g = Family::Ring.generate(16, 32);
        let r = ShortestPathTables::build(g);
        let t = r.route(NodeId(3), NodeId(3));
        assert!(t.delivered);
        assert_eq!(t.hops(), 0);
    }
}
