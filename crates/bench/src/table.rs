//! Minimal fixed-width table formatting for experiment output.

/// A printable table with a title, headers, rows, and footnotes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No rows yet?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.headers.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = width[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &width {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Format a float tersely.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format bits as a human-readable byte quantity.
pub fn bits(b: u64) -> String {
    graphkit::bits::fmt_bits(b)
}

/// Format bits-as-float.
pub fn bitsf(b: f64) -> String {
    graphkit::bits::fmt_bits(b.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["wide-cell".into(), "3".into()]);
        t.note("a note");
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("| wide-cell | 3           |"));
        assert!(r.contains("> a note"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(2.71901), "2.72");
        assert_eq!(f(42.123), "42.1");
        assert_eq!(f(4200.0), "4200");
    }
}
