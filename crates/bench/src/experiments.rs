//! The experiment implementations. Each function regenerates one
//! table/figure of the paper (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for recorded output + interpretation).

use graphkit::gen::{self, Family, WeightDist};
use graphkit::ids::ceil_log2;
use graphkit::metrics::apsp;
use graphkit::metrics::DistMatrix;
use graphkit::OnDemandTruth;
use graphkit::{dijkstra, Graph, NodeId, Tree};
use landmarks::claims;
use landmarks::LandmarkHierarchy;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use routing_core::churn::{run_churn, ChurnConfig, ChurnPlan};
use routing_core::{
    bench_record, ConstructionRecord, EvaluationRecord, ForceMode, RepairOutcome, SBudgetMode,
    Scheme, SchemeParams,
};
use sim::{
    evaluate_parallel, evaluate_parallel_lenient, pairs, Router, StorageAudit, StretchStats,
};
use treeroute::cover_router::CoverTreeRouter;
use treeroute::labeled::LabeledTree;
use treeroute::laing::{ErrorReportingTree, SearchOutcome};

use crate::table::{bits, bitsf, f, Table};
use crate::{ConstructionKind, RunConfig, TruthKind};

fn spanning_tree(g: &Graph, root: NodeId) -> Tree {
    let sp = dijkstra::dijkstra(g, root);
    Tree::from_sssp(g, &sp, g.nodes())
}

fn pair_workload(n: usize, cfg: &RunConfig, quick: bool) -> Vec<(NodeId, NodeId)> {
    let all = n * n.saturating_sub(1);
    let budget = cfg.pairs_sampled.unwrap_or(if quick { 2000 } else { 20_000 });
    if all <= budget {
        pairs::all(n)
    } else {
        pairs::sample(n, budget, 0xbead)
    }
}

/// Evaluate through the engine the config selects. Results are
/// bit-identical across thread counts and truth kinds, so tables don't
/// depend on the flags — only wall clock and memory do.
///
/// Note the classic experiments still compute a dense matrix for
/// *scheme construction*, so `--truth ondemand` here exercises the
/// lazy engine for parity rather than saving memory (and pays a fresh
/// prefetch per call); the `sc` experiment is the genuinely
/// matrix-free path.
fn eval(
    cfg: &RunConfig,
    g: &Graph,
    d: &DistMatrix,
    router: &(dyn Router + Sync),
    workload: &[(NodeId, NodeId)],
) -> StretchStats {
    match cfg.truth {
        TruthKind::Dense => evaluate_parallel(g, d, router, workload, cfg.threads),
        TruthKind::OnDemand => {
            let mut truth = OnDemandTruth::new(g);
            truth.prefetch_pairs(workload, cfg.threads);
            evaluate_parallel(g, &truth, router, workload, cfg.threads)
        }
    }
}

/// Lenient counterpart of [`eval`] (ablations measure failures).
fn eval_lenient(
    cfg: &RunConfig,
    g: &Graph,
    d: &DistMatrix,
    router: &(dyn Router + Sync),
    workload: &[(NodeId, NodeId)],
) -> StretchStats {
    match cfg.truth {
        TruthKind::Dense => evaluate_parallel_lenient(g, d, router, workload, cfg.threads),
        TruthKind::OnDemand => {
            let mut truth = OnDemandTruth::new(g);
            truth.prefetch_pairs(workload, cfg.threads);
            evaluate_parallel_lenient(g, &truth, router, workload, cfg.threads)
        }
    }
}

// ---------------------------------------------------------------------
// T1 — Theorem 1: stretch & storage vs k
// ---------------------------------------------------------------------

/// For each family × n × k: measured stretch (max/mean), measured bits
/// per node (mean/max), and the Theorem 1 bound. The *shape* claims:
/// max stretch grows linearly in k; storage falls as k grows.
pub fn t1(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let mut t = Table::new(
        "T1 — Theorem 1: stretch and storage vs k",
        &[
            "family",
            "n",
            "k",
            "max-stretch",
            "mean-stretch",
            "O(k) bound 12k",
            "mean bits/node",
            "max bits/node",
            "thm1 bound",
        ],
    );
    let sizes: &[usize] = if quick { &[128] } else { &[128, 256, 512, 1024] };
    let ks: &[usize] = if quick { &[2, 3] } else { &[1, 2, 3, 4] };
    for &fam in &[Family::ErdosRenyi, Family::Geometric, Family::Grid, Family::ExpRing] {
        for &n in sizes {
            let g = fam.generate(n, 1000 + n as u64);
            let d = apsp(&g);
            for &k in ks {
                if k == 1 && n > 128 {
                    continue; // k=1 tables are Θ(n²) overall; keep it small
                }
                if k == 2 && n > 512 {
                    continue; // k=2 S-budgets scale with n^{2/2}=n; cap the sweep
                }
                let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 77));
                let stats = eval(cfg, &g, &d, &scheme, &pair_workload(g.n(), cfg, quick));
                let audit = StorageAudit::collect(&scheme, g.n());
                t.row(vec![
                    fam.label().into(),
                    g.n().to_string(),
                    k.to_string(),
                    f(stats.max_stretch),
                    f(stats.mean_stretch),
                    (12 * k).to_string(),
                    bitsf(audit.mean_bits()),
                    bits(audit.max_bits()),
                    bitsf(scheme.theorem1_bound()),
                ]);
            }
        }
    }
    t.note("Expected shape: max-stretch grows ~linearly in k and stays far below the");
    t.note("12k envelope; storage falls with k and sits far below the Theorem 1 bound");
    t.note("(the bound's constants dwarf laptop-scale n; see EXPERIMENTS.md).");
    t.render()
}

// ---------------------------------------------------------------------
// T2 — storage breakdown
// ---------------------------------------------------------------------

/// Attribution of the per-node bits to plan / landmark-tree /
/// cover-tree components, per family at fixed n, k.
pub fn t2(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 128 } else { 256 };
    let k = 3;
    let mut t = Table::new(
        format!("T2 — storage breakdown by component (n={n}, k={k})"),
        &[
            "family",
            "plans (mean)",
            "landmark trees (mean)",
            "cover trees (mean)",
            "total (mean)",
            "total (max)",
        ],
    );
    for &fam in &[Family::ErdosRenyi, Family::Geometric, Family::ExpRing] {
        let g = fam.generate(n, 2000);
        let d = apsp(&g);
        let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 78));
        let mut plans = 0u64;
        let mut lmk = 0u64;
        let mut cov = 0u64;
        let mut max_total = 0u64;
        for v in g.nodes() {
            let b = scheme.storage_breakdown(v);
            plans += b.plans_bits;
            lmk += b.landmark_bits;
            cov += b.cover_bits;
            max_total = max_total.max(b.total());
        }
        let nn = g.n() as f64;
        t.row(vec![
            fam.label().into(),
            bitsf(plans as f64 / nn),
            bitsf(lmk as f64 / nn),
            bitsf(cov as f64 / nn),
            bitsf((plans + lmk + cov) as f64 / nn),
            bits(max_total),
        ]);
    }
    t.note("Sparse families (exp-ring) shift weight to landmark trees; dense families");
    t.note("(erdos-renyi) to cover trees — the decomposition splitting as designed.");
    t.render()
}

// ---------------------------------------------------------------------
// F1 — Lemma 2 (dense neighborhoods, paper Figure 1)
// ---------------------------------------------------------------------

/// Verify `a(u,i) ∈ R(v)` for every dense level and `v ∈ F(u,i)`, and
/// report `max |R(u)|` against the `6(k+1)` bound.
pub fn f1(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 100 } else { 256 };
    let mut t = Table::new(
        format!("F1 — Lemma 2: dense neighborhoods (n={n})"),
        &["family", "k", "triples checked", "violations", "max |R(u)|", "bound 6(k+1)"],
    );
    for &fam in &[Family::ErdosRenyi, Family::Geometric, Family::Grid, Family::ExpRing] {
        for k in [2usize, 3] {
            let g = fam.generate(n, 3000);
            let d = apsp(&g);
            let dec = decomposition::Decomposition::build(&d, k);
            let rep = decomposition::verify_lemma2(&d, &dec);
            t.row(vec![
                fam.label().into(),
                k.to_string(),
                rep.checked.to_string(),
                rep.violations.to_string(),
                rep.max_extended_range.to_string(),
                (6 * (k + 1)).to_string(),
            ]);
        }
    }
    t.note("Violations must be 0 (Lemma 2 is unconditional); |R(u)| stays O(k) even at");
    t.note("aspect ratio 2^40 — the scale-free mechanism (paper Figure 1's invariant).");
    t.render()
}

// ---------------------------------------------------------------------
// F2 — Lemma 3 (sparse neighborhoods, paper Figure 2)
// ---------------------------------------------------------------------

/// Verify `c(u,i) ∈ S(v)` for every sparse level and `v ∈ E(u,i)` —
/// measured through the scheme build, which counts exactly these
/// membership triples — and report the instance-tuned S budgets.
pub fn f2(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 100 } else { 256 };
    let mut t = Table::new(
        format!("F2 — Lemma 3: sparse neighborhoods (n={n})"),
        &[
            "family",
            "k",
            "triples checked",
            "violations",
            "tuned S budgets",
            "paper budget 16n^(2/k)ln n",
        ],
    );
    for &fam in &[Family::Geometric, Family::Ring, Family::ExpRing, Family::ExpTree] {
        for k in [2usize, 3] {
            let g = fam.generate(n, 4000);
            let d = apsp(&g);
            let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 79));
            let st = scheme.stats();
            t.row(vec![
                fam.label().into(),
                k.to_string(),
                st.lemma3_checked.to_string(),
                st.lemma3_violations.to_string(),
                format!("{:?}", st.s_budgets),
                scheme.hierarchy().s_budget().to_string(),
            ]);
        }
    }
    t.note("Violations must be 0; the tuned budgets show how far below the paper's");
    t.note("worst-case 16·n^{2/k}·ln n the instances actually sit (Figure 2's invariant).");
    t.render()
}

// ---------------------------------------------------------------------
// C1 / C2 — the landmark claims
// ---------------------------------------------------------------------

/// Claim 1: every large-enough ball intersects C_j.
pub fn c1(cfg: &RunConfig) -> String {
    claims_table(cfg.quick, true)
}

/// Claim 2: small balls contain few C_j members.
pub fn c2(cfg: &RunConfig) -> String {
    claims_table(cfg.quick, false)
}

fn claims_table(quick: bool, first: bool) -> String {
    let n = if quick { 128 } else { 400 };
    let title = if first {
        format!("C1 — Claim 1: landmark hitting over all balls B(u,2^i) (n={n})")
    } else {
        format!("C2 — Claim 2: landmark sparsity over all balls B(u,2^i) (n={n})")
    };
    let headers: &[&str] = if first {
        &["family", "k", "(ball,level) pairs", "violations"]
    } else {
        &["family", "k", "(ball,level) pairs", "violations", "max |B∩C_j|", "bound 16n^(2/k)ln n"]
    };
    let mut t = Table::new(title, headers);
    for &fam in &[Family::ErdosRenyi, Family::Geometric, Family::Ring, Family::ExpRing] {
        for k in [2usize, 3, 4] {
            let g = fam.generate(n, 5000);
            let d = apsp(&g);
            let h = LandmarkHierarchy::sample_verified(&d, k, 80, 16);
            let rep = claims::verify_claims(&d, &h);
            let row = if first {
                vec![
                    fam.label().into(),
                    k.to_string(),
                    rep.claim1_checked.to_string(),
                    rep.claim1_violations.to_string(),
                ]
            } else {
                vec![
                    fam.label().into(),
                    k.to_string(),
                    rep.claim2_checked.to_string(),
                    rep.claim2_violations.to_string(),
                    rep.max_c2_load.to_string(),
                    f(rep.c2_bound),
                ]
            };
            t.row(row);
        }
    }
    t.note("Verified hierarchies: violations must be 0 (re-seeded on failure, which the");
    t.note("paper's w.h.p. analysis predicts is rare).");
    t.render()
}

// ---------------------------------------------------------------------
// L4 — Lemma 4: j-bounded searches
// ---------------------------------------------------------------------

/// For each tree shape and search bound j: hits obey stretch ≤ 2j−1,
/// misses return to the root within (2j−2)·maxdepth(V_{j−1}).
pub fn l4(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 200 } else { 800 };
    let k = 3;
    let mut t = Table::new(
        format!("L4 — Lemma 4: j-bounded searches on {n}-node trees (k={k})"),
        &[
            "tree",
            "j",
            "hits",
            "max hit stretch",
            "bound 2j-1",
            "misses",
            "max miss cost ratio",
            "storage max bits",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(90);
    let shapes: Vec<(&str, Graph)> = vec![
        ("random", gen::random_tree(n, WeightDist::UniformInt { lo: 1, hi: 16 }, &mut rng)),
        (
            "caterpillar",
            gen::caterpillar(n / 6, 5, WeightDist::UniformInt { lo: 1, hi: 8 }, &mut rng),
        ),
        ("star", gen::star(n, 3)),
        (
            "binary",
            gen::balanced_tree(2, ceil_log2(n as u64) as usize - 1, WeightDist::Unit, &mut rng),
        ),
    ];
    for (name, g) in shapes {
        let s = ErrorReportingTree::new(spanning_tree(&g, NodeId(0)), k, 91);
        let m = s.labeled().tree().size();
        for j in 1..=k {
            let mut hits = 0usize;
            let mut max_stretch = 0.0f64;
            for rank in 0..m {
                let tix = s.node_at_rank(rank);
                let level = s.naming().level_of_rank(rank).max(1);
                if level > j {
                    continue;
                }
                let target = s.labeled().tree().graph_id(tix);
                let (outcome, _) = s.search(target, j);
                if let SearchOutcome::Found { cost, .. } = outcome {
                    hits += 1;
                    let depth = s.labeled().tree().depth(tix);
                    if depth > 0 {
                        max_stretch = max_stretch.max(cost as f64 / depth as f64);
                    }
                }
            }
            // Misses: absent ids.
            let mut misses = 0usize;
            let mut max_ratio = 0.0f64;
            let miss_bound = ((2 * j).saturating_sub(2)) as f64
                * s.max_depth_in_level(j.saturating_sub(1)).max(1) as f64;
            for absent in [1_000_000u32, 1_000_001, 1_000_002] {
                let (outcome, _) = s.search(NodeId(absent), j);
                if let SearchOutcome::NotFound { cost } = outcome {
                    misses += 1;
                    if miss_bound > 0.0 {
                        max_ratio = max_ratio.max(cost as f64 / miss_bound);
                    }
                }
            }
            let max_storage = (0..m as u32).map(|x| s.node_bits(x)).max().unwrap_or(0);
            t.row(vec![
                name.into(),
                j.to_string(),
                hits.to_string(),
                f(max_stretch),
                (2 * j - 1).to_string(),
                misses.to_string(),
                f(max_ratio),
                max_storage.to_string(),
            ]);
        }
    }
    t.note("max-hit-stretch must stay ≤ 2j−1; miss ratio ≤ 1 means the negative-response");
    t.note("cost bound (2j−2)·max d(r, V_{j−1}) holds.");
    t.render()
}

// ---------------------------------------------------------------------
// L5 — Lemma 5: labeled tree routing
// ---------------------------------------------------------------------

/// Labeled routing is exact (stretch 1) with O(log n) local info and
/// O(log² n) labels.
pub fn l5(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let sizes: &[usize] = if quick { &[100, 500] } else { &[100, 1000, 5000, 20000] };
    let mut t = Table::new(
        "L5 — Lemma 5: labeled tree routing is exact",
        &["tree size", "pairs", "max stretch", "max µ bits", "max λ bits", "max light depth"],
    );
    for &m in sizes {
        let mut rng = SmallRng::seed_from_u64(95);
        let g = gen::random_tree(m, WeightDist::UniformInt { lo: 1, hi: 9 }, &mut rng);
        let lt = LabeledTree::new(spanning_tree(&g, NodeId(0)));
        let workload = pairs::sample(m, if quick { 500 } else { 2000 }, 96);
        let mut max_stretch = 0.0f64;
        for &(s, d) in &workload {
            let (spath, cost) = lt.route(s.0, lt.label(d.0)).expect("in-tree");
            let opt = lt.tree().tree_distance(s.0, d.0);
            assert_eq!(*spath.last().unwrap(), d.0);
            if opt > 0 {
                max_stretch = max_stretch.max(cost as f64 / opt as f64);
            }
        }
        let mu = (0..m as u32).map(|x| lt.local_bits(x)).max().unwrap_or(0);
        let lam = (0..m as u32).map(|x| lt.label_bits(x)).max().unwrap_or(0);
        t.row(vec![
            m.to_string(),
            workload.len().to_string(),
            f(max_stretch),
            mu.to_string(),
            lam.to_string(),
            lt.max_light_depth().to_string(),
        ]);
    }
    t.note("max-stretch must be exactly 1 (tree routing is optimal); µ = O(log m),");
    t.note("λ = O(log² m), light depth ≤ log₂ m.");
    t.render()
}

// ---------------------------------------------------------------------
// L6 — Lemma 6: sparse covers
// ---------------------------------------------------------------------

/// The four cover invariants across families, k, and ρ.
pub fn l6(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 100 } else { 300 };
    let mut t = Table::new(
        format!("L6 — Lemma 6: sparse tree covers TC_k,rho (n={n})"),
        &[
            "family",
            "k",
            "rho",
            "trees",
            "cover ok",
            "max overlap",
            "bound 2k n^(1/k)",
            "max radius",
            "bound (2k-1)rho",
            "max edge",
            "bound 2rho",
        ],
    );
    for &fam in &[Family::ErdosRenyi, Family::Geometric, Family::Grid, Family::Ring] {
        let g = fam.generate(n, 6000);
        let d = apsp(&g);
        let diam = d.diameter();
        for k in [1usize, 2, 3] {
            for rho in [diam / 16, diam / 4].iter().filter(|&&r| r >= 1) {
                let cover = covers::build_cover(&g, k, *rho);
                let rep = covers::verify_cover(&g, &cover);
                t.row(vec![
                    fam.label().into(),
                    k.to_string(),
                    rho.to_string(),
                    cover.trees.len().to_string(),
                    (rep.cover_violations == 0).to_string(),
                    rep.max_overlap.to_string(),
                    rep.overlap_bound.to_string(),
                    rep.max_radius.to_string(),
                    rep.radius_bound.to_string(),
                    rep.max_edge.to_string(),
                    rep.edge_bound.to_string(),
                ]);
            }
        }
    }
    t.note("All four Lemma 6 properties must hold: cover-ok true, overlap ≤ 2k·n^{1/k},");
    t.note("radius ≤ (2k−1)ρ, edges ≤ 2ρ.");
    t.render()
}

// ---------------------------------------------------------------------
// L7 — Lemma 7: cover-tree routing
// ---------------------------------------------------------------------

/// Fixed-budget lookups: cost ≤ 4·rad + 2k·maxE for hits *and* misses.
pub fn l7(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 150 } else { 400 };
    let mut t = Table::new(
        format!("L7 — Lemma 7: cover-tree routing budget (trees of ~{n} nodes)"),
        &[
            "tree",
            "lookups",
            "max cost",
            "budget 4rad+2k·maxE",
            "guide depth",
            "max bucket",
            "miss max cost",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(97);
    let shapes: Vec<(&str, Graph)> = vec![
        ("random", gen::random_tree(n, WeightDist::UniformInt { lo: 1, hi: 12 }, &mut rng)),
        ("star", gen::star(n, 5)),
        (
            "caterpillar",
            gen::caterpillar(n / 5, 4, WeightDist::UniformInt { lo: 1, hi: 6 }, &mut rng),
        ),
    ];
    for (name, g) in shapes {
        let r = CoverTreeRouter::new(spanning_tree(&g, NodeId(0)), 2, 98);
        let m = r.labeled().tree().size() as u32;
        let budget = r.cost_budget();
        let mut max_cost = 0;
        let lookups = if quick { 400 } else { 2000 };
        for &(s, d) in pairs::sample(m as usize, lookups, 99).iter() {
            let (outcome, _) = r.route(s.0, r.labeled().tree().graph_id(d.0));
            assert!(outcome.is_found());
            max_cost = max_cost.max(outcome.cost());
        }
        let mut miss_max = 0;
        for absent in [2_000_000u32, 2_000_001] {
            for from in (0..m).step_by((m as usize / 10).max(1)) {
                let (outcome, _) = r.route(from, NodeId(absent));
                assert!(!outcome.is_found());
                miss_max = miss_max.max(outcome.cost());
            }
        }
        t.row(vec![
            name.into(),
            lookups.to_string(),
            max_cost.to_string(),
            budget.to_string(),
            r.max_guide_depth().to_string(),
            r.max_bucket().to_string(),
            miss_max.to_string(),
        ]);
    }
    t.note("max cost and miss cost must both stay ≤ the 4·rad+2k·maxE budget; the star");
    t.note("forces guide depth ≥ 2 (grouped child tables), exercising the 2k·maxE term.");
    t.render()
}

// ---------------------------------------------------------------------
// SF — the scale-free headline
// ---------------------------------------------------------------------

/// Storage vs aspect ratio: ours flat, the hierarchical baseline ∝ logΔ.
pub fn sf(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 48 } else { 64 };
    let k = 2;
    let mut t = Table::new(
        format!("SF — storage vs aspect ratio (ring n={n}, k={k})"),
        &[
            "log2(Delta)",
            "agm mean bits",
            "agm max bits",
            "hier mean bits",
            "hier max bits",
            "hier scales",
            "agm stretch",
            "hier stretch",
        ],
    );
    let exps: &[u32] = if quick { &[4, 16, 32] } else { &[4, 8, 16, 24, 32, 40] };
    for &e in exps {
        let g = if e <= 6 { gen::ring(n, 1) } else { gen::exponential_ring(n, e) };
        let d = apsp(&g);
        let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 100));
        let hier = baselines::HierarchicalScheme::build(g.clone(), k, 100);
        let workload = pair_workload(n, cfg, true);
        let ss = eval(cfg, &g, &d, &scheme, &workload);
        let hs = eval(cfg, &g, &d, &hier, &workload);
        let sa = StorageAudit::collect(&scheme, n);
        let ha = StorageAudit::collect(&hier, n);
        t.row(vec![
            f(d.aspect_ratio().unwrap_or(1.0).log2()),
            bitsf(sa.mean_bits()),
            bits(sa.max_bits()),
            bitsf(ha.mean_bits()),
            bits(ha.max_bits()),
            hier.num_scales().to_string(),
            f(ss.max_stretch),
            f(hs.max_stretch),
        ]);
    }
    t.note("The headline: AGM storage is flat in Δ while the Awerbuch–Peleg-style");
    t.note("hierarchical baseline grows ∝ log Δ (its scale count), at similar stretch.");
    t.render()
}

// ---------------------------------------------------------------------
// X1 — O(2^k) vs O(k)
// ---------------------------------------------------------------------

/// Stretch growth in k: the exponential landmark-chaining baseline vs
/// the paper's linear-stretch scheme.
pub fn x1(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 128 } else { 256 };
    let mut t = Table::new(
        format!("X1 — stretch vs k: exponential baseline vs AGM (geometric n={n})"),
        &[
            "k",
            "agm max",
            "agm mean",
            "chain max",
            "chain mean",
            "agm mean bits",
            "chain mean bits",
        ],
    );
    let g = Family::Geometric.generate(n, 7000);
    let d = apsp(&g);
    let workload = pair_workload(n, cfg, quick);
    let ks: &[usize] = if quick { &[2, 3, 4] } else { &[2, 3, 4, 5, 6] };
    for &k in ks {
        let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 101));
        let chain = baselines::LandmarkChaining::build_with_matrix(g.clone(), &d, k, 101);
        let ss = eval(cfg, &g, &d, &scheme, &workload);
        let cs = eval(cfg, &g, &d, &chain, &workload);
        let sa = StorageAudit::collect(&scheme, n);
        let ca = StorageAudit::collect(&chain, n);
        t.row(vec![
            k.to_string(),
            f(ss.max_stretch),
            f(ss.mean_stretch),
            f(cs.max_stretch),
            f(cs.mean_stretch),
            bitsf(sa.mean_bits()),
            bitsf(ca.mean_bits()),
        ]);
    }
    t.note("Expected shape: the chaining baseline's worst-case stretch is NOT O(k) —");
    t.note("it is governed by landmark drift (up to the network diameter over the pair");
    t.note("distance) and sits far above AGM at every k, while AGM's max stretch");
    t.note("stays inside the linear 12k envelope — the paper's §1 improvement.");
    t.render()
}

// ---------------------------------------------------------------------
// X2 — the space-stretch frontier
// ---------------------------------------------------------------------

/// All schemes on one graph: the related-work frontier of §1.3.
pub fn x2(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 128 } else { 256 };
    let k = 3;
    let mut t = Table::new(
        format!("X2 — space-stretch frontier (geometric n={n}, k={k})"),
        &["scheme", "model", "max stretch", "mean stretch", "mean bits/node", "max bits/node"],
    );
    let g = Family::Geometric.generate(n, 8000);
    let d = apsp(&g);
    let workload = pair_workload(n, cfg, quick);
    let routers: Vec<(&str, Box<dyn Router + Sync>)> = vec![
        ("name-indep", Box::new(baselines::ShortestPathTables::build(g.clone()))),
        ("name-indep", Box::new(baselines::HierarchicalScheme::build(g.clone(), k, 102))),
        (
            "name-indep",
            Box::new(baselines::LandmarkChaining::build_with_matrix(g.clone(), &d, k, 102)),
        ),
        ("labeled", Box::new(baselines::TzLabeled::build_with_matrix(g.clone(), &d, k, 102))),
        (
            "name-indep",
            Box::new(Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 102))),
        ),
    ];
    for (model, r) in routers {
        let stats = eval(cfg, &g, &d, r.as_ref(), &workload);
        let audit = StorageAudit::collect(r.as_ref(), n);
        t.row(vec![
            r.name().into(),
            model.into(),
            f(stats.max_stretch),
            f(stats.mean_stretch),
            bitsf(audit.mean_bits()),
            bits(audit.max_bits()),
        ]);
    }
    t.note("B1 anchors stretch 1 at Ω(n log n) bits; TZ (labeled) and AGM");
    t.note("(name-independent) trade space for low-stretch; chaining pays in stretch.");
    t.render()
}

// ---------------------------------------------------------------------
// A1 — ablation
// ---------------------------------------------------------------------

/// Disable one half of the decomposition: sparse-only inflates storage,
/// dense-only breaks delivery on sparse graphs.
pub fn a1(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 96 } else { 128 };
    let k = 3;
    let mut t = Table::new(
        format!("A1 — ablation of the sparse/dense decomposition (n={n}, k={k})"),
        &["family", "mode", "delivered %", "max stretch", "mean bits/node"],
    );
    for &fam in &[Family::ErdosRenyi, Family::ExpRing] {
        let g = fam.generate(n, 9000);
        let d = apsp(&g);
        let workload = pair_workload(g.n(), cfg, true);
        for (label, mode) in [
            ("combined", None),
            ("sparse-only", Some(ForceMode::AllSparse)),
            ("dense-only", Some(ForceMode::AllDense)),
        ] {
            let mut params = SchemeParams::new(k, 103);
            params.force_mode = mode;
            let scheme = Scheme::build_with_matrix(g.clone(), &d, params);
            let stats = eval_lenient(cfg, &g, &d, &scheme, &workload);
            let audit = StorageAudit::collect(&scheme, g.n());
            let delivered = 100.0 * (stats.pairs - stats.failures) as f64 / stats.pairs as f64;
            t.row(vec![
                fam.label().into(),
                label.into(),
                f(delivered),
                f(stats.max_stretch),
                bitsf(audit.mean_bits()),
            ]);
        }
    }
    t.note("combined must deliver 100%; dense-only loses deliveries on sparse scales");
    t.note("(targets outside the cover subgraphs G_i) — catastrophically so on exp-ring.");
    t.note("sparse-only stays correct here (its instance-tuned budgets absorb dense");
    t.note("neighborhoods at laptop n) but is the configuration whose budgets grow");
    t.note("toward the 16n^{2/k}ln n worst case as n grows — see F2.");
    t.render()
}

// ---------------------------------------------------------------------
// DX — the §4 directed extension
// ---------------------------------------------------------------------

/// Routing on strongly connected digraphs against the round-trip
/// metric: delivery, stretch, and the support-graph distortion the
/// reduction pays (the paper deferred this to its full version).
pub fn dx(cfg: &RunConfig) -> String {
    let quick = cfg.quick;
    let n = if quick { 60 } else { 120 };
    let mut t = Table::new(
        format!("DX — directed extension: round-trip routing (n={n})"),
        &[
            "arcs/node",
            "k",
            "delivered %",
            "max rt-stretch",
            "mean rt-stretch",
            "support distortion",
        ],
    );
    use graphkit::digraph::random_strongly_connected;
    use routing_core::{validate_directed_trace, DirectedScheme};
    for &extra_per_node in &[2usize, 4] {
        for &k in &[2usize, 3] {
            let mut rng = SmallRng::seed_from_u64(2026 + extra_per_node as u64);
            let dg = random_strongly_connected(n, extra_per_node * n, 1, 32, &mut rng);
            let scheme = DirectedScheme::build(dg, SchemeParams::new(k, 55));
            let mut worst = 0.0f64;
            let mut mean = 0.0;
            let mut count = 0usize;
            let mut delivered = 0usize;
            for s in (0..n as u32).step_by(3) {
                for d in (0..n as u32).step_by(5) {
                    if s == d {
                        continue;
                    }
                    let trace = scheme.route_directed(NodeId(s), NodeId(d));
                    validate_directed_trace(scheme.digraph(), NodeId(s), NodeId(d), &trace)
                        .expect("directed walk invalid");
                    count += 1;
                    if trace.delivered {
                        delivered += 1;
                        let st = scheme.rt_stretch(NodeId(s), NodeId(d), &trace);
                        worst = worst.max(st);
                        mean += st;
                    }
                }
            }
            t.row(vec![
                format!("{}", extra_per_node + 1),
                k.to_string(),
                f(100.0 * delivered as f64 / count as f64),
                f(worst),
                f(mean / delivered.max(1) as f64),
                f(scheme.max_distortion()),
            ]);
        }
    }
    t.note("The conclusion's deferred extension, reconstructed: Theorem 1 over the");
    t.note("round-trip support graph, realized as genuine directed walks. rt-stretch");
    t.note("stays in the O(k) band times the (small, measured) support distortion.");
    t.render()
}

// ---------------------------------------------------------------------
// SC — scaling beyond the n² wall
// ---------------------------------------------------------------------

/// Theorem-1 numbers at sizes where the dense matrix is unaffordable:
/// the AGM `Scheme` itself is preprocessed matrix-free
/// (`--construction ondemand`, the default) on a scale-free
/// (heavy-tailed, Δ ≈ 2^30) workload, routed, and measured against
/// on-demand ground truth, next to the landmark-chaining baseline.
/// Honors `--pairs-sampled`, `--threads`, `--spill`, and
/// `--per-node-budgets`; `--construction dense` swaps in the
/// APSP-backed parity build (use with `--quick` — it *is* the n²
/// wall). Each AGM build also emits a machine-readable datapoint; the
/// collected records land in `BENCH_construction.json` (path override:
/// `BENCH_CONSTRUCTION_OUT`).
pub fn sc(cfg: &RunConfig) -> String {
    let sizes: &[usize] = if cfg.quick { &[2_000, 5_000] } else { &[10_000, 50_000] };
    let k = 2;
    let mut t = Table::new(
        format!(
            "SC — Theorem-1 construction & evaluation beyond the n² wall (pref-attach, k={k}, {} construction)",
            match cfg.construction {
                ConstructionKind::OnDemand => "on-demand",
                ConstructionKind::Dense => "dense",
            }
        ),
        &[
            "scheme",
            "n",
            "pairs",
            "dijkstras",
            "build s",
            "truth s",
            "eval s",
            "max-stretch",
            "mean-stretch",
            "bits/node (sampled)",
            "n² matrix MiB (skipped)",
        ],
    );
    let mut records: Vec<ConstructionRecord> = Vec::new();
    for &n in sizes {
        let pairs_budget = cfg.pairs_sampled.unwrap_or(if cfg.quick { 2_000 } else { 10_000 });
        let mut rng = SmallRng::seed_from_u64(0x5CA1E + n as u64);
        let g =
            gen::preferential_attachment(n, 3, WeightDist::PowerOfTwo { max_exp: 30 }, &mut rng);
        // Group targets by source so ground truth needs one Dijkstra
        // per source, not per pair.
        let sources = pairs_budget.div_ceil(64).max(1);
        let workload = pairs::sample_grouped(n, sources, pairs_budget.div_ceil(sources), 0x5CA1E);

        let mut params = SchemeParams::new(k, 0x5CA1E);
        if cfg.spill {
            params = params.with_spill();
        }
        if cfg.per_node_budgets {
            params = params.with_s_budget_mode(SBudgetMode::PerNode);
        }
        let routers: Vec<(&str, Box<dyn Router + Sync>, f64)> = {
            let t0 = std::time::Instant::now();
            let scheme = match cfg.construction {
                ConstructionKind::OnDemand => Scheme::build_on_demand(g.clone(), params),
                ConstructionKind::Dense => {
                    let d = apsp(&g);
                    Scheme::build_with_matrix(g.clone(), &d, params)
                }
            };
            let scheme_s = t0.elapsed().as_secs_f64();
            records.push(ConstructionRecord::collect(n, k, cfg.threads, scheme_s, scheme.stats()));
            let scheme: Box<dyn Router + Sync> = Box::new(scheme);
            let t1 = std::time::Instant::now();
            let chain: Box<dyn Router + Sync> =
                Box::new(baselines::LandmarkChaining::build_on_demand(g.clone(), k, 0x5CA1E));
            let chain_s = t1.elapsed().as_secs_f64();
            vec![("agm-scale-free", scheme, scheme_s), ("landmark-chaining", chain, chain_s)]
        };

        // One truth serves both routers: the per-source Dijkstras
        // depend only on the workload, not on who routes it.
        let t1 = std::time::Instant::now();
        let mut truth = OnDemandTruth::new(&g);
        truth.prefetch_pairs(&workload, cfg.threads);
        let truth_s = t1.elapsed().as_secs_f64();

        for (name, router, build_s) in &routers {
            let t2 = std::time::Instant::now();
            let stats = evaluate_parallel(&g, &truth, router.as_ref(), &workload, cfg.threads);
            let eval_s = t2.elapsed().as_secs_f64();
            assert_eq!(stats.failures, 0, "scaling workload must deliver every pair");

            // A 256-node sample keeps the storage column affordable at
            // sizes where auditing all n nodes would dominate.
            let stride = (n / 256).max(1);
            let sampled: Vec<u64> = (0..n)
                .step_by(stride)
                .map(|v| router.node_storage_bits(NodeId(v as u32)))
                .collect();
            let mean_bits = sampled.iter().sum::<u64>() as f64 / sampled.len() as f64;

            t.row(vec![
                name.to_string(),
                n.to_string(),
                workload.len().to_string(),
                truth.rows_computed().to_string(),
                f(*build_s),
                f(truth_s),
                f(eval_s),
                f(stats.max_stretch),
                f(stats.mean_stretch),
                bitsf(mean_bits),
                f((n as f64) * (n as f64) * 8.0 / (1024.0 * 1024.0)),
            ]);
        }
    }
    // Quick runs never overwrite the checked-in full-size baseline
    // unless explicitly redirected.
    let out = std::env::var("BENCH_CONSTRUCTION_OUT").ok();
    match (out, cfg.quick) {
        (None, true) => {
            t.note("Construction records not persisted in --quick mode (set");
            t.note("BENCH_CONSTRUCTION_OUT to capture them; per-phase laps, peak RSS,");
        }
        (out, _) => {
            let out = out.unwrap_or_else(|| "BENCH_construction.json".to_string());
            match std::fs::write(&out, bench_record::render_json(&records)) {
                Ok(()) => t.note(format!(
                    "Construction records written to {out} (per-phase laps, peak RSS,"
                )),
                Err(e) => t.note(format!(
                    "Construction records NOT written to {out}: {e} (laps, peak RSS,"
                )),
            };
        }
    }
    t.note("membership counts — the CI smoke's regression baseline).");
    t.note("The AGM scheme's own preprocessing now runs matrix-free: bounded-Dijkstra");
    t.note("ranges and E(u,i) balls, one Dijkstra per landmark for claims/centers/S-");
    t.note("budgets, capped-level scopes for whole-graph regions. No dense DistMatrix");
    t.note("is ever materialized (last column: what the old path would have needed).");
    t.render()
}

/// Serving: snapshot round trip plus a sharded query batch. Builds the
/// scheme matrix-free, saves it to a versioned snapshot, loads it back
/// (resident and lazy), and serves the same batch through
/// [`routing_core::serve_batch`] next to the shortest-path-table
/// baseline — throughput (routes/sec) and latency (p50/p99 µs) per
/// router. The scheme rows also emit `BENCH_serving.json` datapoints
/// (path override: `BENCH_SERVING_OUT`; suppressed in `--quick` runs
/// unless redirected, mirroring `sc`).
pub fn serve(cfg: &RunConfig) -> String {
    let (n, batch) = if cfg.quick { (400, 2_000) } else { (3_000, 20_000) };
    let k = 2;
    let mut t = Table::new(
        format!(
            "SERVE — snapshot-loaded scheme vs shortest-path tables (pref-attach n={n}, k={k})"
        ),
        &["router", "load s", "queries", "delivered", "routes/s", "p50 µs", "p99 µs"],
    );
    let mut rng = SmallRng::seed_from_u64(0x5EB0 + n as u64);
    let g = gen::preferential_attachment(n, 3, WeightDist::PowerOfTwo { max_exp: 20 }, &mut rng);
    let queries = pairs::sample(n, batch, 0x5EB1);

    let built = Scheme::build_on_demand(g.clone(), SchemeParams::new(k, 0x5EB0));
    let snap = std::env::temp_dir().join(format!("agm-serve-bench-{}.snap", std::process::id()));
    built.save(&snap).expect("snapshot save");
    let snapshot_bytes = std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);
    drop(built); // serve strictly from the snapshot — no rebuild path

    let mut records: Vec<routing_core::ServingRecord> = Vec::new();
    let mut scheme_record: Option<(f64, routing_core::ServeReport)> = None;
    type SchemeLoader = fn(&std::path::Path) -> std::io::Result<Scheme>;
    let loaders: [(&str, SchemeLoader); 2] = [
        ("agm (snapshot, resident)", |p| Scheme::load(p)),
        ("agm (snapshot, lazy trees)", |p| Scheme::load_lazy(p)),
    ];
    for (name, load) in loaders {
        let t0 = std::time::Instant::now();
        let scheme = load(&snap).expect("snapshot load");
        let load_s = t0.elapsed().as_secs_f64();
        let rep = routing_core::serve_batch(&scheme, &queries, cfg.threads);
        assert_eq!(rep.delivered, rep.queries, "serving must deliver every query");
        t.row(vec![
            name.to_string(),
            f(load_s),
            rep.queries.to_string(),
            rep.delivered.to_string(),
            f(rep.routes_per_sec),
            f(rep.p50_us),
            f(rep.p99_us),
        ]);
        if scheme_record.is_none() {
            scheme_record = Some((load_s, rep));
        }
    }
    let _ = std::fs::remove_file(&snap);

    let t0 = std::time::Instant::now();
    let tables = baselines::ShortestPathTables::build(g.clone());
    let build_s = t0.elapsed().as_secs_f64();
    let rep = routing_core::serve_batch(&tables, &queries, cfg.threads);
    t.row(vec![
        "sp-tables (rebuilt, n² state)".to_string(),
        f(build_s),
        rep.queries.to_string(),
        rep.delivered.to_string(),
        f(rep.routes_per_sec),
        f(rep.p50_us),
        f(rep.p99_us),
    ]);

    let (load_seconds, scheme_rep) = scheme_record.expect("scheme served");
    records.push(routing_core::ServingRecord {
        n,
        k,
        snapshot_bytes,
        load_seconds,
        scheme: scheme_rep,
        baseline: Some(("sp_tables".to_string(), rep)),
    });
    let out = std::env::var("BENCH_SERVING_OUT").ok();
    match (out, cfg.quick) {
        (None, true) => {
            t.note("Serving records not persisted in --quick mode (set BENCH_SERVING_OUT");
            t.note("to capture them).");
        }
        (out, _) => {
            let out = out.unwrap_or_else(|| "BENCH_serving.json".to_string());
            match std::fs::write(&out, bench_record::render_serving_json(&records)) {
                Ok(()) => t.note(format!("Serving records written to {out}.")),
                Err(e) => t.note(format!("Serving records NOT written to {out}: {e}.")),
            };
        }
    }
    t.note("The serve path never rebuilds: the scheme is dropped after save and");
    t.note("reconstructed purely from the snapshot's flat arenas. The sp-tables");
    t.note("baseline routes optimally but must be rebuilt from scratch (no snapshot)");
    t.note("and holds Θ(n²) next-hop state — the trade the paper's tables avoid.");
    t.render()
}

/// Churn: a seeded edge-only mutation schedule driven through
/// [`routing_core::churn::run_churn`]. Per epoch the *stale* scheme is
/// replayed on the mutated graph (paths crossing a failed edge
/// truncate to undelivered; surviving paths re-cost at current
/// weights), then [`Scheme::repair`] patches the scheme and the same
/// workload is measured again — degradation and recovery side by side.
/// Honors `--pairs-sampled`, `--threads`, `--spill`, and
/// `--per-node-budgets`. Each epoch also emits a machine-readable
/// [`EvaluationRecord`]; the collected records land in
/// `BENCH_evaluation.json` (path override: `BENCH_EVALUATION_OUT`;
/// suppressed in `--quick` runs unless redirected, mirroring `sc`).
pub fn churn(cfg: &RunConfig) -> String {
    let (n, epochs, fails, reweights, pairs_default) =
        if cfg.quick { (1_200, 3, 6, 6, 400) } else { (10_000, 3, 30, 30, 2_000) };
    let k = 2;
    let mut t = Table::new(
        format!(
            "CHURN — stale vs repaired scheme across mutation epochs (pref-attach n={n}, k={k})"
        ),
        &[
            "epoch",
            "batch Δ",
            "pending Δ",
            "stale deliv",
            "stale p99",
            "stale max",
            "outcome",
            "trees reused",
            "repair s",
            "fixed deliv",
            "fixed p99",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0xC4A0 + n as u64);
    let g = gen::preferential_attachment(n, 3, WeightDist::PowerOfTwo { max_exp: 30 }, &mut rng);
    let churn_cfg = ChurnConfig::edges_only(0xC4A1, epochs, fails, reweights);
    let plan = ChurnPlan::generate(&g, &churn_cfg);

    let mut params = SchemeParams::new(k, 0xC4A0);
    if cfg.spill {
        params = params.with_spill();
    }
    if cfg.per_node_budgets {
        params = params.with_s_budget_mode(SBudgetMode::PerNode);
    }
    let pairs_per_epoch = cfg.pairs_sampled.unwrap_or(pairs_default);
    let rows = run_churn(&g, params, &plan, pairs_per_epoch, 0xC4A2, cfg.threads);

    let mut records: Vec<EvaluationRecord> = Vec::new();
    for row in &rows {
        records.push(EvaluationRecord::collect(n, k, row));
        let (outcome, reused, repair_s) = match &row.outcome {
            RepairOutcome::Repaired(r) => (
                "repaired".to_string(),
                format!("{}/{}", r.trees_reused, r.trees_reused + r.trees_rebuilt),
                r.seconds,
            ),
            RepairOutcome::RebuiltFull { reason, seconds } => {
                (format!("rebuilt ({reason:?})"), "—".to_string(), *seconds)
            }
            RepairOutcome::Deferred { reason } => {
                (format!("deferred ({reason:?})"), "—".to_string(), 0.0)
            }
        };
        // Edge-only schedules stay connected, so every epoch must come
        // back current — and once repaired, Theorem 1 holds on the
        // mutated graph: nothing may fail.
        assert!(
            !matches!(row.outcome, RepairOutcome::Deferred { .. }),
            "edge-only churn deferred in epoch {}",
            row.epoch
        );
        let post = row.post.as_ref().expect("repair ran");
        assert_eq!(post.failures, 0, "repaired scheme dropped pairs in epoch {}", row.epoch);
        t.row(vec![
            row.epoch.to_string(),
            row.batch_deltas.to_string(),
            row.pending_deltas.to_string(),
            f(row.pre_delivery_rate()),
            f(row.pre.p99_stretch),
            f(row.pre.max_stretch),
            outcome,
            reused,
            f(repair_s),
            f(row.post_delivery_rate().unwrap_or(0.0)),
            f(post.p99_stretch),
        ]);
    }
    // Quick runs never overwrite the checked-in full-size baseline
    // unless explicitly redirected.
    let out = std::env::var("BENCH_EVALUATION_OUT").ok();
    match (out, cfg.quick) {
        (None, true) => {
            t.note("Evaluation records not persisted in --quick mode (set");
            t.note("BENCH_EVALUATION_OUT to capture them).");
        }
        (out, _) => {
            let out = out.unwrap_or_else(|| "BENCH_evaluation.json".to_string());
            match std::fs::write(&out, bench_record::render_evaluation_json(&records)) {
                Ok(()) => t.note(format!("Evaluation records written to {out}.")),
                Err(e) => t.note(format!("Evaluation records NOT written to {out}: {e}.")),
            };
        }
    }
    t.note("Stale rows replay the pre-mutation scheme's paths on the mutated graph:");
    t.note("a path crossing a failed edge counts as undelivered, surviving paths");
    t.note("re-cost at the current weights. 'trees reused' counts center trees");
    t.note("carried over bit-identically — reuse tracks how close the batch lands");
    t.note("to the pref-attach hubs (a hub-adjacent change dirties most distance");
    t.note("vectors; locality families reuse more — see the repair_parity tests).");
    t.render()
}
