#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # routing-bench — the experiment harness
//!
//! One function per experiment in DESIGN.md §3's index; each takes the
//! shared [`RunConfig`] and returns a formatted table so the
//! `experiments` binary, the integration tests, and EXPERIMENTS.md all
//! draw from the same code. Run
//! `cargo run --release -p routing-bench --bin experiments -- all`
//! to regenerate everything.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Which ground truth the evaluation engine uses (`--truth`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TruthKind {
    /// Dense APSP matrix (Θ(n²) memory; exact, small n).
    #[default]
    Dense,
    /// [`graphkit::OnDemandTruth`]: lazy per-source Dijkstra with a
    /// parallel pair prefetch — same answers, no n² anywhere.
    OnDemand,
}

/// How the AGM `Scheme` is preprocessed in the scaling experiment
/// (`--construction`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConstructionKind {
    /// `Scheme::build_on_demand`: bounded Dijkstras + landmark
    /// columns, no n×n anywhere — the only affordable option at the
    /// `sc` sizes, and the default there.
    #[default]
    OnDemand,
    /// `Scheme::build_with_matrix` over a fresh APSP — the parity
    /// oracle; use with `--quick` (it is exactly the n² wall the
    /// on-demand path removes).
    Dense,
}

/// Knobs shared by every experiment runner — the CLI surface of the
/// `experiments` binary (`--quick`, `--pairs-sampled`, `--threads`,
/// `--truth`, `--construction`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunConfig {
    /// Shrink instance sizes (the mode the integration tests run).
    pub quick: bool,
    /// Override the sampled-pair budget of evaluation workloads.
    pub pairs_sampled: Option<usize>,
    /// Worker threads for evaluation and truth prefetch (0 = available
    /// parallelism).
    pub threads: usize,
    /// Ground-truth engine for stretch evaluation.
    pub truth: TruthKind,
    /// Scheme preprocessing engine for the `sc` scaling experiment.
    pub construction: ConstructionKind,
    /// Stream center trees to the spill file during the `sc` builds
    /// (`--spill`).
    pub spill: bool,
    /// Build the `sc` schemes with instance-tuned per-node S budgets
    /// instead of the global level maxima (`--per-node-budgets`).
    pub per_node_budgets: bool,
}

impl RunConfig {
    /// Defaults with the given quick flag (dense truth, auto threads).
    pub fn new(quick: bool) -> Self {
        RunConfig { quick, ..Default::default() }
    }
}

/// The experiment registry: (id, description, runner).
pub type Runner = fn(&RunConfig) -> String;

/// All experiments in DESIGN.md order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("t1", "Theorem 1: stretch & storage vs k", experiments::t1),
        ("t2", "Theorem 1: storage breakdown by component", experiments::t2),
        ("f1", "Figure 1 / Lemma 2: dense neighborhoods", experiments::f1),
        ("f2", "Figure 2 / Lemma 3: sparse neighborhoods", experiments::f2),
        ("c1", "Claim 1: landmark hitting", experiments::c1),
        ("c2", "Claim 2: landmark sparsity", experiments::c2),
        ("l4", "Lemma 4: j-bounded tree searches", experiments::l4),
        ("l5", "Lemma 5: labeled tree routing", experiments::l5),
        ("l6", "Lemma 6: sparse tree covers", experiments::l6),
        ("l7", "Lemma 7: cover-tree routing", experiments::l7),
        ("sf", "Scale-free: storage vs aspect ratio", experiments::sf),
        ("x1", "O(2^k) vs O(k): stretch growth in k", experiments::x1),
        ("x2", "Space-stretch frontier across schemes", experiments::x2),
        ("a1", "Ablation: sparse-only / dense-only", experiments::a1),
        ("dx", "Directed extension (paper §4)", experiments::dx),
        ("sc", "Scaling: Theorem-1 construction & evaluation beyond the n² wall", experiments::sc),
        (
            "serve",
            "Serving: snapshot load + sharded query batches vs sp-tables",
            experiments::serve,
        ),
        ("churn", "Churn: stale vs repaired scheme across mutation epochs", experiments::churn),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_ids_unique() {
        let reg = super::registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(before, 18);
    }
}
