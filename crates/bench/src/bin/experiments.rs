//! Regenerate the paper's tables/figures.
//!
//! ```text
//! experiments [--quick] [ids…|all]
//! ```
//!
//! Without ids, prints the registry. `--quick` shrinks instance sizes
//! (the mode the integration tests run).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args.iter().filter(|a| *a != "--quick").map(|s| s.as_str()).collect();
    let registry = routing_bench::registry();
    if ids.is_empty() {
        eprintln!("usage: experiments [--quick] [ids…|all]\n\navailable experiments:");
        for (id, desc, _) in &registry {
            eprintln!("  {id:<4} {desc}");
        }
        std::process::exit(2);
    }
    let run_all = ids.contains(&"all");
    let mut ran = 0;
    for (id, desc, runner) in &registry {
        if run_all || ids.contains(id) {
            eprintln!("[experiments] running {id} — {desc}");
            let started = std::time::Instant::now();
            print!("{}", runner(quick));
            eprintln!("[experiments] {id} done in {:.1}s", started.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {ids:?}");
        std::process::exit(2);
    }
}
