//! Regenerate the paper's tables/figures.
//!
//! ```text
//! experiments [--quick] [--pairs-sampled N] [--threads T]
//!             [--truth dense|ondemand] [--construction dense|ondemand]
//!             [--spill] [--per-node-budgets] [ids…|all]
//! ```
//!
//! Without ids, prints the registry. `--quick` shrinks instance sizes
//! (the mode the integration tests run). `--pairs-sampled` overrides
//! the evaluation workload budget, `--threads` the evaluation/prefetch
//! worker count (0 = auto), `--truth` selects the ground-truth engine
//! (the dense Θ(n²) matrix or on-demand Dijkstra), and
//! `--construction` picks the `sc` experiment's scheme preprocessing
//! (matrix-free by default; `dense` is the APSP-backed parity build).
//! `--spill` streams the `sc` builds' center trees to disk and
//! `--per-node-budgets` switches them to instance-tuned per-node S
//! budgets. Tables are bit-identical across `--threads`, `--truth`,
//! `--construction`, and `--spill` settings.

use routing_bench::{ConstructionKind, RunConfig, TruthKind};

fn usage(registry: &[(&str, &str, routing_bench::Runner)]) -> ! {
    eprintln!(
        "usage: experiments [--quick] [--pairs-sampled N] [--threads T] \
         [--truth dense|ondemand] [--construction dense|ondemand] \
         [--spill] [--per-node-budgets] [ids…|all]\n\n\
         available experiments:"
    );
    for (id, desc, _) in registry {
        eprintln!("  {id:<4} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = routing_bench::registry();
    let mut cfg = RunConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--pairs-sampled" => {
                let v = it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v > 0);
                let Some(v) = v else {
                    eprintln!("--pairs-sampled needs a positive integer");
                    usage(&registry);
                };
                cfg.pairs_sampled = Some(v);
            }
            "--threads" => {
                let v = it.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--threads needs an integer (0 = auto)");
                    usage(&registry);
                };
                cfg.threads = v;
            }
            "--truth" => match it.next().as_deref() {
                Some("dense") => cfg.truth = TruthKind::Dense,
                Some("ondemand") => cfg.truth = TruthKind::OnDemand,
                _ => {
                    eprintln!("--truth must be 'dense' or 'ondemand'");
                    usage(&registry);
                }
            },
            "--construction" => match it.next().as_deref() {
                Some("dense") => cfg.construction = ConstructionKind::Dense,
                Some("ondemand") => cfg.construction = ConstructionKind::OnDemand,
                _ => {
                    eprintln!("--construction must be 'dense' or 'ondemand'");
                    usage(&registry);
                }
            },
            "--spill" => cfg.spill = true,
            "--per-node-budgets" => cfg.per_node_budgets = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage(&registry);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage(&registry);
    }
    let run_all = ids.iter().any(|i| i == "all");
    let mut ran = 0;
    for (id, desc, runner) in &registry {
        if run_all || ids.iter().any(|i| i == id) {
            eprintln!("[experiments] running {id} — {desc}");
            let started = std::time::Instant::now();
            print!("{}", runner(&cfg));
            eprintln!("[experiments] {id} done in {:.1}s", started.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {ids:?}");
        std::process::exit(2);
    }
}
