//! Criterion bench for experiment L4: j-bounded searches on the
//! Lemma 4 error-reporting trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::{self, WeightDist};
use graphkit::{dijkstra, NodeId, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treeroute::laing::ErrorReportingTree;

fn bounded_search(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = gen::random_tree(2000, WeightDist::UniformInt { lo: 1, hi: 16 }, &mut rng);
    let sp = dijkstra::dijkstra(&g, NodeId(0));
    let tree = Tree::from_sssp(&g, &sp, g.nodes());
    let ert = ErrorReportingTree::new(tree, 3, 2);
    let mut group = c.benchmark_group("lemma4/search");
    for j in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("j{j}")), &j, |b, &j| {
            let mut t = 0u32;
            b.iter(|| {
                t = (t + 1) % 2000;
                std::hint::black_box(ert.search(NodeId(t), j))
            });
        });
    }
    // Miss path: absent ids trigger the full negative-response walk.
    group.bench_function("miss/j3", |b| {
        b.iter(|| std::hint::black_box(ert.search(NodeId(5_000_000), 3)));
    });
    group.finish();
}

fn build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma4/build");
    group.sample_size(10);
    for m in [500usize, 2000] {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::random_tree(m, WeightDist::Unit, &mut rng);
        let sp = dijkstra::dijkstra(&g, NodeId(0));
        let tree = Tree::from_sssp(&g, &sp, g.nodes());
        group.bench_with_input(BenchmarkId::from_parameter(format!("m{m}")), &m, |b, _| {
            b.iter(|| std::hint::black_box(ErrorReportingTree::new(tree.clone(), 3, 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bounded_search, build);
criterion_main!(benches);
