//! Criterion bench for the graph substrate: Dijkstra, bounded balls,
//! parallel APSP — the preprocessing costs everything else pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::Family;
use graphkit::{ball, dijkstra, metrics, NodeId};

fn sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/dijkstra");
    for n in [1024usize, 4096] {
        let g = Family::Geometric.generate(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &n, |b, _| {
            let mut s = 0u32;
            b.iter(|| {
                s = (s + 97) % g.n() as u32;
                std::hint::black_box(dijkstra::dijkstra(&g, NodeId(s)))
            });
        });
    }
    group.finish();
}

fn balls(c: &mut Criterion) {
    let g = Family::Geometric.generate(4096, 10);
    c.bench_function("substrate/ball_r100", |b| {
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 97) % g.n() as u32;
            std::hint::black_box(ball(&g, NodeId(s), 100))
        });
    });
}

fn apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/apsp");
    group.sample_size(10);
    for n in [256usize, 512] {
        let g = Family::Geometric.generate(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &n, |b, _| {
            b.iter(|| std::hint::black_box(metrics::apsp(&g)));
        });
    }
    group.finish();
}

criterion_group!(benches, sssp, balls, apsp);
criterion_main!(benches);
