//! Criterion bench for the evaluation engine itself: sequential vs
//! sharded routing, and dense-matrix vs on-demand ground truth, on a
//! scale-free instance. The parallel/on-demand combinations must give
//! bit-identical stats — this bench tracks what they cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::{self, WeightDist};
use graphkit::metrics::apsp;
use graphkit::OnDemandTruth;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sim::{evaluate, evaluate_parallel, pairs};

fn eval_engines(c: &mut Criterion) {
    let n = 1500;
    let mut rng = SmallRng::seed_from_u64(0xE7A1);
    let g = gen::preferential_attachment(n, 3, WeightDist::PowerOfTwo { max_exp: 20 }, &mut rng);
    let router = baselines::LandmarkChaining::build_on_demand(g.clone(), 2, 0xE7A1);
    let workload = pairs::sample_grouped(n, 32, 32, 0xE7A1);
    let d = apsp(&g);

    let mut group = c.benchmark_group("eval_scaling");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("dense", "seq"), &workload, |b, w| {
        b.iter(|| black_box(evaluate(&g, &d, &router, w)));
    });
    group.bench_with_input(BenchmarkId::new("dense", "par"), &workload, |b, w| {
        b.iter(|| black_box(evaluate_parallel(&g, &d, &router, w, 0)));
    });
    // On-demand: prefetch + evaluate per iteration — the end-to-end
    // cost a matrix-free experiment actually pays.
    group.bench_with_input(BenchmarkId::new("ondemand", "par"), &workload, |b, w| {
        b.iter(|| {
            let mut truth = OnDemandTruth::new(&g);
            truth.prefetch_pairs(w, 0);
            black_box(evaluate_parallel(&g, &truth, &router, w, 0))
        });
    });
    group.finish();
}

criterion_group!(benches, eval_engines);
criterion_main!(benches);
