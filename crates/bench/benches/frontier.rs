//! Criterion bench for experiment X2's frontier: per-route latency of
//! every scheme on the same graph — the time cost of each point on the
//! space-stretch curve (plus the distance oracle's O(k) queries).

use baselines::{
    DistanceOracle, HierarchicalScheme, LandmarkChaining, ShortestPathTables, TzLabeled,
};
use criterion::{criterion_group, criterion_main, Criterion};
use graphkit::gen::Family;
use graphkit::metrics::apsp;
use graphkit::NodeId;
use routing_core::{Scheme, SchemeParams};
use sim::{pairs, Router};

fn frontier(c: &mut Criterion) {
    let n = 256;
    let k = 3;
    let g = Family::Geometric.generate(n, 12);
    let d = apsp(&g);
    let workload = pairs::sample(n, 512, 13);
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(ShortestPathTables::build(g.clone())),
        Box::new(HierarchicalScheme::build(g.clone(), k, 14)),
        Box::new(LandmarkChaining::build_with_matrix(g.clone(), &d, k, 14)),
        Box::new(TzLabeled::build_with_matrix(g.clone(), &d, k, 14)),
        Box::new(Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(k, 14))),
    ];
    let mut group = c.benchmark_group("frontier/route");
    for r in &routers {
        group.bench_function(r.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = workload[i % workload.len()];
                i += 1;
                std::hint::black_box(r.route(s, t))
            });
        });
    }
    group.finish();

    let oracle = DistanceOracle::build(&d, k, 14);
    c.bench_function("frontier/oracle_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = workload[i % workload.len()];
            i += 1;
            std::hint::black_box(oracle.query(NodeId(s.0), NodeId(t.0)))
        });
    });
}

criterion_group!(benches, frontier);
criterion_main!(benches);
