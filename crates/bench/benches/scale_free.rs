//! Criterion bench for experiment SF: scheme construction across
//! aspect ratios (the build cost must not grow with log Δ either).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen;
use graphkit::metrics::apsp;
use routing_core::{Scheme, SchemeParams};

fn build_vs_aspect_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_free/build");
    group.sample_size(10);
    for e in [4u32, 20, 40] {
        let g = gen::exponential_ring(64, e);
        let d = apsp(&g);
        group.bench_with_input(BenchmarkId::from_parameter(format!("logdelta{e}")), &e, |b, _| {
            b.iter(|| {
                std::hint::black_box(Scheme::build_with_matrix(
                    g.clone(),
                    &d,
                    SchemeParams::new(2, 8),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, build_vs_aspect_ratio);
criterion_main!(benches);
