//! Criterion bench for experiment L6: sparse tree cover construction
//! and the Lemma 7 router lookups over its trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::Family;
use graphkit::metrics::apsp;
use graphkit::NodeId;
use treeroute::cover_router::CoverTreeRouter;

fn cover_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma6/build");
    group.sample_size(10);
    for n in [128usize, 512] {
        let g = Family::Geometric.generate(n, 5);
        let d = apsp(&g);
        let rho = (d.diameter() / 8).max(1);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &n, |b, _| {
            b.iter(|| std::hint::black_box(covers::build_cover(&g, 3, rho)));
        });
    }
    group.finish();
}

fn cover_lookup(c: &mut Criterion) {
    let g = Family::Geometric.generate(512, 6);
    let d = apsp(&g);
    let cover = covers::build_cover(&g, 3, (d.diameter() / 4).max(1));
    // Largest tree carries the representative lookup load.
    let tree = cover.trees.iter().max_by_key(|t| t.size()).unwrap().clone();
    let m = tree.size() as u32;
    let router = CoverTreeRouter::new(tree, 3, 7);
    c.bench_function("lemma7/lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % m;
            let target = router.labeled().tree().graph_id(i);
            std::hint::black_box(router.route(0, target))
        });
    });
    c.bench_function("lemma7/miss", |b| {
        b.iter(|| std::hint::black_box(router.route(0, NodeId(9_999_999))));
    });
}

criterion_group!(benches, cover_build, cover_lookup);
criterion_main!(benches);
