//! Criterion bench for experiment T1's hot paths: routing throughput
//! and scheme construction of the Theorem 1 scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphkit::gen::Family;
use graphkit::metrics::apsp;
use routing_core::{Scheme, SchemeParams};
use sim::{pairs, Router};

fn route_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1/route");
    for k in [2usize, 3, 4] {
        let g = Family::Geometric.generate(256, 42);
        let d = apsp(&g);
        let scheme = Scheme::build_with_matrix(g, &d, SchemeParams::new(k, 42));
        let workload = pairs::sample(256, 512, 7);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = workload[i % workload.len()];
                i += 1;
                std::hint::black_box(scheme.route(s, t))
            });
        });
    }
    group.finish();
}

fn build_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1/build");
    group.sample_size(10);
    for n in [128usize, 256] {
        let g = Family::Geometric.generate(n, 43);
        let d = apsp(&g);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(Scheme::build_with_matrix(
                    g.clone(),
                    &d,
                    SchemeParams::new(3, 43),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, route_throughput, build_time);
criterion_main!(benches);
