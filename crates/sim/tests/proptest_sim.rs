//! Property-based tests for the simulator's audit machinery: the
//! validator must accept exactly the genuine walks and the evaluator's
//! aggregates must be order statistics of the per-pair stretches.

use graphkit::dijkstra::dijkstra;
use graphkit::gen::WeightDist;
use graphkit::{Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sim::{
    evaluate, evaluate_lenient, evaluate_parallel, evaluate_parallel_lenient, pairs,
    validate_trace, RouteTrace, Router, StretchStats, TraceError,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, any::<u64>(), 0.0f64..0.3).prop_map(|(n, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        graphkit::gen::erdos_renyi(n, p, WeightDist::UniformInt { lo: 1, hi: 20 }, &mut rng)
    })
}

/// A router that pads shortest paths with a detour through a random
/// neighbor — delivered, valid, but stretched.
struct Detour<'a> {
    g: &'a Graph,
}

impl Router for Detour<'_> {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        let sp = dijkstra(self.g, src);
        let Some(mut path) = sp.path_to(dst) else {
            return RouteTrace { path: vec![src], cost: 0, delivered: false };
        };
        // Detour: bounce to src's first neighbor and back before going.
        if let Some((nb, w)) = self.g.edges_of(src).next() {
            if nb != dst {
                let mut p = vec![src, nb, src];
                p.extend(path.drain(1..));
                let cost = sp.d(dst) + 2 * w;
                return RouteTrace { path: p, cost, delivered: true };
            }
        }
        let cost = sp.d(dst);
        RouteTrace { path, cost, delivered: true }
    }
    fn name(&self) -> &str {
        "detour"
    }
    fn node_storage_bits(&self, _v: NodeId) -> u64 {
        1
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Genuine shortest-path walks always validate.
    #[test]
    fn real_walks_validate(g in arb_graph()) {
        let sp = dijkstra(&g, NodeId(0));
        for v in 0..g.n() as u32 {
            if let Some(path) = sp.path_to(NodeId(v)) {
                let t = RouteTrace { path, cost: sp.d(NodeId(v)), delivered: true };
                prop_assert_eq!(validate_trace(&g, NodeId(0), NodeId(v), &t), Ok(()));
            }
        }
    }

    /// Inflating or deflating the claimed cost is always caught.
    #[test]
    fn cost_fraud_detected(g in arb_graph(), delta in 1u64..50) {
        let sp = dijkstra(&g, NodeId(0));
        for v in 1..g.n() as u32 {
            if let Some(path) = sp.path_to(NodeId(v)) {
                if path.len() < 2 { continue; }
                let t = RouteTrace {
                    path,
                    cost: sp.d(NodeId(v)) + delta,
                    delivered: true,
                };
                let caught = matches!(
                    validate_trace(&g, NodeId(0), NodeId(v), &t),
                    Err(TraceError::CostMismatch { .. })
                );
                prop_assert!(caught, "cost fraud not detected");
                break;
            }
        }
    }

    /// Splicing a non-edge into a walk is always caught.
    #[test]
    fn teleport_detected(g in arb_graph()) {
        // Find any non-adjacent pair and claim a direct hop.
        for u in 0..g.n() as u32 {
            for v in 0..g.n() as u32 {
                if u != v && g.edge_weight(NodeId(u), NodeId(v)).is_none() {
                    let t = RouteTrace {
                        path: vec![NodeId(u), NodeId(v)],
                        cost: 1,
                        delivered: true,
                    };
                    let caught = matches!(
                        validate_trace(&g, NodeId(u), NodeId(v), &t),
                        Err(TraceError::NotAnEdge { .. })
                    );
                    prop_assert!(caught, "teleport not detected");
                    return Ok(());
                }
            }
        }
    }

    /// Evaluator aggregates are consistent: 1 ≤ p50 ≤ p99 ≤ max, and a
    /// detouring router shows strictly positive mean stretch inflation.
    #[test]
    fn evaluator_orders_statistics(g in arb_graph()) {
        let d = graphkit::metrics::apsp(&g);
        if !d.connected() { return Ok(()); }
        let r = Detour { g: &g };
        let stats = evaluate(&g, &d, &r, &pairs::all(g.n()));
        prop_assert_eq!(stats.failures, 0);
        prop_assert!(stats.p50_stretch >= 1.0 - 1e-12);
        prop_assert!(stats.p50_stretch <= stats.p99_stretch + 1e-12);
        prop_assert!(stats.p99_stretch <= stats.max_stretch + 1e-12);
        prop_assert!(stats.mean_stretch >= 1.0);
    }

    /// The parallel engine is bit-identical to the sequential one on
    /// random graphs, pair sets, and thread counts — strict and
    /// lenient, dense and on-demand ground truth alike.
    #[test]
    fn parallel_evaluation_is_bit_identical(
        g in arb_graph(),
        count in 1usize..150,
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        let d = graphkit::metrics::apsp(&g);
        if !d.connected() { return Ok(()); }
        let r = Detour { g: &g };
        let workload = pairs::sample(g.n(), count, seed);

        let seq = evaluate(&g, &d, &r, &workload);
        let par = evaluate_parallel(&g, &d, &r, &workload, threads);
        prop_assert!(stats_bits_equal(&seq, &par));

        let seq_len = evaluate_lenient(&g, &d, &r, &workload);
        let par_len = evaluate_parallel_lenient(&g, &d, &r, &workload, threads);
        prop_assert!(stats_bits_equal(&seq_len, &par_len));

        // Swapping in on-demand truth must not change a single bit.
        let mut truth = graphkit::OnDemandTruth::with_capacity(&g, 3);
        truth.prefetch_pairs(&workload, threads);
        let lazy = evaluate_parallel(&g, &truth, &r, &workload, threads);
        prop_assert!(stats_bits_equal(&seq, &lazy));
    }
}

/// Bitwise equality across every aggregate field.
fn stats_bits_equal(a: &StretchStats, b: &StretchStats) -> bool {
    a.pairs == b.pairs
        && a.failures == b.failures
        && a.max_stretch.to_bits() == b.max_stretch.to_bits()
        && a.mean_stretch.to_bits() == b.mean_stretch.to_bits()
        && a.p50_stretch.to_bits() == b.p50_stretch.to_bits()
        && a.p99_stretch.to_bits() == b.p99_stretch.to_bits()
        && a.mean_hops.to_bits() == b.mean_hops.to_bits()
}
