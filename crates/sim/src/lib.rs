#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # sim — message-level routing simulation and audit
//!
//! Routing schemes in this workspace *simulate* message forwarding:
//! they produce a [`RouteTrace`] (the sequence of graph nodes a message
//! visits). This crate keeps them honest and turns traces into the
//! numbers the experiments report:
//!
//! * [`validate_trace`] — every hop must be a real graph edge and the
//!   claimed cost must equal the sum of edge weights (no teleporting,
//!   no creative accounting);
//! * [`Router`] — the uniform interface every scheme (ours and the
//!   baselines) implements;
//! * [`GroundTruth`] — pluggable exact-distance source: the dense
//!   [`DistMatrix`] for small n, or [`graphkit::OnDemandTruth`] (lazy
//!   per-source Dijkstra) when the Θ(n²) matrix is unaffordable;
//! * [`evaluate`] / [`evaluate_parallel`] / [`StretchStats`] — per-pair
//!   stretch aggregation against any ground truth, sequentially or
//!   sharded across threads (results are bit-identical either way);
//! * [`StorageAudit`] — bits-per-node accounting with the max/mean/
//!   total views the tables print;
//! * [`ReplayRouter`] — a stale scheme's remembered paths replayed on
//!   a mutated graph (the churn workloads' pre-repair measurement:
//!   surviving paths re-costed at current weights, broken ones
//!   truncated to undelivered);
//! * [`pairs`] — deterministic all-pairs / sampled-pairs workloads.
//!
//! ## Evaluating beyond the n² wall
//!
//! ```
//! use graphkit::{gen::Family, OnDemandTruth};
//! use sim::{evaluate_parallel, pairs};
//! # use graphkit::{dijkstra::dijkstra, NodeId};
//! # struct Oracle { g: graphkit::Graph }
//! # impl sim::Router for Oracle {
//! #     fn route(&self, s: NodeId, t: NodeId) -> sim::RouteTrace {
//! #         let sp = dijkstra(&self.g, s);
//! #         sim::RouteTrace { path: sp.path_to(t).unwrap(), cost: sp.d(t), delivered: true }
//! #     }
//! #     fn name(&self) -> &str { "oracle" }
//! #     fn node_storage_bits(&self, _v: NodeId) -> u64 { 0 }
//! # }
//!
//! let g = Family::PrefAttach.generate(300, 7);
//! let router = Oracle { g: g.clone() };
//! let workload = pairs::sample_grouped(g.n(), 16, 8, 7);
//! let mut truth = OnDemandTruth::new(&g); // no dense matrix anywhere
//! truth.prefetch_pairs(&workload, 0);
//! let stats = evaluate_parallel(&g, &truth, &router, &workload, 0);
//! assert_eq!(stats.failures, 0);
//! ```

use graphkit::{Cost, DistMatrix, Graph, NodeId, OnDemandTruth, INFINITY};

/// The walk a message took through the graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTrace {
    /// Nodes visited, starting at the source. For a delivered message
    /// the last node is the destination.
    pub path: Vec<NodeId>,
    /// Total weighted cost claimed by the scheme.
    pub cost: Cost,
    /// Whether the message reached its destination.
    pub delivered: bool,
}

impl RouteTrace {
    /// A trivially-delivered trace (source == destination).
    pub fn trivial(at: NodeId) -> Self {
        // lint:allow(no-alloc-in-route): the trace owns its path; one Vec per route is the API
        RouteTrace { path: vec![at], cost: 0, delivered: true }
    }

    /// Number of hops (edges traversed).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Violations found by [`validate_trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Two consecutive path nodes are not adjacent in the graph.
    NotAnEdge {
        /// Index of the offending hop in the path.
        position: usize,
        /// Hop origin.
        from: NodeId,
        /// Hop target (not a neighbor of `from`).
        to: NodeId,
    },
    /// The claimed cost differs from the sum of traversed edge weights.
    CostMismatch {
        /// Cost the scheme claimed.
        claimed: Cost,
        /// Cost the walk actually incurs.
        actual: Cost,
    },
    /// A delivered trace does not end at the stated destination.
    WrongDestination {
        /// The requested destination.
        expected: NodeId,
        /// Where the walk actually ended.
        got: NodeId,
    },
    /// The trace does not start at the stated source.
    WrongSource {
        /// The requested source.
        expected: NodeId,
        /// Where the walk actually started.
        got: NodeId,
    },
    /// Empty path.
    Empty,
}

/// Audit a trace against the physical graph.
pub fn validate_trace(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    trace: &RouteTrace,
) -> Result<(), TraceError> {
    let Some(&first) = trace.path.first() else {
        return Err(TraceError::Empty);
    };
    if first != src {
        return Err(TraceError::WrongSource { expected: src, got: first });
    }
    let mut actual: Cost = 0;
    for (i, win) in trace.path.windows(2).enumerate() {
        match g.edge_weight(win[0], win[1]) {
            Some(w) => actual += w,
            None => return Err(TraceError::NotAnEdge { position: i, from: win[0], to: win[1] }),
        }
    }
    if actual != trace.cost {
        return Err(TraceError::CostMismatch { claimed: trace.cost, actual });
    }
    if trace.delivered {
        let &last = trace.path.last().unwrap();
        if last != dst {
            return Err(TraceError::WrongDestination { expected: dst, got: last });
        }
    }
    Ok(())
}

/// The uniform interface of every routing scheme.
pub trait Router {
    /// Route one message. Implementations must only consult per-node
    /// state along the walk (the trace validator and the scheme-level
    /// tests enforce the observable consequences).
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace;

    /// Scheme name for experiment tables.
    fn name(&self) -> &str;

    /// Bits of routing state stored at `v`.
    fn node_storage_bits(&self, v: NodeId) -> u64;
}

/// A router's remembered paths, replayed on a (possibly mutated)
/// graph: each hop of the inner router's trace is walked on `g` at
/// *current* edge weights, truncating at the first edge that no
/// longer exists.
///
/// This is how churn epochs measure a **stale** scheme against the
/// live network (`core::churn`): the scheme built on `G` keeps
/// emitting its old paths, and the replay scores them on `G′` —
/// surviving paths are re-costed with the current weights, paths
/// crossing a failed edge become undelivered (counted by the lenient
/// evaluators as failures). The surviving prefix is kept so traces
/// stay physically valid walks under [`validate_trace`].
pub struct ReplayRouter<'a, R: Router> {
    inner: &'a R,
    g: &'a Graph,
    name: String,
}

impl<'a, R: Router> ReplayRouter<'a, R> {
    /// Replay `inner`'s routes on `g`.
    pub fn new(inner: &'a R, g: &'a Graph) -> Self {
        let name = format!("{}+replay", inner.name());
        ReplayRouter { inner, g, name }
    }
}

impl<R: Router> Router for ReplayRouter<'_, R> {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        let inner = self.inner.route(src, dst);
        let Some(&first) = inner.path.first() else {
            // lint:allow(no-alloc-in-route): the trace owns its path; one Vec per route is the API
            return RouteTrace { path: vec![src], cost: 0, delivered: false };
        };
        // lint:allow(no-alloc-in-route): the replayed trace owns its path; one Vec per route is the API
        let mut path = vec![first];
        let mut cost: Cost = 0;
        for win in inner.path.windows(2) {
            let [a, b] = win else { continue };
            match self.g.edge_weight(*a, *b) {
                Some(w) => {
                    cost += w;
                    path.push(*b);
                }
                // The next hop fell to churn: the message is stuck at
                // the end of the surviving prefix.
                None => return RouteTrace { path, cost, delivered: false },
            }
        }
        RouteTrace { path, cost, delivered: inner.delivered }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        self.inner.node_storage_bits(v)
    }
}

/// Pluggable source of exact shortest-path distances for stretch
/// evaluation. Implemented by the dense [`DistMatrix`] (Θ(n²) memory,
/// small n) and by [`graphkit::OnDemandTruth`] (lazy per-source
/// Dijkstra, scales to 10⁵–10⁶ nodes). Every implementation must
/// return *exact* distances — the evaluator's sub-optimality assert
/// and bit-identical parallel merging both rely on it.
pub trait GroundTruth {
    /// Exact distance from `s` to `t` (`graphkit::INFINITY` if
    /// unreachable).
    fn d(&self, s: NodeId, t: NodeId) -> Cost;
}

impl GroundTruth for DistMatrix {
    #[inline(always)]
    fn d(&self, s: NodeId, t: NodeId) -> Cost {
        DistMatrix::d(self, s, t)
    }
}

impl GroundTruth for OnDemandTruth<'_> {
    #[inline(always)]
    fn d(&self, s: NodeId, t: NodeId) -> Cost {
        OnDemandTruth::d(self, s, t)
    }
}

/// Aggregated stretch results over a pair workload.
#[derive(Clone, Debug, Default)]
pub struct StretchStats {
    /// Pairs routed.
    pub pairs: usize,
    /// Pairs where delivery failed (should be zero for correct schemes).
    pub failures: usize,
    /// Maximum stretch observed.
    pub max_stretch: f64,
    /// Mean stretch.
    pub mean_stretch: f64,
    /// Median stretch.
    pub p50_stretch: f64,
    /// 99th-percentile stretch.
    pub p99_stretch: f64,
    /// Mean hop count.
    pub mean_hops: f64,
}

impl StretchStats {
    /// Aggregate per-pair samples into the reported order statistics —
    /// the single tail shared by the sequential and parallel
    /// evaluators. `stretches` holds one entry per *delivered* pair in
    /// workload order; sorting uses `f64::total_cmp`, so NaN-free
    /// inputs are not assumed (NaN sorts last and would surface in
    /// `max_stretch` rather than panic).
    pub fn from_samples(
        pairs: usize,
        mut stretches: Vec<f64>,
        hops_total: usize,
        failures: usize,
    ) -> Self {
        stretches.sort_unstable_by(f64::total_cmp);
        let n = stretches.len();
        let mean = stretches.iter().sum::<f64>() / n.max(1) as f64;
        StretchStats {
            pairs,
            failures,
            max_stretch: stretches.last().copied().unwrap_or(0.0),
            mean_stretch: mean,
            p50_stretch: percentile(&stretches, 0.50),
            p99_stretch: percentile(&stretches, 0.99),
            mean_hops: hops_total as f64 / n.max(1) as f64,
        }
    }
}

/// Per-shard accumulator: one stretch sample per delivered pair (in
/// workload order), total hops, and the undelivered count.
#[derive(Default)]
struct Samples {
    stretches: Vec<f64>,
    hops_total: usize,
    failures: usize,
}

/// Route one contiguous slice of the workload, validating every trace.
/// `strict` additionally asserts no route beats the ground truth (a
/// sub-optimal-impossible check that a lenient ablation run skips,
/// since its broken configurations may produce degenerate but valid
/// walks).
fn route_shard(
    g: &Graph,
    truth: &dyn GroundTruth,
    router: &dyn Router,
    pairs: &[(NodeId, NodeId)],
    strict: bool,
) -> Samples {
    let mut out = Samples { stretches: Vec::with_capacity(pairs.len()), ..Samples::default() };
    for &(s, t) in pairs {
        let trace = router.route(s, t);
        if let Err(e) = validate_trace(g, s, t, &trace) {
            panic!("{}: invalid trace {s}->{t}: {e:?}", router.name());
        }
        if !trace.delivered {
            out.failures += 1;
            continue;
        }
        let opt = truth.d(s, t);
        if opt == INFINITY {
            // The pair is disconnected under the current ground truth
            // (churn epochs evaluate against a mutated graph). Whatever
            // the router claims, there is no finite baseline — count a
            // failure instead of producing an infinite/zero stretch.
            out.failures += 1;
            continue;
        }
        let stretch = if opt == 0 { 1.0 } else { trace.cost as f64 / opt as f64 };
        if strict {
            assert!(
                stretch >= 1.0 - 1e-9,
                "{}: sub-optimal impossible: {s}->{t} cost {} < d {}",
                router.name(),
                trace.cost,
                opt
            );
        }
        out.stretches.push(stretch);
        out.hops_total += trace.hops();
    }
    out
}

/// Shard `pairs` into contiguous chunks, route them on `threads`
/// workers, and merge the per-shard samples back in workload order —
/// so downstream aggregation sees exactly the sequence the sequential
/// path produces.
fn route_sharded(
    g: &Graph,
    truth: &(dyn GroundTruth + Sync),
    router: &(dyn Router + Sync),
    pairs: &[(NodeId, NodeId)],
    strict: bool,
    threads: usize,
) -> Samples {
    let threads = resolve_threads(threads);
    if threads <= 1 || pairs.len() < 2 {
        return route_shard(g, truth, router, pairs, strict);
    }
    let chunk = pairs.len().div_ceil(threads);
    let mut shards: Vec<Option<Samples>> = (0..pairs.len().div_ceil(chunk)).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (slot, slice) in shards.iter_mut().zip(pairs.chunks(chunk)) {
            scope.spawn(move |_| {
                *slot = Some(route_shard(g, truth, router, slice, strict));
            });
        }
    })
    .expect("evaluation worker panicked");
    let mut merged = Samples { stretches: Vec::with_capacity(pairs.len()), ..Samples::default() };
    for shard in shards {
        let shard = shard.expect("all shards filled");
        merged.stretches.extend(shard.stretches);
        merged.hops_total += shard.hops_total;
        merged.failures += shard.failures;
    }
    merged
}

use graphkit::truth::resolve_threads;

/// Route every pair in `pairs`, validating each trace, and aggregate
/// stretch against the exact distances in `truth`.
///
/// Panics on any trace violation or failed delivery — experiments must
/// not silently average over broken routes.
pub fn evaluate(
    g: &Graph,
    truth: &dyn GroundTruth,
    router: &dyn Router,
    pairs: &[(NodeId, NodeId)],
) -> StretchStats {
    let s = route_shard(g, truth, router, pairs, true);
    assert_eq!(s.failures, 0, "{}: {} undelivered pairs", router.name(), s.failures);
    StretchStats::from_samples(pairs.len(), s.stretches, s.hops_total, s.failures)
}

/// Like [`evaluate`], but tolerates undelivered pairs (they are counted
/// in `failures` and excluded from the stretch aggregates). Used by the
/// ablation experiments, where failure *is* the result being measured.
/// Traces must still be physically valid walks.
pub fn evaluate_lenient(
    g: &Graph,
    truth: &dyn GroundTruth,
    router: &dyn Router,
    pairs: &[(NodeId, NodeId)],
) -> StretchStats {
    let s = route_shard(g, truth, router, pairs, false);
    StretchStats::from_samples(pairs.len(), s.stretches, s.hops_total, s.failures)
}

/// [`evaluate`] with the pair list sharded across `threads` workers
/// (0 = available parallelism). Output is **bit-identical** to the
/// sequential path: shards are contiguous slices merged back in
/// workload order, and the aggregation tail is shared.
pub fn evaluate_parallel(
    g: &Graph,
    truth: &(dyn GroundTruth + Sync),
    router: &(dyn Router + Sync),
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchStats {
    let s = route_sharded(g, truth, router, pairs, true, threads);
    assert_eq!(s.failures, 0, "{}: {} undelivered pairs", router.name(), s.failures);
    StretchStats::from_samples(pairs.len(), s.stretches, s.hops_total, s.failures)
}

/// [`evaluate_lenient`] with the pair list sharded across `threads`
/// workers (0 = available parallelism); bit-identical to the
/// sequential lenient path.
pub fn evaluate_parallel_lenient(
    g: &Graph,
    truth: &(dyn GroundTruth + Sync),
    router: &(dyn Router + Sync),
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> StretchStats {
    let s = route_sharded(g, truth, router, pairs, false, threads);
    StretchStats::from_samples(pairs.len(), s.stretches, s.hops_total, s.failures)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-node storage accounting for a scheme instance.
#[derive(Clone, Debug)]
pub struct StorageAudit {
    /// Bits stored at each node.
    pub per_node_bits: Vec<u64>,
}

impl StorageAudit {
    /// Collect the audit from a router.
    pub fn collect(router: &dyn Router, n: usize) -> Self {
        StorageAudit {
            per_node_bits: (0..n as u32).map(|v| router.node_storage_bits(NodeId(v))).collect(),
        }
    }

    /// Worst node, in bits.
    pub fn max_bits(&self) -> u64 {
        self.per_node_bits.iter().copied().max().unwrap_or(0)
    }

    /// Average node, in bits.
    pub fn mean_bits(&self) -> f64 {
        if self.per_node_bits.is_empty() {
            return 0.0;
        }
        self.per_node_bits.iter().sum::<u64>() as f64 / self.per_node_bits.len() as f64
    }

    /// Sum over all nodes.
    pub fn total_bits(&self) -> u64 {
        self.per_node_bits.iter().sum()
    }
}

/// Deterministic pair workloads.
pub mod pairs {
    use graphkit::NodeId;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// All ordered pairs (s ≠ t). Quadratic — small graphs only.
    /// Empty for `n ≤ 1` (a 0- or 1-node graph has no ordered pairs).
    pub fn all(n: usize) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(n * n.saturating_sub(1));
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                if s != t {
                    out.push((NodeId(s), NodeId(t)));
                }
            }
        }
        out
    }

    /// `count` pairs sampled uniformly (s ≠ t), deterministic in `seed`.
    pub fn sample(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        assert!(n >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let s = rng.gen_range(0..n as u32);
                let mut t = rng.gen_range(0..n as u32 - 1);
                if t >= s {
                    t += 1;
                }
                (NodeId(s), NodeId(t))
            })
            .collect()
    }

    /// `sources × per_source` pairs: `sources` distinct source nodes,
    /// each paired with `per_source` sampled targets (s ≠ t),
    /// deterministic in `seed`. Grouping by source is the workload
    /// shape for on-demand ground truth — `sources` Dijkstra runs
    /// cover the whole pair set, instead of one per pair.
    pub fn sample_grouped(
        n: usize,
        sources: usize,
        per_source: usize,
        seed: u64,
    ) -> Vec<(NodeId, NodeId)> {
        assert!(n >= 2);
        let sources = sources.min(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Distinct sources by rejection over a seen-set (sources ≤ n).
        let mut seen = vec![false; n];
        let mut srcs: Vec<u32> = Vec::with_capacity(sources);
        while srcs.len() < sources {
            let s = rng.gen_range(0..n as u32);
            if !seen[s as usize] {
                seen[s as usize] = true;
                srcs.push(s);
            }
        }
        let mut out = Vec::with_capacity(sources * per_source);
        for s in srcs {
            for _ in 0..per_source {
                let mut t = rng.gen_range(0..n as u32 - 1);
                if t >= s {
                    t += 1;
                }
                out.push((NodeId(s), NodeId(t)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::dijkstra::dijkstra;
    use graphkit::gen::Family;
    use graphkit::graph_from_edges;
    use graphkit::metrics::apsp;

    /// Oracle router: follows true shortest paths (stretch exactly 1).
    struct Oracle<'a> {
        g: &'a Graph,
    }

    impl Router for Oracle<'_> {
        fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
            let sp = dijkstra(self.g, src);
            match sp.path_to(dst) {
                Some(path) => RouteTrace { path, cost: sp.d(dst), delivered: true },
                None => RouteTrace { path: vec![src], cost: 0, delivered: false },
            }
        }
        fn name(&self) -> &str {
            "oracle"
        }
        fn node_storage_bits(&self, _v: NodeId) -> u64 {
            64
        }
    }

    fn small() -> Graph {
        graph_from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 10)])
    }

    #[test]
    fn validate_accepts_real_walks() {
        let g = small();
        let t =
            RouteTrace { path: vec![NodeId(0), NodeId(1), NodeId(2)], cost: 5, delivered: true };
        assert!(validate_trace(&g, NodeId(0), NodeId(2), &t).is_ok());
    }

    #[test]
    fn validate_rejects_teleport() {
        let g = small();
        let t = RouteTrace { path: vec![NodeId(0), NodeId(2)], cost: 5, delivered: true };
        assert!(matches!(
            validate_trace(&g, NodeId(0), NodeId(2), &t),
            Err(TraceError::NotAnEdge { .. })
        ));
    }

    #[test]
    fn validate_rejects_cost_fraud() {
        let g = small();
        let t =
            RouteTrace { path: vec![NodeId(0), NodeId(1), NodeId(2)], cost: 4, delivered: true };
        assert!(matches!(
            validate_trace(&g, NodeId(0), NodeId(2), &t),
            Err(TraceError::CostMismatch { claimed: 4, actual: 5 })
        ));
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let g = small();
        let t = RouteTrace { path: vec![NodeId(1), NodeId(2)], cost: 3, delivered: true };
        assert!(matches!(
            validate_trace(&g, NodeId(0), NodeId(2), &t),
            Err(TraceError::WrongSource { .. })
        ));
        assert!(matches!(
            validate_trace(&g, NodeId(1), NodeId(3), &t),
            Err(TraceError::WrongDestination { .. })
        ));
        assert_eq!(
            validate_trace(
                &g,
                NodeId(0),
                NodeId(2),
                &RouteTrace { path: vec![], cost: 0, delivered: false }
            ),
            Err(TraceError::Empty)
        );
    }

    #[test]
    fn oracle_has_stretch_one() {
        let g = Family::Grid.generate(49, 80);
        let d = apsp(&g);
        let oracle = Oracle { g: &g };
        let stats = evaluate(&g, &d, &oracle, &pairs::all(g.n()));
        assert_eq!(stats.failures, 0);
        assert!((stats.max_stretch - 1.0).abs() < 1e-12);
        assert!((stats.mean_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_percentiles_ordered() {
        let g = Family::ErdosRenyi.generate(80, 81);
        let d = apsp(&g);
        let oracle = Oracle { g: &g };
        let stats = evaluate(&g, &d, &oracle, &pairs::sample(g.n(), 500, 7));
        assert!(stats.p50_stretch <= stats.p99_stretch);
        assert!(stats.p99_stretch <= stats.max_stretch + 1e-12);
        assert!(stats.mean_hops >= 1.0);
    }

    #[test]
    fn storage_audit_aggregates() {
        let g = small();
        let oracle = Oracle { g: &g };
        let audit = StorageAudit::collect(&oracle, g.n());
        assert_eq!(audit.max_bits(), 64);
        assert_eq!(audit.total_bits(), 4 * 64);
        assert!((audit.mean_bits() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn all_pairs_count() {
        let p = pairs::all(5);
        assert_eq!(p.len(), 20);
        assert!(p.iter().all(|&(s, t)| s != t));
    }

    #[test]
    fn all_pairs_degenerate_sizes() {
        // Regression: n = 0 used to underflow `n * (n - 1)` in the
        // capacity computation (debug-build panic).
        assert!(pairs::all(0).is_empty());
        assert!(pairs::all(1).is_empty());
        assert_eq!(pairs::all(2), vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
    }

    #[test]
    fn grouped_pairs_shape_and_determinism() {
        let a = pairs::sample_grouped(50, 8, 16, 9);
        assert_eq!(a.len(), 8 * 16);
        assert!(a.iter().all(|&(s, t)| s != t));
        let distinct: std::collections::HashSet<u32> = a.iter().map(|&(s, _)| s.0).collect();
        assert_eq!(distinct.len(), 8);
        assert_eq!(a, pairs::sample_grouped(50, 8, 16, 9));
        assert_ne!(a, pairs::sample_grouped(50, 8, 16, 10));
        // More sources than nodes: clamps to n.
        assert_eq!(pairs::sample_grouped(4, 100, 2, 1).len(), 4 * 2);
    }

    #[test]
    fn empty_workload_and_single_node_graph() {
        // A 1-node graph has no pairs; every evaluator must return the
        // zeroed stats instead of panicking.
        let g = graph_from_edges(1, &[]);
        let d = apsp(&g);
        let oracle = Oracle { g: &g };
        let workload = pairs::all(g.n());
        assert!(workload.is_empty());
        for stats in [
            evaluate(&g, &d, &oracle, &workload),
            evaluate_lenient(&g, &d, &oracle, &workload),
            evaluate_parallel(&g, &d, &oracle, &workload, 4),
            evaluate_parallel_lenient(&g, &d, &oracle, &workload, 4),
        ] {
            assert_eq!(stats.pairs, 0);
            assert_eq!(stats.failures, 0);
            assert_eq!(stats.max_stretch, 0.0);
            assert_eq!(stats.mean_stretch, 0.0);
        }
    }

    /// Bitwise equality over every field — the parallel engine's
    /// contract.
    fn assert_stats_identical(a: &StretchStats, b: &StretchStats) {
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.max_stretch.to_bits(), b.max_stretch.to_bits());
        assert_eq!(a.mean_stretch.to_bits(), b.mean_stretch.to_bits());
        assert_eq!(a.p50_stretch.to_bits(), b.p50_stretch.to_bits());
        assert_eq!(a.p99_stretch.to_bits(), b.p99_stretch.to_bits());
        assert_eq!(a.mean_hops.to_bits(), b.mean_hops.to_bits());
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let g = Family::Geometric.generate(80, 82);
        let d = apsp(&g);
        let oracle = Oracle { g: &g };
        let workload = pairs::sample(g.n(), 333, 8);
        let seq = evaluate(&g, &d, &oracle, &workload);
        for threads in [1, 2, 3, 7, 64] {
            let par = evaluate_parallel(&g, &d, &oracle, &workload, threads);
            assert_stats_identical(&seq, &par);
        }
    }

    #[test]
    fn on_demand_truth_matches_dense_evaluation() {
        let g = Family::PrefAttach.generate(120, 83);
        let d = apsp(&g);
        let oracle = Oracle { g: &g };
        let workload = pairs::sample_grouped(g.n(), 12, 20, 83);
        let dense = evaluate(&g, &d, &oracle, &workload);
        let mut truth = graphkit::OnDemandTruth::new(&g);
        truth.prefetch_pairs(&workload, 2);
        let lazy = evaluate_parallel(&g, &truth, &oracle, &workload, 3);
        assert_stats_identical(&dense, &lazy);
    }

    #[test]
    fn sampled_pairs_deterministic_and_distinct() {
        let a = pairs::sample(50, 100, 3);
        let b = pairs::sample(50, 100, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, t)| s != t));
        assert_ne!(a, pairs::sample(50, 100, 4));
    }

    #[test]
    fn trivial_trace() {
        let t = RouteTrace::trivial(NodeId(3));
        assert_eq!(t.hops(), 0);
        let g = small();
        assert!(validate_trace(&g, NodeId(3), NodeId(3), &t).is_ok());
    }

    #[test]
    fn replay_recosts_surviving_paths_at_current_weights() {
        // Same topology, one weight changed: the replayed path is the
        // old walk priced at the new weights.
        let g0 = small(); // 0-1:2, 1-2:3, 2-3:1, 0-3:10
        let g1 = graph_from_edges(4, &[(0, 1, 2), (1, 2, 7), (2, 3, 1), (0, 3, 10)]);
        let oracle = Oracle { g: &g0 };
        let replay = ReplayRouter::new(&oracle, &g1);
        let t = replay.route(NodeId(0), NodeId(2));
        assert!(t.delivered);
        assert_eq!(t.path, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(t.cost, 2 + 7);
        assert!(validate_trace(&g1, NodeId(0), NodeId(2), &t).is_ok());
        assert_eq!(replay.name(), "oracle+replay");
        assert_eq!(replay.node_storage_bits(NodeId(0)), 64);
    }

    #[test]
    fn replay_truncates_at_failed_edges() {
        // Edge 1-2 failed: old paths through it keep only the prefix.
        let g0 = small();
        let g1 = graph_from_edges(4, &[(0, 1, 2), (2, 3, 1), (0, 3, 10)]);
        let oracle = Oracle { g: &g0 };
        let replay = ReplayRouter::new(&oracle, &g1);
        let t = replay.route(NodeId(0), NodeId(2));
        assert!(!t.delivered);
        assert_eq!(t.path, vec![NodeId(0), NodeId(1)]);
        assert_eq!(t.cost, 2);
        assert!(validate_trace(&g1, NodeId(0), NodeId(2), &t).is_ok());
    }

    #[test]
    fn lenient_evaluators_count_disconnected_pairs_as_failures() {
        // Mid-epoch partition: node 3 is cut off. The lenient
        // evaluators must count every affected pair as a failure — no
        // panic, no infinite stretch — and keep finite aggregates for
        // the surviving pairs.
        let g0 = small();
        let g1 = graph_from_edges(4, &[(0, 1, 2), (1, 2, 3)]); // node 3 isolated
        let oracle = Oracle { g: &g0 };
        let replay = ReplayRouter::new(&oracle, &g1);
        let workload: Vec<(NodeId, NodeId)> =
            vec![(NodeId(0), NodeId(2)), (NodeId(0), NodeId(3)), (NodeId(3), NodeId(1))];
        let mut truth = graphkit::OnDemandTruth::new(&g1);
        truth.prefetch_pairs(&workload, 0);
        for stats in [
            evaluate_lenient(&g1, &truth, &replay, &workload),
            evaluate_parallel_lenient(&g1, &truth, &replay, &workload, 2),
        ] {
            assert_eq!(stats.pairs, 3);
            assert_eq!(stats.failures, 2);
            assert!(stats.max_stretch.is_finite());
            assert!(stats.max_stretch >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn disconnected_truth_never_yields_infinite_stretch() {
        // The guard is defensive: when the ground truth disagrees with
        // the routed graph (a churn driver could evaluate against a
        // stale truth mid-swap), a delivered trace with no finite
        // baseline must become a counted failure rather than a 0/INF
        // stretch sample.
        let g_route = graph_from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1)]);
        let g_part = graph_from_edges(4, &[(0, 1, 2), (2, 3, 1)]); // 0-2 unreachable
        let d = apsp(&g_part);
        let oracle = Oracle { g: &g_route };
        let workload = [(NodeId(0), NodeId(2)), (NodeId(0), NodeId(1))];
        let stats = evaluate_lenient(&g_route, &d, &oracle, &workload);
        assert_eq!(stats.pairs, 2);
        assert_eq!(stats.failures, 1);
        assert!(stats.max_stretch.is_finite());
    }
}
