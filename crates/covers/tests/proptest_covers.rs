//! Property-based tests for sparse tree covers on random graphs and
//! radii: the four Lemma 6 invariants plus structural sanity of the
//! cluster trees themselves.

use covers::{build_cover, verify_cover};
use graphkit::gen::WeightDist;
use graphkit::metrics::apsp;
use graphkit::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = graphkit::Graph> {
    (5usize..50, any::<u64>(), 0.0f64..0.25, 1u64..64).prop_map(|(n, seed, p, hi)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        graphkit::gen::erdos_renyi(n, p, WeightDist::UniformInt { lo: 1, hi }, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All four Lemma 6 properties on arbitrary (graph, k, ρ).
    #[test]
    fn lemma6_invariants(g in arb_graph(), k in 1usize..5, rho in 1u64..100) {
        let cover = build_cover(&g, k, rho);
        let rep = verify_cover(&g, &cover);
        prop_assert!(rep.ok(), "violated: {:?} (k={}, rho={})", rep, k, rho);
    }

    /// Every node has a home tree, and the home tree contains the node
    /// itself at depth ≤ (2k−1)ρ.
    #[test]
    fn home_trees_contain_owner(g in arb_graph(), k in 1usize..4, rho in 1u64..50) {
        let cover = build_cover(&g, k, rho);
        for v in 0..g.n() as u32 {
            let home = cover.home_tree(NodeId(v));
            let ix = home.find(NodeId(v)).expect("home tree must contain its owner");
            prop_assert!(home.depth(ix) <= (2 * k as u64 - 1) * rho);
        }
    }

    /// Cluster-tree depths are realizable graph distances: depth(x) ≥
    /// d_G(root, x) (tree paths are walks in G).
    #[test]
    fn tree_depths_dominate_graph_distance(g in arb_graph(), rho in 1u64..40) {
        let d = apsp(&g);
        let cover = build_cover(&g, 2, rho);
        for t in &cover.trees {
            let root = t.graph_id(t.root());
            for ix in 0..t.size() as u32 {
                prop_assert!(t.depth(ix) >= d.d(root, t.graph_id(ix)));
            }
        }
    }

    /// Tree membership accounting matches overlap counting.
    #[test]
    fn overlap_consistency(g in arb_graph(), rho in 1u64..40) {
        let cover = build_cover(&g, 2, rho);
        let mut counts = vec![0usize; g.n()];
        for t in &cover.trees {
            for &gid in t.graph_ids() {
                counts[gid as usize] += 1;
            }
        }
        for v in 0..g.n() as u32 {
            prop_assert_eq!(cover.overlap(NodeId(v)), counts[v as usize]);
            prop_assert!(counts[v as usize] >= 1, "node {} in no tree", v);
        }
    }
}
