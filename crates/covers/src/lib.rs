#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # covers — sparse tree covers `TC_{k,ρ}(G)` (Lemma 6)
//!
//! The Awerbuch–Peleg sparse-partition construction (\[9\]) with the
//! cover-tree packaging of \[3\], used by the dense-level routing
//! strategy. For every weighted graph `G` and integers `k, ρ ≥ 1` it
//! produces a collection of rooted trees such that:
//!
//! 1. **Cover** — for every `v`, some tree fully contains `B(v, ρ)`
//!    (that tree is `v`'s *home tree*);
//! 2. **Sparse** — no node appears in more than `2k·n^{1/k}` trees;
//! 3. **Small radius** — every tree has `rad(T) ≤ (2k−1)·ρ`;
//! 4. **Small edges** — every tree edge has weight `≤ 2ρ`.
//!
//! The construction repeatedly grabs an unserved ball and inflates it
//! by merging the balls of unserved centers it contains, until the
//! node count stops growing by the factor `n^{1/k}`; the inflation can
//! repeat at most `k` times, which caps the radius. All four
//! properties are *verified* per instance ([`verify_cover`], test
//! suite, experiment L6).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphkit::ids::nth_root_ceil;
use graphkit::{Cost, Graph, NodeId, Tree, Weight, INFINITY};

/// A sparse tree cover of one graph.
#[derive(Clone, Debug)]
pub struct TreeCover {
    /// The cover radius parameter ρ.
    pub rho: u64,
    /// The trade-off parameter k.
    pub k: usize,
    /// The cover trees; `graph_id`s refer to the host graph.
    pub trees: Vec<Tree>,
    /// `home[v]` = index into `trees` of the tree containing `B(v, ρ)`.
    pub home: Vec<u32>,
}

impl TreeCover {
    /// Number of trees containing node `v`.
    pub fn overlap(&self, v: NodeId) -> usize {
        self.trees.iter().filter(|t| t.find(v).is_some()).count()
    }

    /// The home tree of `v` (the tree covering `B(v, ρ)`).
    pub fn home_tree(&self, v: NodeId) -> &Tree {
        &self.trees[self.home[v.idx()] as usize]
    }

    /// Largest tree radius in the cover.
    pub fn max_radius(&self) -> Cost {
        self.trees.iter().map(Tree::radius).max().unwrap_or(0)
    }

    /// Heaviest tree edge in the cover.
    pub fn max_edge(&self) -> Weight {
        self.trees.iter().map(Tree::max_edge).max().unwrap_or(0)
    }
}

/// Build `TC_{k,ρ}(G)`. The graph may be disconnected; each component
/// is covered independently (as the paper prescribes for the `G_i`).
pub fn build_cover(g: &Graph, k: usize, rho: u64) -> TreeCover {
    assert!(k >= 1 && rho >= 1);
    let n = g.n();
    if k == 1 {
        // Radius bound (2k−1)ρ = ρ forbids any inflation: the cover is
        // one tree per ball (overlap ≤ n = 2k·n^{1/k}/2 is within spec).
        let mut scratch = BallScratch::new(n);
        let mut trees = Vec::with_capacity(n);
        let mut home = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let members = scratch.ball(g, NodeId(v), rho);
            home.push(v);
            trees.push(cluster_tree(g, NodeId(v), &members, rho));
        }
        return TreeCover { rho, k, trees, home };
    }
    let mut served = vec![false; n];
    let mut home = vec![u32::MAX; n];
    let mut trees: Vec<Tree> = Vec::new();
    // Scratch buffers reused across clusters.
    let mut ball_scratch = BallScratch::new(n);
    // Process unserved centers in id order for determinism.
    for v in 0..n as u32 {
        if served[v as usize] {
            continue;
        }
        let (members, merged_centers) =
            grow_cluster(g, NodeId(v), rho, k, &served, &mut ball_scratch);
        let tree_ix = trees.len() as u32;
        trees.push(cluster_tree(g, NodeId(v), &members, rho));
        for w in merged_centers {
            debug_assert!(!served[w as usize]);
            served[w as usize] = true;
            home[w as usize] = tree_ix;
        }
    }
    debug_assert!(home.iter().all(|&h| h != u32::MAX));
    TreeCover { rho, k, trees, home }
}

/// One Awerbuch–Peleg cluster: start from `B(v,ρ)`, repeatedly merge
/// the balls of *unserved* centers inside the current kernel `Y`, stop
/// when `|Z| ≤ n^{1/k}·|Y|`. Returns the final member set `Z` and the
/// centers whose balls were merged (they become served).
fn grow_cluster(
    g: &Graph,
    v: NodeId,
    rho: u64,
    k: usize,
    served: &[bool],
    scratch: &mut BallScratch,
) -> (Vec<u32>, Vec<u32>) {
    let n = g.n() as u64;
    let sigma = nth_root_ceil(n, k as u32); // ⌈n^{1/k}⌉
    let mut z: Vec<u32> = scratch.ball(g, v, rho);
    let mut merged: Vec<u32> = Vec::new();
    loop {
        let y = z.clone();
        // Centers to merge: unserved nodes inside Y not yet merged.
        let mut new_centers: Vec<u32> =
            y.iter().copied().filter(|&w| !served[w as usize] && !merged.contains(&w)).collect();
        new_centers.sort_unstable();
        if new_centers.is_empty() && !merged.is_empty() {
            // Nothing new to absorb: Z is stable.
            return (z, merged);
        }
        for &w in &new_centers {
            let b = scratch.ball(g, NodeId(w), rho);
            z.extend(b);
        }
        z.sort_unstable();
        z.dedup();
        merged.extend(new_centers);
        // Stop when the n^{1/k} growth failed: |Z| ≤ σ·|Y|.
        if z.len() as u64 <= sigma.saturating_mul(y.len() as u64) {
            return (z, merged);
        }
    }
}

/// Shortest-path tree spanning a cluster, rooted at its seed, built in
/// the subgraph induced by the members *with edges ≤ 2ρ* (which is what
/// bounds `maxE(T)`). Falls back to unfiltered induced edges for any
/// member unreachable through light edges (never observed on the
/// workloads; the verifier would flag the resulting heavy edge).
fn cluster_tree(g: &Graph, root: NodeId, members: &[u32], rho: u64) -> Tree {
    let tree = restricted_sssp_tree(g, root, members, Some(2 * rho));
    if tree.size() == members.len() {
        return tree;
    }
    restricted_sssp_tree(g, root, members, None)
}

/// Dijkstra restricted to `members` (sorted host ids) and to edges of
/// weight ≤ `max_edge`; returns the SPT of the reached members.
fn restricted_sssp_tree(g: &Graph, root: NodeId, members: &[u32], max_edge: Option<u64>) -> Tree {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let in_set = {
        let mut v = vec![false; n];
        for &m in members {
            v[m as usize] = true;
        }
        v
    };
    debug_assert!(in_set[root.idx()]);
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[root.idx()] = 0;
    heap.push(Reverse((0, root.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (w, wt) in g.edges_of(NodeId(u)) {
            if !in_set[w.idx()] {
                continue;
            }
            if let Some(me) = max_edge {
                if wt > me {
                    continue;
                }
            }
            let nd = d + wt;
            let dw = &mut dist[w.idx()];
            if nd < *dw || (nd == *dw && u < parent[w.idx()]) {
                let improved = nd < *dw;
                *dw = nd;
                parent[w.idx()] = u;
                if improved {
                    heap.push(Reverse((nd, w.0)));
                }
            }
        }
    }
    // Assemble the tree over reached members, ordered by (dist, id).
    let mut reached: Vec<u32> =
        members.iter().copied().filter(|&m| dist[m as usize] != INFINITY).collect();
    reached.sort_unstable_by_key(|&m| (dist[m as usize], m));
    debug_assert_eq!(reached[0], root.0);
    let mut local = vec![u32::MAX; n];
    for (i, &m) in reached.iter().enumerate() {
        local[m as usize] = i as u32;
    }
    let mut parents = Vec::with_capacity(reached.len());
    let mut weights = Vec::with_capacity(reached.len());
    for &m in &reached {
        if m == root.0 {
            parents.push(u32::MAX);
            weights.push(0);
        } else {
            let p = parent[m as usize];
            debug_assert_ne!(p, u32::MAX);
            parents.push(local[p as usize]);
            weights.push(g.edge_weight(NodeId(p), NodeId(m)).expect("SPT edge"));
        }
    }
    Tree::from_parents(reached, parents, weights)
}

/// Reusable bounded-Dijkstra scratch to avoid O(n) allocs per ball.
struct BallScratch {
    dist: Vec<Cost>,
    touched: Vec<u32>,
}

impl BallScratch {
    fn new(n: usize) -> Self {
        BallScratch { dist: vec![INFINITY; n], touched: Vec::new() }
    }

    /// Members of `B(u, r)`, sorted by id.
    fn ball(&mut self, g: &Graph, u: NodeId, r: u64) -> Vec<u32> {
        for &t in &self.touched {
            self.dist[t as usize] = INFINITY;
        }
        self.touched.clear();
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        self.dist[u.idx()] = 0;
        self.touched.push(u.0);
        heap.push(Reverse((0, u.0)));
        let mut out = Vec::new();
        while let Some(Reverse((d, x))) = heap.pop() {
            if d > self.dist[x as usize] {
                continue;
            }
            out.push(x);
            for (w, wt) in g.edges_of(NodeId(x)) {
                let nd = d + wt;
                if nd <= r && nd < self.dist[w.idx()] {
                    if self.dist[w.idx()] == INFINITY {
                        self.touched.push(w.0);
                    }
                    self.dist[w.idx()] = nd;
                    heap.push(Reverse((nd, w.0)));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Result of checking Lemma 6's four properties.
#[derive(Clone, Debug, Default)]
pub struct CoverReport {
    /// Nodes whose ball `B(v,ρ)` is *not* inside their home tree.
    pub cover_violations: usize,
    /// Largest number of trees any node belongs to.
    pub max_overlap: usize,
    /// The sparsity bound `2k·n^{1/k}`.
    pub overlap_bound: u64,
    /// Largest tree radius.
    pub max_radius: Cost,
    /// The radius bound `(2k−1)·ρ`.
    pub radius_bound: Cost,
    /// Heaviest tree edge.
    pub max_edge: Weight,
    /// The edge bound `2ρ`.
    pub edge_bound: Weight,
}

impl CoverReport {
    /// All four properties hold?
    pub fn ok(&self) -> bool {
        self.cover_violations == 0
            && (self.max_overlap as u64) <= self.overlap_bound
            && self.max_radius <= self.radius_bound
            && self.max_edge <= self.edge_bound
    }
}

/// Check all four Lemma 6 properties of a cover.
pub fn verify_cover(g: &Graph, cover: &TreeCover) -> CoverReport {
    let n = g.n();
    let k = cover.k;
    let mut report = CoverReport {
        overlap_bound: 2 * k as u64 * nth_root_ceil(n as u64, k as u32),
        radius_bound: (2 * k as u64 - 1) * cover.rho,
        edge_bound: 2 * cover.rho,
        max_radius: cover.max_radius(),
        max_edge: cover.max_edge(),
        ..Default::default()
    };
    // Cover: B(v,ρ) ⊆ home tree.
    let mut scratch = BallScratch::new(n);
    for v in 0..n as u32 {
        let ball = scratch.ball(g, NodeId(v), cover.rho);
        let map = cover.home_tree(NodeId(v)).index_map(n);
        if ball.iter().any(|&m| map[m as usize] == u32::MAX) {
            report.cover_violations += 1;
        }
    }
    // Sparsity.
    let mut count = vec![0usize; n];
    for t in &cover.trees {
        for &gid in t.graph_ids() {
            count[gid as usize] += 1;
        }
    }
    report.max_overlap = count.into_iter().max().unwrap_or(0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    fn check(fam: Family, n: usize, k: usize, rho: u64, seed: u64) -> CoverReport {
        let g = fam.generate(n, seed);
        let cover = build_cover(&g, k, rho);
        let rep = verify_cover(&g, &cover);
        assert_eq!(rep.cover_violations, 0, "{}: cover violated", fam.label());
        assert!(
            rep.max_radius <= rep.radius_bound,
            "{}: rad {} > {}",
            fam.label(),
            rep.max_radius,
            rep.radius_bound
        );
        assert!(
            rep.max_edge <= rep.edge_bound,
            "{}: edge {} > {}",
            fam.label(),
            rep.max_edge,
            rep.edge_bound
        );
        assert!(
            rep.max_overlap as u64 <= rep.overlap_bound,
            "{}: overlap {} > {}",
            fam.label(),
            rep.max_overlap,
            rep.overlap_bound
        );
        rep
    }

    #[test]
    fn lemma6_on_rings() {
        for rho in [1u64, 2, 8] {
            check(Family::Ring, 80, 2, rho, 61);
            check(Family::Ring, 80, 3, rho, 61);
        }
    }

    #[test]
    fn lemma6_on_grids() {
        for k in [1usize, 2, 3] {
            check(Family::Grid, 100, k, 3, 62);
        }
    }

    #[test]
    fn lemma6_on_er_and_geometric() {
        check(Family::ErdosRenyi, 150, 2, 4, 63);
        check(Family::Geometric, 150, 3, 50, 64);
    }

    #[test]
    fn lemma6_on_pref_attach() {
        check(Family::PrefAttach, 120, 2, 3, 65);
    }

    #[test]
    fn lemma6_with_huge_rho_single_tree() {
        // ρ ≥ diameter: the first cluster swallows everything.
        let g = Family::Grid.generate(64, 66);
        let d = apsp(&g);
        let cover = build_cover(&g, 2, d.diameter());
        assert_eq!(cover.trees.len(), 1);
        assert_eq!(cover.trees[0].size(), 64);
        assert!(verify_cover(&g, &cover).ok());
    }

    #[test]
    fn lemma6_rho_one_on_unit_ring() {
        // ρ = 1 on a unit ring: balls are 3 nodes; check everything.
        let rep = check(Family::Ring, 30, 2, 1, 67);
        assert!(rep.max_radius <= 3);
    }

    #[test]
    fn k1_cover_is_fine_too() {
        // k = 1: σ = n, so the very first size test passes and clusters
        // stay one inflation round; radius ≤ (2·1−1)ρ means plain balls.
        check(Family::Ring, 40, 1, 4, 68);
    }

    #[test]
    fn disconnected_graph_covered_per_component() {
        use graphkit::graph_from_edges;
        let g = graph_from_edges(6, &[(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)]);
        let cover = build_cover(&g, 2, 2);
        let rep = verify_cover(&g, &cover);
        assert_eq!(rep.cover_violations, 0);
        // No tree mixes the two components.
        for t in &cover.trees {
            let has_low = t.graph_ids().iter().any(|&v| v <= 2);
            let has_high = t.graph_ids().iter().any(|&v| v >= 3);
            assert!(!(has_low && has_high));
        }
    }

    #[test]
    fn home_tree_contains_ball() {
        let g = Family::Geometric.generate(100, 69);
        let cover = build_cover(&g, 3, 40);
        let mut scratch = BallScratch::new(g.n());
        for v in 0..g.n() as u32 {
            let home = cover.home_tree(NodeId(v));
            for m in scratch.ball(&g, NodeId(v), cover.rho) {
                assert!(home.find(NodeId(m)).is_some());
            }
        }
    }

    #[test]
    fn every_tree_is_rooted_spanning_its_members() {
        let g = Family::ErdosRenyi.generate(90, 70);
        let cover = build_cover(&g, 2, 3);
        for t in &cover.trees {
            // Tree depths respect edge weights (consistency checked by
            // Tree::from_parents), and radius is finite.
            assert!(t.radius() < INFINITY);
            assert!(t.size() >= 1);
        }
    }

    #[test]
    fn deterministic_construction() {
        let g = Family::Geometric.generate(80, 71);
        let a = build_cover(&g, 2, 25);
        let b = build_cover(&g, 2, 25);
        assert_eq!(a.trees.len(), b.trees.len());
        assert_eq!(a.home, b.home);
    }
}
