//! Landmark-distance columns: the matrix-free substitute for the
//! dense rows the hierarchy queries (`S(u,i)`, `m(u,r)`, `c(u,r)`,
//! rank positions) read in `build_with_matrix`.
//!
//! One full Dijkstra per landmark of rank ≥ 1 (there are
//! `Õ(n^{(k−1)/k})` of them) yields, for every node `u` and level
//! `l ≥ 1`, the complete `(d(u,c), c)`-sorted list of `C_l` members —
//! the exact structure the scheme's instance-tuned S-budget and
//! S-membership loops need, in `O(n · |C_1|)` memory instead of n².
//! Level 0 (`C_0 = V`) intentionally has no column here: its queries
//! are served by size-capped Dijkstras around each node (see the
//! scheme's construction notes in DESIGN.md).

use std::collections::HashMap;

use graphkit::{dijkstra, Cost, Graph, NodeId, INFINITY};

use crate::LandmarkHierarchy;

/// Distances from every rank-≥1 landmark to every node, organized as
/// per-node per-level sorted lists plus raw per-landmark rows.
pub struct LandmarkDistances {
    k: usize,
    n: usize,
    /// Landmark id → index into `rows`.
    row_of: HashMap<u32, u32>,
    /// Full distance row of each landmark (`rows[row_of[c]][v] = d(c, v)`).
    rows: Vec<Vec<Cost>>,
    /// Per level `l ∈ 1..k`: `n` consecutive chunks of `|C_l|`
    /// entries, chunk `u` holding `C_l` as `(d(u,c), c)` sorted
    /// ascending (unreachable members at the tail with `INFINITY`).
    lists: Vec<Vec<(Cost, u32)>>,
    /// `|C_l|` per level (index `l − 1`).
    strides: Vec<usize>,
}

impl LandmarkDistances {
    /// Run one Dijkstra per rank-≥1 landmark (fanned across threads)
    /// and assemble the per-node sorted level lists.
    pub fn build(g: &Graph, h: &LandmarkHierarchy) -> Self {
        let n = g.n();
        let k = h.k();
        let landmarks: Vec<u32> = h.level(1).to_vec(); // C_1 ⊇ C_2 ⊇ …
        let row_of: HashMap<u32, u32> =
            landmarks.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
        // merge: distance rows, flattened in chunk (= landmark) order.
        let rows: Vec<Vec<Cost>> = graphkit::metrics::par_chunks(landmarks.len(), |range| {
            landmarks[range].iter().map(|&c| dijkstra(g, NodeId(c)).dist).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Per-node sorted lists per level, parallel over node chunks.
        let strides: Vec<usize> = (1..k).map(|l| h.level(l).len()).collect();
        let lists: Vec<Vec<(Cost, u32)>> = strides
            .iter()
            .enumerate()
            .map(|(l, &stride)| {
                let members = h.level(l + 1);
                if stride == 0 {
                    return Vec::new();
                }
                // merge: fixed-stride per-node segments, concatenated
                // in chunk (= node id) order.
                graphkit::metrics::par_chunks(n, |nodes| {
                    let mut chunk = Vec::with_capacity(nodes.len() * stride);
                    for u in nodes {
                        let start = chunk.len();
                        chunk.extend(members.iter().map(|&m| (rows[row_of[&m] as usize][u], m)));
                        chunk[start..].sort_unstable();
                    }
                    chunk
                })
                .into_iter()
                .flatten()
                .collect()
            })
            .collect();
        LandmarkDistances { k, n, row_of, rows, lists, strides }
    }

    /// The trade-off parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of landmark Dijkstra rows held.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// `d(c, v)` for a rank-≥1 landmark `c` (graphs are undirected, so
    /// this is also `d(v, c)`). Panics if `c` is not a landmark.
    #[inline]
    pub fn d(&self, c: u32, v: NodeId) -> Cost {
        self.rows[self.row_of[&c] as usize][v.idx()]
    }

    /// The `(d(u,c), c)`-sorted members of `C_l` as seen from `u`
    /// (`l ∈ 1..k`; unreachable members trail with `INFINITY`).
    #[inline]
    pub fn list(&self, u: NodeId, l: usize) -> &[(Cost, u32)] {
        debug_assert!(l >= 1 && l < self.k);
        let stride = self.strides[l - 1];
        &self.lists[l - 1][u.idx() * stride..(u.idx() + 1) * stride]
    }

    /// Position of landmark `c` (rank ≥ `l ≥ 1`) in `u`'s
    /// `(distance, id)`-ordered `C_l` list — the quantity the
    /// instance-tuned S budgets maximize.
    pub fn position(&self, u: NodeId, l: usize, c: u32) -> usize {
        let key = (self.d(c, u), c);
        self.list(u, l).partition_point(|&e| e < key)
    }

    /// `m(u, r)` — the highest rank present in `B(u, r)`: the largest
    /// `l` whose closest reachable `C_l` member sits within `r` (rank
    /// 0 is always present through `u` itself).
    pub fn max_rank_in_ball(&self, u: NodeId, r: Cost) -> usize {
        (1..self.k)
            .rev()
            .find(|&l| self.list(u, l).first().is_some_and(|&(d, _)| d != INFINITY && d <= r))
            .unwrap_or(0)
    }

    /// `c(u, r)` — the center: closest `C_{m(u,r)}` member by
    /// `(distance, id)`; `u` itself when `m = 0` (with strictly
    /// positive edge weights, `u` is the unique distance-0 member of
    /// `C_0 = V`). Identical to [`LandmarkHierarchy::center`] on
    /// connected graphs.
    pub fn center(&self, u: NodeId, r: Cost) -> NodeId {
        let m = self.max_rank_in_ball(u, r);
        if m == 0 {
            u
        } else {
            NodeId(self.list(u, m)[0].1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    #[test]
    fn columns_match_dense_rows() {
        let g = Family::Geometric.generate(120, 0xB1);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 3, 0xB1);
        let ld = LandmarkDistances::build(&g, &h);
        for u in g.nodes() {
            for l in 1..3 {
                let list = ld.list(u, l);
                assert_eq!(list.len(), h.level(l).len());
                let mut want: Vec<(u64, u32)> =
                    h.level(l).iter().map(|&c| (d.d(u, NodeId(c)), c)).collect();
                want.sort_unstable();
                assert_eq!(list, &want[..], "u={u} l={l}");
                for &c in h.level(l) {
                    assert_eq!(ld.d(c, u), d.d(u, NodeId(c)));
                }
            }
        }
    }

    #[test]
    fn center_and_rank_match_dense() {
        let g = Family::PrefAttach.generate(150, 0xB2);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 3, 0xB2);
        let ld = LandmarkDistances::build(&g, &h);
        let radii = [0u64, 1, d.diameter() / 8, d.diameter() / 2, d.diameter() * 2];
        for u in g.nodes() {
            for &r in &radii {
                assert_eq!(
                    ld.max_rank_in_ball(u, r),
                    h.max_rank_in_ball(&d, u, r),
                    "m mismatch u={u} r={r}"
                );
                assert_eq!(ld.center(u, r), h.center(&d, u, r), "center mismatch u={u} r={r}");
            }
        }
    }

    #[test]
    fn positions_match_dense_sorted_levels() {
        let g = Family::ErdosRenyi.generate(90, 0xB3);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 2, 0xB3);
        let ld = LandmarkDistances::build(&g, &h);
        for u in g.nodes() {
            let mut sorted: Vec<(u64, u32)> =
                h.level(1).iter().map(|&c| (d.d(u, NodeId(c)), c)).collect();
            sorted.sort_unstable();
            for &c in h.level(1) {
                let key = (d.d(u, NodeId(c)), c);
                let want = sorted.partition_point(|&e| e < key);
                assert_eq!(ld.position(u, 1, c), want);
            }
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two components: landmarks of the other side must neither
        // join balls nor become centers.
        let g = graphkit::graph_from_edges(
            10,
            &[
                (0, 1, 2),
                (1, 2, 2),
                (2, 3, 2),
                (3, 4, 2),
                (5, 6, 3),
                (6, 7, 3),
                (7, 8, 3),
                (8, 9, 3),
            ],
        );
        let d = apsp(&g);
        let h = LandmarkHierarchy::from_levels(10, 2, vec![(0..10).collect(), vec![2, 7]]);
        let ld = LandmarkDistances::build(&g, &h);
        for u in g.nodes() {
            for &r in &[0u64, 4, 100, u64::MAX - 1] {
                assert_eq!(ld.max_rank_in_ball(u, r), h.max_rank_in_ball(&d, u, r));
                assert_eq!(ld.center(u, r), h.center(&d, u, r));
            }
        }
        // The far landmark trails with INFINITY and is never ranked.
        let list = ld.list(NodeId(0), 1);
        assert_eq!(list.last().unwrap().0, INFINITY);
        assert_eq!(ld.max_rank_in_ball(NodeId(0), u64::MAX - 1), 1);
        assert_eq!(ld.center(NodeId(0), u64::MAX - 1), NodeId(2));
    }
}
