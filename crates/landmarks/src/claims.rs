//! Per-instance verification of Claims 1 and 2 (§2.3).
//!
//! The paper proves both claims hold w.h.p. over the random hierarchy
//! and notes they can be derandomized. We make the guarantee effective
//! by *checking* them on the actual ball family
//! `B = { B(u, 2^i) : u ∈ V, i ∈ I }` and re-seeding on failure
//! ([`crate::LandmarkHierarchy::sample_verified`]). Experiments C1/C2
//! print the margins these checks observe.

use graphkit::ids::{ceil_log2, floor_log2, octave_radius};
use graphkit::{DijkstraScratch, DistMatrix, Graph, NodeId, INFINITY};

use crate::distances::LandmarkDistances;
use crate::LandmarkHierarchy;

/// Result of checking Claims 1–2 over the whole ball family.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClaimReport {
    /// Balls (u, i, j) where Claim 1's hitting guarantee failed.
    pub claim1_violations: usize,
    /// Balls (u, i, j) where Claim 2's sparsity guarantee failed.
    pub claim2_violations: usize,
    /// Number of (ball, level) pairs checked for Claim 1.
    pub claim1_checked: usize,
    /// Number of (ball, level) pairs checked for Claim 2.
    pub claim2_checked: usize,
    /// Largest `|B ∩ C_j|` observed among balls subject to Claim 2.
    pub max_c2_load: usize,
    /// The Claim 2 bound `16 n^{2/k} ln n`.
    pub c2_bound: f64,
}

impl ClaimReport {
    /// Did both claims hold everywhere?
    pub fn ok(&self) -> bool {
        self.claim1_violations == 0 && self.claim2_violations == 0
    }
}

/// Claim 1 threshold: balls at least this large must intersect `C_j`.
pub fn claim1_threshold(n: usize, k: usize, j: usize) -> f64 {
    let n = n as f64;
    let k = k as f64;
    let j = j as f64;
    4.0 * n.ln().powf((k - j) / k) * n.powf(j / k)
}

/// Claim 2 threshold: balls strictly smaller than this must contain at
/// most [`claim2_bound`] members of `C_j`.
pub fn claim2_threshold(n: usize, k: usize, j: usize) -> f64 {
    let n = n as f64;
    let k = k as f64;
    let j = j as f64;
    4.0 * n.ln().powf((k - j - 1.0) / k) * n.powf((j + 2.0) / k)
}

/// Claim 2 load bound `16 n^{2/k} ln n`.
pub fn claim2_bound(n: usize, k: usize) -> f64 {
    let n = n as f64;
    16.0 * n.powf(2.0 / k as f64) * n.ln()
}

/// Check Claims 1 and 2 for every ball `B(u, 2^i)` and level `j ≥ 1`.
/// (For `j = 0`, `C_0 = V` makes both claims trivial.)
pub fn verify_claims(d: &DistMatrix, h: &LandmarkHierarchy) -> ClaimReport {
    let n = d.n();
    let k = h.k();
    let mut report = ClaimReport { c2_bound: claim2_bound(n, k), ..Default::default() };
    let max_i = ceil_log2(d.diameter().max(1)) + 1;
    // Precompute thresholds per level.
    let t1: Vec<f64> = (0..k).map(|j| claim1_threshold(n, k, j)).collect();
    let t2: Vec<f64> = (0..k).map(|j| claim2_threshold(n, k, j)).collect();
    for u in 0..n as u32 {
        let row = d.row(NodeId(u));
        // Sorted distances for |B| counting.
        let mut sorted: Vec<u64> = row.to_vec();
        sorted.sort_unstable();
        // Sorted member distances per level for |B ∩ C_j| counting.
        let member_d: Vec<Vec<u64>> = (1..k)
            .map(|j| {
                let mut v: Vec<u64> = h.level(j).iter().map(|&m| row[m as usize]).collect();
                v.sort_unstable();
                v
            })
            .collect();
        for i in 0..=max_i {
            let r = octave_radius(i);
            let ball = sorted.partition_point(|&x| x <= r);
            for j in 1..k {
                let inter = member_d[j - 1].partition_point(|&x| x <= r);
                if ball as f64 >= t1[j] {
                    report.claim1_checked += 1;
                    if inter == 0 {
                        report.claim1_violations += 1;
                    }
                }
                if (ball as f64) < t2[j] {
                    report.claim2_checked += 1;
                    report.max_c2_load = report.max_c2_load.max(inter);
                    if inter as f64 > report.c2_bound {
                        report.claim2_violations += 1;
                    }
                }
            }
        }
    }
    report
}

/// Matrix-free [`verify_claims`]: identical [`ClaimReport`] without a
/// dense matrix.
///
/// Per node, one size-capped Dijkstra pins the octave at which the
/// ball crosses each claim threshold (the `⌈t⌉`-th settled node's
/// distance), and the [`LandmarkDistances`] columns give
/// `|B(u,2^i) ∩ C_j|` at every octave; every per-octave check then
/// collapses to octave-interval arithmetic. The settle cap is the
/// largest sub-`n` threshold — `Õ(n^{(k−1)/k})` nodes per source —
/// which is what makes per-instance verification affordable at 10⁵+
/// nodes. `diameter` must be the exact value ([`verify_claims`]
/// derives the octave range from it).
pub fn verify_claims_on_demand(
    g: &Graph,
    h: &LandmarkHierarchy,
    ld: &LandmarkDistances,
    diameter: u64,
) -> ClaimReport {
    let n = g.n();
    let k = h.k();
    let max_i = ceil_log2(diameter.max(1)) + 1;
    let t1: Vec<f64> = (0..k).map(|j| claim1_threshold(n, k, j)).collect();
    let t2: Vec<f64> = (0..k).map(|j| claim2_threshold(n, k, j)).collect();
    let c2_bound = claim2_bound(n, k);
    // Integer crossing sizes: `ball ≥ t ⟺ ball ≥ ⌈t⌉` and
    // `ball < t ⟺ ball < ⌈t⌉` for integer ball counts.
    let s1: Vec<u64> = t1.iter().map(|t| t.ceil() as u64).collect();
    let s2: Vec<u64> = t2.iter().map(|t| t.ceil() as u64).collect();
    // `inter > c2_bound ⟺ inter ≥ b1`.
    let b1 = c2_bound.floor() as usize + 1;
    let settle_cap =
        (1..k).flat_map(|j| [s1[j], s2[j]]).filter(|&s| s <= n as u64).max().unwrap_or(1).max(1)
            as usize;

    let (s1_ref, s2_ref) = (&s1, &s2);
    // merge: ClaimReport fields are sums/maxes — order-free.
    let partials: Vec<ClaimReport> = graphkit::metrics::par_chunks(n, |nodes| {
        let mut rep = ClaimReport::default();
        let mut scratch = DijkstraScratch::new(n);
        for u in nodes {
            let u = NodeId(u as u32);
            scratch.run(g, u, INFINITY - 1, settle_cap);
            let settled = scratch.settled();
            for j in 1..k {
                let col = ld.list(u, j);
                // Octave where |B ∩ C_j| first exceeds the
                // Claim 2 load bound (None: never).
                let ib =
                    col.get(b1 - 1).filter(|&&(d, _)| d != INFINITY).map(|&(d, _)| ceil_log2(d));
                // ---- Claim 1 ----
                if s1_ref[j] <= n as u64 && settled.len() as u64 >= s1_ref[j] {
                    let i1 = ceil_log2(settled[s1_ref[j] as usize - 1].0);
                    if i1 <= max_i {
                        rep.claim1_checked += (max_i - i1 + 1) as usize;
                        // Octaves with an empty intersection:
                        // strictly below the closest C_j member.
                        let mind = col.first().map(|&(d, _)| d).unwrap_or(INFINITY);
                        let iv = match mind {
                            0 | 1 => None,
                            INFINITY => Some(max_i),
                            m => Some(floor_log2(m - 1).min(max_i)),
                        };
                        if let Some(iv) = iv {
                            if iv >= i1 {
                                rep.claim1_violations += (iv - i1 + 1) as usize;
                            }
                        }
                    }
                }
                // ---- Claim 2 ----
                // Checked octaves are those i with ball < t2:
                // everything strictly below the s2-crossing.
                let i2 = if s2_ref[j] > n as u64 || (settled.len() as u64) < s2_ref[j] {
                    None // ball never reaches t2: all octaves check
                } else {
                    Some(ceil_log2(settled[s2_ref[j] as usize - 1].0))
                };
                let last_checked = match i2 {
                    None => Some(max_i),
                    Some(0) => None, // ball ≥ t2 from octave 0 on
                    Some(i2) => Some((i2 - 1).min(max_i)),
                };
                if let Some(last) = last_checked {
                    rep.claim2_checked += (last + 1) as usize;
                    let inter = col.partition_point(|&(d, _)| d <= octave_radius(last));
                    rep.max_c2_load = rep.max_c2_load.max(inter);
                    if let Some(ib) = ib {
                        if ib <= last {
                            rep.claim2_violations += (last - ib + 1) as usize;
                        }
                    }
                }
            }
        }
        rep
    });
    let mut report = ClaimReport { c2_bound, ..Default::default() };
    for p in partials {
        report.claim1_checked += p.claim1_checked;
        report.claim1_violations += p.claim1_violations;
        report.claim2_checked += p.claim2_checked;
        report.claim2_violations += p.claim2_violations;
        report.max_c2_load = report.max_c2_load.max(p.max_c2_load);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    #[test]
    fn thresholds_monotone_in_j() {
        for j in 0..3 {
            assert!(claim1_threshold(1000, 4, j + 1) > claim1_threshold(1000, 4, j));
            assert!(claim2_threshold(1000, 4, j + 1) > claim2_threshold(1000, 4, j));
        }
    }

    #[test]
    fn claim1_j0_is_4lnn() {
        let t = claim1_threshold(1000, 3, 0);
        assert!((t - 4.0 * 1000f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn claims_hold_on_standard_families() {
        for fam in [Family::ErdosRenyi, Family::Geometric, Family::Ring] {
            let g = fam.generate(200, 13);
            let d = apsp(&g);
            for k in [2usize, 3] {
                let h = crate::LandmarkHierarchy::sample_verified(&d, k, 99, 16);
                let rep = verify_claims(&d, &h);
                assert!(
                    rep.ok(),
                    "{} k={k}: c1={} c2={}",
                    fam.label(),
                    rep.claim1_violations,
                    rep.claim2_violations
                );
                assert!(rep.claim1_checked > 0, "claim 1 never exercised");
            }
        }
    }

    #[test]
    fn exp_ring_claims_hold() {
        // Huge aspect ratio: many more radii i to check.
        let g = Family::ExpRing.generate(100, 14);
        let d = apsp(&g);
        let h = crate::LandmarkHierarchy::sample_verified(&d, 3, 5, 16);
        let rep = verify_claims(&d, &h);
        assert!(rep.ok());
    }

    #[test]
    fn adversarial_hierarchy_fails_claim1() {
        // Empty C_1 (k = 2 with nothing sampled) must violate hitting on
        // a graph whose balls get large.
        let g = Family::Grid.generate(400, 15);
        let d = apsp(&g);
        let h = crate::LandmarkHierarchy::from_levels(
            g.n(),
            2,
            vec![(0..g.n() as u32).collect(), vec![]],
        );
        let rep = verify_claims(&d, &h);
        assert!(rep.claim1_violations > 0, "empty C_1 should fail claim 1");
    }

    #[test]
    fn overfull_hierarchy_fails_claim2_or_holds_with_load() {
        // C_1 = V is maximally dense; on a big enough graph claim 2's
        // load bound must be the binding constraint (or the report at
        // least records the full load).
        let g = Family::Ring.generate(300, 16);
        let d = apsp(&g);
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let h = crate::LandmarkHierarchy::from_levels(g.n(), 2, vec![all.clone(), all]);
        let rep = verify_claims(&d, &h);
        assert!(rep.max_c2_load > 0);
        // With n = 300, k = 2: bound = 16 * sqrt(300) * ln(300) ≈ 1580 >
        // 300, so no violation — but the load must equal a full ball.
        assert!(rep.max_c2_load <= 300);
    }

    #[test]
    fn on_demand_claims_match_dense_report() {
        for fam in [Family::ErdosRenyi, Family::Geometric, Family::Ring, Family::ExpRing] {
            let g = fam.generate(130, 17);
            let d = apsp(&g);
            for k in [2usize, 3, 4] {
                for seed in [0u64, 7, 99] {
                    let h = crate::LandmarkHierarchy::sample(g.n(), k, seed);
                    let ld = crate::LandmarkDistances::build(&g, &h);
                    let dense = verify_claims(&d, &h);
                    let od = verify_claims_on_demand(&g, &h, &ld, d.diameter());
                    assert_eq!(dense, od, "{} k={k} seed={seed}", fam.label());
                }
            }
        }
    }

    #[test]
    fn on_demand_claims_match_on_adversarial_hierarchies() {
        // Empty C_1 exercises the all-octaves-violate path.
        let g = Family::Grid.generate(196, 18);
        let d = apsp(&g);
        let h = crate::LandmarkHierarchy::from_levels(
            g.n(),
            2,
            vec![(0..g.n() as u32).collect(), vec![]],
        );
        let ld = crate::LandmarkDistances::build(&g, &h);
        let dense = verify_claims(&d, &h);
        let od = verify_claims_on_demand(&g, &h, &ld, d.diameter());
        assert!(dense.claim1_violations > 0);
        assert_eq!(dense, od);
        // Overfull C_1 exercises the load accounting.
        let all: Vec<u32> = (0..g.n() as u32).collect();
        let h = crate::LandmarkHierarchy::from_levels(g.n(), 2, vec![all.clone(), all]);
        let ld = crate::LandmarkDistances::build(&g, &h);
        let dense = verify_claims(&d, &h);
        let od = verify_claims_on_demand(&g, &h, &ld, d.diameter());
        assert_eq!(dense, od);
    }

    #[test]
    fn sample_verified_on_demand_matches_dense_choice() {
        let g = Family::Geometric.generate(150, 19);
        let d = apsp(&g);
        for k in [2usize, 3] {
            let dense = crate::LandmarkHierarchy::sample_verified(&d, k, 41, 8);
            let (od, ld) =
                crate::LandmarkHierarchy::sample_verified_on_demand(&g, k, 41, 8, d.diameter());
            for i in 0..k {
                assert_eq!(dense.level(i), od.level(i), "k={k} level {i}");
            }
            assert_eq!(ld.k(), k);
        }
    }

    #[test]
    fn report_ok_semantics() {
        let mut r = ClaimReport::default();
        assert!(r.ok());
        r.claim1_violations = 1;
        assert!(!r.ok());
    }
}
