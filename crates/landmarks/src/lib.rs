#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # landmarks — the low-discrepancy landmark hierarchy (§2.3)
//!
//! Nested landmark sets `V = C₀ ⊇ C₁ ⊇ … ⊇ C_k = ∅`: each `C_i`
//! keeps every element of `C_{i−1}` independently with probability
//! `(n / ln n)^{−1/k}`. A node in `C_j \ C_{j+1}` has *rank* `j`.
//!
//! Two properties make the sparse-level strategy work, and both are
//! *verified per instance* rather than trusted w.h.p. (our effective
//! substitute for the paper's derandomization by conditional
//! probabilities — see DESIGN.md):
//!
//! * **Claim 1** (hitting): every ball `B(u, 2^i)` with
//!   `|B| ≥ 4 (ln n)^{(k−j)/k} n^{j/k}` intersects `C_j`;
//! * **Claim 2** (sparsity): every ball with
//!   `|B| < 4 (ln n)^{(k−j−1)/k} n^{(j+2)/k}` satisfies
//!   `|B ∩ C_j| ≤ 16 n^{2/k} ln n`.
//!
//! The crate also provides the derived per-node queries the scheme
//! needs: `S(u,i)` (the `16 n^{2/k} log n` closest members of `C_i`),
//! `m(u, r)` (highest rank inside a ball), and `c(u, r)` (the center:
//! closest node of that highest rank), plus a deterministic greedy
//! hitting-set fallback.

use graphkit::{DistMatrix, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod claims;
pub mod distances;
pub mod greedy;

pub use claims::{verify_claims, verify_claims_on_demand, ClaimReport};
pub use distances::LandmarkDistances;
pub use greedy::greedy_hierarchy;

/// Nested landmark sets with per-node ranks.
#[derive(Clone, Debug)]
pub struct LandmarkHierarchy {
    k: usize,
    n: usize,
    /// `rank[v]` = the unique `j` with `v ∈ C_j \ C_{j+1}`.
    rank: Vec<u8>,
    /// `levels[i]` = sorted members of `C_i`, for `i ∈ 0..k`.
    levels: Vec<Vec<u32>>,
}

impl LandmarkHierarchy {
    /// Random hierarchy per §2.3: survival probability
    /// `(n / ln n)^{−1/k}` per level.
    pub fn sample(n: usize, k: usize, seed: u64) -> Self {
        assert!(n >= 2 && k >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = survival_probability(n, k);
        let mut rank = vec![0u8; n];
        let mut levels: Vec<Vec<u32>> = Vec::with_capacity(k);
        levels.push((0..n as u32).collect()); // C_0 = V
        for i in 1..k {
            let prev = &levels[i - 1];
            let next: Vec<u32> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
            for &v in &next {
                rank[v as usize] = i as u8;
            }
            levels.push(next);
        }
        LandmarkHierarchy { k, n, rank, levels }
    }

    /// Sample, verify Claims 1–2 against the graph's ball family, and
    /// re-seed until they hold (up to `attempts`); returns the first
    /// verified hierarchy or the one with fewest violations.
    pub fn sample_verified(d: &DistMatrix, k: usize, seed: u64, attempts: u32) -> Self {
        let n = d.n();
        let mut best: Option<(usize, Self)> = None;
        for a in 0..attempts.max(1) as u64 {
            let h = Self::sample(n, k, seed.wrapping_add(a.wrapping_mul(0x5851_f42d)));
            let report = verify_claims(d, &h);
            let violations = report.claim1_violations + report.claim2_violations;
            if violations == 0 {
                return h;
            }
            if best.as_ref().is_none_or(|(bv, _)| violations < *bv) {
                best = Some((violations, h));
            }
        }
        // attempts ≥ 1 via max(1), so `best` is Some here; the total
        // fallback (fresh base-seed sample) keeps this panic-free.
        best.map(|(_, h)| h).unwrap_or_else(|| Self::sample(n, k, seed))
    }

    /// Matrix-free [`LandmarkHierarchy::sample_verified`]: the same
    /// seed sequence and the same selection rule (first attempt whose
    /// Claims 1–2 hold, otherwise fewest violations), but verified
    /// through [`verify_claims_on_demand`] over landmark-distance
    /// columns instead of a dense matrix. Returns the chosen hierarchy
    /// *with* its columns so the scheme build can reuse the landmark
    /// Dijkstras. `diameter` must be exact (see
    /// [`graphkit::diameter_matrix_free`]).
    pub fn sample_verified_on_demand(
        g: &Graph,
        k: usize,
        seed: u64,
        attempts: u32,
        diameter: u64,
    ) -> (Self, LandmarkDistances) {
        let n = g.n();
        let mut best: Option<(usize, Self, LandmarkDistances)> = None;
        for a in 0..attempts.max(1) as u64 {
            let h = Self::sample(n, k, seed.wrapping_add(a.wrapping_mul(0x5851_f42d)));
            let ld = LandmarkDistances::build(g, &h);
            let report = verify_claims_on_demand(g, &h, &ld, diameter);
            let violations = report.claim1_violations + report.claim2_violations;
            if violations == 0 {
                return (h, ld);
            }
            if best.as_ref().is_none_or(|(bv, _, _)| violations < *bv) {
                best = Some((violations, h, ld));
            }
        }
        // Same shape as sample_verified: attempts ≥ 1 makes `best`
        // Some; the fallback stays total without a panic.
        match best {
            Some((_, h, ld)) => (h, ld),
            None => {
                let h = Self::sample(n, k, seed);
                let ld = LandmarkDistances::build(g, &h);
                (h, ld)
            }
        }
    }

    /// Build from explicit levels (used by the greedy construction).
    /// `levels\[0\]` must be all of `V`; each level must be a subset of
    /// the previous.
    pub fn from_levels(n: usize, k: usize, levels: Vec<Vec<u32>>) -> Self {
        match Self::try_from_levels(n, k, levels) {
            Ok(h) => h,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Fallible [`LandmarkHierarchy::from_levels`] — the entry point
    /// for deserialized levels, where malformed input must surface as
    /// an error rather than a panic.
    pub fn try_from_levels(n: usize, k: usize, levels: Vec<Vec<u32>>) -> Result<Self, String> {
        if levels.len() != k {
            return Err(format!("expected {k} levels, got {}", levels.len()));
        }
        if levels.first().is_none_or(|l| l.len() != n) {
            return Err("C_0 must be V".to_string());
        }
        let mut rank = vec![0u8; n];
        for (i, pair) in levels.windows(2).enumerate() {
            let [prev_level, level] = pair else { continue };
            let prev: std::collections::HashSet<u32> = prev_level.iter().copied().collect();
            for &v in level {
                match rank.get_mut(v as usize) {
                    Some(r) if prev.contains(&v) => *r = (i + 1) as u8,
                    _ => return Err("levels must be nested".to_string()),
                }
            }
        }
        let levels: Vec<Vec<u32>> = levels
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l
            })
            .collect();
        if !levels.first().is_some_and(|l| l.iter().copied().eq(0..n as u32)) {
            return Err("C_0 must be V".to_string());
        }
        Ok(LandmarkHierarchy { k, n, rank, levels })
    }

    /// The raw levels `C_0, …, C_{k−1}` (snapshot serialization reads
    /// these; reload through [`LandmarkHierarchy::try_from_levels`]).
    pub fn levels(&self) -> &[Vec<u32>] {
        &self.levels
    }

    /// The parameter `k` (note `C_k = ∅` implicitly).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rank of `v`: the unique `j` with `v ∈ C_j \ C_{j+1}`.
    pub fn rank(&self, v: NodeId) -> usize {
        self.rank[v.idx()] as usize
    }

    /// Members of `C_i` (sorted). `C_i = ∅` for `i ≥ k`.
    pub fn level(&self, i: usize) -> &[u32] {
        if i >= self.k {
            &[]
        } else {
            &self.levels[i]
        }
    }

    /// Is `v ∈ C_i`?
    pub fn in_level(&self, v: NodeId, i: usize) -> bool {
        i < self.k && self.rank[v.idx()] as usize >= i
    }

    /// `S(u, i) = N(u, 16 n^{2/k} log n, C_i)`: the nearby landmarks of
    /// level `i`, ordered by `(distance, id)`. Unreachable landmarks
    /// (infinite rows, which arise on disconnected inputs and from
    /// partial on-demand rows) are never members — a huge budget must
    /// not rank them as real neighbors.
    pub fn s_set(&self, d: &DistMatrix, u: NodeId, i: usize) -> Vec<u32> {
        let budget = self.s_budget();
        let row = d.row(u);
        let mut members: Vec<(u64, u32)> = self
            .level(i)
            .iter()
            .map(|&v| (row[v as usize], v))
            .filter(|&(dist, _)| dist != graphkit::INFINITY)
            .collect();
        members.sort_unstable();
        members.truncate(budget);
        members.into_iter().map(|(_, v)| v).collect()
    }

    /// The union `S(u) = ∪_i S(u, i)` (deduplicated, sorted by id).
    pub fn s_union(&self, d: &DistMatrix, u: NodeId) -> Vec<u32> {
        let mut all: Vec<u32> = (0..self.k).flat_map(|i| self.s_set(d, u, i)).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The `16 n^{2/k} log n` budget of `S(u, i)`.
    pub fn s_budget(&self) -> usize {
        let n = self.n as f64;
        let k = self.k as f64;
        ((16.0 * n.powf(2.0 / k) * n.ln()).ceil() as usize).max(1)
    }

    /// `m(u, r)` — the highest rank present in `B(u, r)`. Unreachable
    /// nodes are filtered explicitly: a saturated radius (see
    /// [`graphkit::octave_radius`]) may reach `INFINITY − 1`, and an
    /// `INFINITY` row entry must not smuggle an unreachable landmark's
    /// rank into the ball.
    pub fn max_rank_in_ball(&self, d: &DistMatrix, u: NodeId, r: u64) -> usize {
        let row = d.row(u);
        row.iter()
            .enumerate()
            .filter(|&(_, &dist)| dist != graphkit::INFINITY && dist <= r)
            .map(|(v, _)| self.rank[v] as usize)
            .max()
            .unwrap_or(0)
    }

    /// `c(u, r)` — the center: the closest node to `u` (ties by id)
    /// among the *reachable* part of `C_{m(u,r)}` (the rank witness in
    /// the ball guarantees one exists).
    pub fn center(&self, d: &DistMatrix, u: NodeId, r: u64) -> NodeId {
        let m = self.max_rank_in_ball(d, u, r);
        let row = d.row(u);
        let best = self
            .level(m)
            .iter()
            .copied()
            .filter(|&v| row[v as usize] != graphkit::INFINITY)
            .min_by_key(|&v| (row[v as usize], v))
            .expect("C_m has a reachable member: the rank-m witness inside B(u,r)");
        NodeId(best)
    }

    /// Survival probability used by the sampler (exposed for tests).
    pub fn survival_probability(&self) -> f64 {
        survival_probability(self.n, self.k)
    }
}

/// `(n / ln n)^{−1/k}`, clamped into `(0, 1]`.
pub fn survival_probability(n: usize, k: usize) -> f64 {
    let n = n as f64;
    let base = (n / n.ln()).max(1.0);
    base.powf(-1.0 / k as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    #[test]
    fn levels_are_nested_and_ranked() {
        let h = LandmarkHierarchy::sample(500, 3, 1);
        assert_eq!(h.level(0).len(), 500);
        for i in 1..3 {
            for &v in h.level(i) {
                assert!(h.in_level(NodeId(v), i - 1), "nesting violated at level {i}");
                assert!(h.rank(NodeId(v)) >= i);
            }
        }
        assert!(h.level(3).is_empty());
        assert!(h.level(99).is_empty());
        // Every rank-j node appears in exactly levels 0..=j.
        for v in 0..500u32 {
            let r = h.rank(NodeId(v));
            for i in 0..3 {
                assert_eq!(h.in_level(NodeId(v), i), i <= r);
            }
        }
    }

    #[test]
    fn level_sizes_shrink_geometrically() {
        let h = LandmarkHierarchy::sample(2000, 4, 2);
        for i in 1..4 {
            assert!(h.level(i).len() < h.level(i - 1).len(), "level {i} did not shrink");
        }
        // Expected size of C_1 ≈ n * p; allow 3x slack both ways.
        let expect = 2000.0 * survival_probability(2000, 4);
        let got = h.level(1).len() as f64;
        assert!(got > expect / 3.0 && got < expect * 3.0, "C_1 size {got} vs {expect}");
    }

    #[test]
    fn k1_has_only_c0() {
        let h = LandmarkHierarchy::sample(50, 1, 3);
        assert_eq!(h.level(0).len(), 50);
        assert!(h.level(1).is_empty());
        for v in 0..50u32 {
            assert_eq!(h.rank(NodeId(v)), 0);
        }
    }

    #[test]
    fn s_set_is_closest_members() {
        let g = Family::Grid.generate(100, 4);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 2, 5);
        let u = NodeId(0);
        let s = h.s_set(&d, u, 1);
        assert!(!s.is_empty());
        assert!(s.len() <= h.s_budget());
        let row = d.row(u);
        let far = s.iter().map(|&v| row[v as usize]).max().unwrap();
        for &v in &s {
            assert!(h.in_level(NodeId(v), 1));
        }
        if s.len() == h.s_budget() {
            for &v in h.level(1) {
                if !s.contains(&v) {
                    assert!(row[v as usize] >= far);
                }
            }
        }
    }

    #[test]
    fn s_union_covers_all_levels() {
        let g = Family::ErdosRenyi.generate(120, 6);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 3, 7);
        let u = NodeId(3);
        let union = h.s_union(&d, u);
        for i in 0..3 {
            for v in h.s_set(&d, u, i) {
                assert!(union.binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn center_is_closest_of_max_rank() {
        let g = Family::Geometric.generate(150, 8);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 3, 9);
        let u = NodeId(10);
        let r = d.diameter() / 4;
        let m = h.max_rank_in_ball(&d, u, r);
        let c = h.center(&d, u, r);
        assert_eq!(h.rank(c), m);
        for &v in h.level(m) {
            assert!(d.d(u, c) <= d.d(u, NodeId(v)));
        }
    }

    #[test]
    fn max_rank_in_radius_zero_ball_is_own_rank() {
        let g = Family::Ring.generate(60, 10);
        let d = apsp(&g);
        let h = LandmarkHierarchy::sample(g.n(), 2, 11);
        for v in 0..60u32 {
            let u = NodeId(v);
            assert_eq!(h.max_rank_in_ball(&d, u, 0), h.rank(u));
        }
    }

    #[test]
    fn disconnected_input_filters_unreachable_landmarks() {
        // Two components; every rank-1 landmark lives in the right one.
        let g = graphkit::graph_from_edges(
            8,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (4, 5, 1), (5, 6, 1), (6, 7, 1)],
        );
        let d = apsp(&g);
        let h = LandmarkHierarchy::from_levels(8, 2, vec![(0..8).collect(), vec![5, 6]]);
        let u = NodeId(0);
        // Huge radius (as a saturated octave produces): unreachable
        // landmarks must not be ranked into the ball…
        let r = u64::MAX - 1;
        assert_eq!(h.max_rank_in_ball(&d, u, r), 0);
        // …nor become S-set members…
        assert!(h.s_set(&d, u, 1).is_empty());
        assert_eq!(h.s_union(&d, u), h.s_set(&d, u, 0));
        for &v in &h.s_union(&d, u) {
            assert_ne!(d.d(u, NodeId(v)), graphkit::INFINITY);
        }
        // …nor centers: with m = 0 the center collapses to u itself.
        assert_eq!(h.center(&d, u, r), u);
        // From the landmark side everything still works.
        assert_eq!(h.max_rank_in_ball(&d, NodeId(4), r), 1);
        assert_eq!(h.center(&d, NodeId(4), r), NodeId(5));
    }

    #[test]
    fn from_levels_roundtrip() {
        let levels = vec![vec![0, 1, 2, 3, 4], vec![1, 3], vec![3]];
        let h = LandmarkHierarchy::from_levels(5, 3, levels);
        assert_eq!(h.rank(NodeId(3)), 2);
        assert_eq!(h.rank(NodeId(1)), 1);
        assert_eq!(h.rank(NodeId(0)), 0);
        assert_eq!(h.level(2), &[3]);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn from_levels_rejects_non_nested() {
        let levels = vec![vec![0, 1, 2], vec![1], vec![2]];
        LandmarkHierarchy::from_levels(3, 3, levels);
    }

    #[test]
    fn survival_probability_sane() {
        let p = survival_probability(1000, 2);
        assert!(p > 0.0 && p < 1.0);
        // Larger k → larger survival probability (shallower decay).
        assert!(survival_probability(1000, 4) > survival_probability(1000, 2));
    }

    #[test]
    fn sampling_deterministic_in_seed() {
        let a = LandmarkHierarchy::sample(300, 3, 42);
        let b = LandmarkHierarchy::sample(300, 3, 42);
        for i in 0..3 {
            assert_eq!(a.level(i), b.level(i));
        }
    }
}
