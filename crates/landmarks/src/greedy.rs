//! Deterministic landmark construction by greedy hitting sets.
//!
//! The paper notes the randomized hierarchy "can be de-randomized using
//! the method of conditional probabilities and pessimistic estimators".
//! We provide the classical alternative: build each `C_j` (top level
//! first, preserving nesting) as a greedy hitting set over the balls
//! that Claim 1 obliges `C_j` to hit. Greedy gives an `O(ln |B|)`
//! approximation, so the levels stay small and Claim 2's sparsity holds
//! in practice (it is still *verified* by callers).

use graphkit::ids::{ceil_log2, octave_radius};
use graphkit::{DistMatrix, NodeId};

use crate::claims::claim1_threshold;
use crate::LandmarkHierarchy;

/// Deterministically build a hierarchy whose levels hit every ball that
/// Claim 1 requires. Runs in O(k · |B| · n · picks) worst case — meant
/// for moderate n (it is the *fallback*, not the default path).
pub fn greedy_hierarchy(d: &DistMatrix, k: usize) -> LandmarkHierarchy {
    let n = d.n();
    assert!(n >= 2 && k >= 1);
    let max_i = ceil_log2(d.diameter().max(1)) + 1;
    // Enumerate the ball family once: (center u, radius 2^i, size).
    let mut balls: Vec<(u32, u64, usize)> = Vec::new();
    for u in 0..n as u32 {
        let row = d.row(NodeId(u));
        let mut sorted: Vec<u64> = row.to_vec();
        sorted.sort_unstable();
        for i in 0..=max_i {
            // max_i = ⌈log₂Δ⌉ + 1 reaches 65 at near-u64::MAX weights;
            // octave_radius saturates instead of overflowing the shift.
            let r = octave_radius(i);
            let size = sorted.partition_point(|&x| x <= r);
            balls.push((u, r, size));
        }
    }
    // Build levels top-down so nesting can be enforced by unioning.
    let mut levels_rev: Vec<Vec<u32>> = Vec::new(); // C_{k-1}, C_{k-2}, ..
    let mut current: Vec<u32> = Vec::new();
    for j in (1..k).rev() {
        let threshold = claim1_threshold(n, k, j);
        let mut unhit: Vec<(u32, u64)> = balls
            .iter()
            .filter(|&&(_, _, size)| size as f64 >= threshold)
            .map(|&(u, r, _)| (u, r))
            .collect();
        // Drop balls already hit by higher levels (current ⊆ C_j).
        unhit.retain(|&(u, r)| !current.iter().any(|&c| d.d(NodeId(u), NodeId(c)) <= r));
        while !unhit.is_empty() {
            // Pick the node inside the most unhit balls (ties: smaller id).
            let mut best = (0usize, 0u32);
            for v in 0..n as u32 {
                let cover = unhit.iter().filter(|&&(u, r)| d.d(NodeId(u), NodeId(v)) <= r).count();
                if cover > best.0 {
                    best = (cover, v);
                }
            }
            debug_assert!(best.0 > 0, "some ball is unhittable");
            let v = best.1;
            if !current.contains(&v) {
                current.push(v);
            }
            unhit.retain(|&(u, r)| d.d(NodeId(u), NodeId(v)) > r);
        }
        levels_rev.push(current.clone());
    }
    let mut levels: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    levels.extend(levels_rev.into_iter().rev());
    LandmarkHierarchy::from_levels(n, k, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::claims::verify_claims;
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;

    #[test]
    fn greedy_satisfies_claim1_by_construction() {
        for fam in [Family::Ring, Family::Grid] {
            let g = fam.generate(100, 21);
            let d = apsp(&g);
            let h = greedy_hierarchy(&d, 3);
            let rep = verify_claims(&d, &h);
            assert_eq!(rep.claim1_violations, 0, "{}", fam.label());
        }
    }

    #[test]
    fn greedy_levels_are_nested_and_small() {
        let g = Family::ErdosRenyi.generate(120, 22);
        let d = apsp(&g);
        let h = greedy_hierarchy(&d, 3);
        assert_eq!(h.level(0).len(), 120);
        // Greedy hitting sets should be far smaller than V.
        assert!(h.level(1).len() < 120);
        for &v in h.level(2) {
            assert!(h.level(1).contains(&v));
        }
    }

    #[test]
    fn greedy_k1_is_just_v() {
        let g = Family::Ring.generate(30, 23);
        let d = apsp(&g);
        let h = greedy_hierarchy(&d, 1);
        assert_eq!(h.level(0).len(), 30);
        assert!(h.level(1).is_empty());
    }

    #[test]
    fn greedy_deterministic() {
        let g = Family::Geometric.generate(80, 24);
        let d = apsp(&g);
        let a = greedy_hierarchy(&d, 2);
        let b = greedy_hierarchy(&d, 2);
        for i in 0..2 {
            assert_eq!(a.level(i), b.level(i));
        }
    }
}
