//! Property-based tests for the landmark hierarchy: nesting, rank
//! consistency, S-set ordering, and center optimality on random graphs.

use graphkit::gen::WeightDist;
use graphkit::metrics::apsp;
use graphkit::NodeId;
use landmarks::LandmarkHierarchy;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_instance() -> impl Strategy<Value = (graphkit::Graph, usize, u64)> {
    (8usize..60, 1usize..5, any::<u64>(), 0.0f64..0.2).prop_map(|(n, k, seed, p)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g =
            graphkit::gen::erdos_renyi(n, p, WeightDist::UniformInt { lo: 1, hi: 32 }, &mut rng);
        (g, k, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Levels are nested and ranks identify the deepest level exactly.
    #[test]
    fn nesting_and_ranks((g, k, seed) in arb_instance()) {
        let h = LandmarkHierarchy::sample(g.n(), k, seed);
        prop_assert_eq!(h.level(0).len(), g.n());
        for i in 1..k {
            for &v in h.level(i) {
                prop_assert!(h.level(i - 1).contains(&v));
            }
        }
        for v in 0..g.n() as u32 {
            let r = h.rank(NodeId(v));
            prop_assert!(r < k);
            prop_assert!(h.in_level(NodeId(v), r));
            prop_assert!(!h.in_level(NodeId(v), r + 1));
        }
    }

    /// S(u, i) is a prefix of C_i under the (distance, id) order.
    #[test]
    fn s_set_is_sorted_prefix((g, k, seed) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let h = LandmarkHierarchy::sample(g.n(), k, seed);
        for u in (0..g.n() as u32).step_by(5) {
            let u = NodeId(u);
            for i in 0..k {
                let s = h.s_set(&d, u, i);
                // Sorted by (distance, id).
                for w in s.windows(2) {
                    let a = (d.d(u, NodeId(w[0])), w[0]);
                    let b = (d.d(u, NodeId(w[1])), w[1]);
                    prop_assert!(a < b);
                }
                // Prefix property: every omitted member is no closer
                // than the last taken one.
                if let Some(&last) = s.last() {
                    if s.len() == h.s_budget() {
                        let key = (d.d(u, NodeId(last)), last);
                        for &c in h.level(i) {
                            if !s.contains(&c) {
                                prop_assert!((d.d(u, NodeId(c)), c) > key);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The center c(u, r) has the maximal rank in B(u, r) and is the
    /// closest node of that rank level.
    #[test]
    fn center_optimal((g, k, seed) in arb_instance(), rdiv in 1u64..8) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let h = LandmarkHierarchy::sample(g.n(), k, seed);
        let r = (d.diameter() / rdiv).max(1);
        for u in (0..g.n() as u32).step_by(7) {
            let u = NodeId(u);
            let m = h.max_rank_in_ball(&d, u, r);
            // Witness: some node in the ball has rank m, none higher.
            let mut witness = false;
            for v in 0..g.n() as u32 {
                if d.d(u, NodeId(v)) <= r {
                    prop_assert!(h.rank(NodeId(v)) <= m);
                    if h.rank(NodeId(v)) == m { witness = true; }
                }
            }
            prop_assert!(witness);
            let c = h.center(&d, u, r);
            prop_assert_eq!(h.rank(c), m);
            for &v in h.level(m) {
                prop_assert!(d.d(u, c) <= d.d(u, NodeId(v)));
            }
        }
    }

    /// Verified sampling never *increases* violations relative to the
    /// best attempt, and on connected graphs typically reaches zero.
    #[test]
    fn verified_sampling_reports((g, k, seed) in arb_instance()) {
        let d = apsp(&g);
        if !d.connected() { return Ok(()); }
        let h = LandmarkHierarchy::sample_verified(&d, k, seed, 8);
        let rep = landmarks::verify_claims(&d, &h);
        // On these sizes the thresholds are loose; verified sampling
        // should almost always succeed — tolerate nothing here.
        prop_assert!(rep.ok(), "claims violated after verified sampling: {:?}", rep);
    }
}

// ---- try_from_levels degradation (panic-free decode) -------------------
//
// Regression tests for the checked-access rewrite surfaced by
// `agm-lint`'s decode cone: malformed level sets from a corrupt
// snapshot must come back as `Err`, never as an index panic.

#[test]
fn try_from_levels_rejects_empty_and_mismatched_shapes() {
    // k=0 with no levels: there is no C_0 == V, so this is an error,
    // reported without touching any level.
    assert!(LandmarkHierarchy::try_from_levels(4, 0, vec![]).is_err());
    // Level count != k.
    assert!(LandmarkHierarchy::try_from_levels(4, 2, vec![vec![0, 1, 2, 3]]).is_err());
    // C_0 too small.
    assert!(LandmarkHierarchy::try_from_levels(4, 1, vec![vec![0, 1]]).is_err());
    // C_0 right size but not exactly V.
    assert!(LandmarkHierarchy::try_from_levels(4, 1, vec![vec![0, 1, 2, 9]]).is_err());
}

#[test]
fn try_from_levels_rejects_out_of_range_and_non_nested_members() {
    // A member id past n in a later level would index past `rank`
    // without the checked `get_mut`.
    assert!(LandmarkHierarchy::try_from_levels(4, 2, vec![vec![0, 1, 2, 3], vec![99]]).is_err());
    // A level member absent from its predecessor breaks nesting.
    let levels = vec![vec![0, 1, 2, 3], vec![1, 2], vec![3]];
    assert!(LandmarkHierarchy::try_from_levels(4, 3, levels).is_err());
}

#[test]
fn try_from_levels_roundtrips_a_sampled_hierarchy() {
    let h = LandmarkHierarchy::sample(40, 3, 0xF00D);
    let back = LandmarkHierarchy::try_from_levels(40, 3, h.levels().to_vec())
        .expect("sampled levels are well-formed");
    for v in 0..40u32 {
        assert_eq!(h.rank(NodeId(v)), back.rank(NodeId(v)));
    }
}
