//! Offline shim for `crossbeam::scope`, the only crossbeam API this
//! workspace uses, implemented over [`std::thread::scope`].
//!
//! Semantics match the call sites' expectations: spawned closures
//! receive a `&Scope` (callers write `move |_|`), the scope joins all
//! threads before returning, and each thread writes a disjoint
//! `chunks_mut` slice so no synchronization is needed. One divergence:
//! upstream returns `Err` when a child panicked, while std's scope
//! propagates the panic at join — callers only `.expect()` the result,
//! so both surface as a panic.

use std::any::Any;

/// Scope handle passed to [`scope`] closures; `spawn` borrows data
/// from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure gets a `&Scope` so it can
    /// spawn nested work, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let s = Scope { inner };
            f(&s)
        });
    }
}

/// Run `f` with a scope in which borrowed scoped threads can be
/// spawned; joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn disjoint_chunk_writes() {
        let mut data = vec![0u32; 1000];
        super::scope(|s| {
            for (c, chunk) in data.chunks_mut(100).enumerate() {
                s.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (c * 100 + i) as u32;
                    }
                });
            }
        })
        .expect("worker panicked");
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn returns_closure_value() {
        let out = super::scope(|_| 41 + 1).unwrap();
        assert_eq!(out, 42);
    }
}
