//! Offline shim for the subset of `criterion` this workspace's bench
//! targets use: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`], and
//! [`black_box`].
//!
//! The build container has no crates registry, so the workspace pins
//! `criterion` to this path dependency. Each benchmark does a short
//! warmup, times `sample_size` batches with [`std::time::Instant`],
//! and prints the per-iteration mean — a sanity-check harness, not a
//! statistics engine. Swap for the real crate when a registry is
//! reachable.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

/// A named benchmark group; ids print as `group/id`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed batches per benchmark (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher { sample_size: self.sample_size, total_ns: 0, iters: 0 };
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// End the group (upstream writes reports here; we already print
    /// per-bench lines, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying just the parameter's display form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called `sample_size` times after one warmup call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f()); // warmup; also forces lazy setup in `f`
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += self.sample_size as u64;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("bench {label:<40} (no iterations)");
        } else {
            let per_iter = self.total_ns / self.iters as u128;
            println!("bench {label:<40} {per_iter:>12} ns/iter ({} iters)", self.iters);
        }
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { sample_size, total_ns: 0, iters: 0 };
    f(&mut bencher);
    bencher.report(label);
}

/// Collect bench functions into one runnable group fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("unit/direct", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut with_input = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("n4"), &4u64, |b, &n| {
            b.iter(|| with_input += n)
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(with_input, 4 * 4); // warmup + 3 samples
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
    }
}
