//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no crates registry, so the workspace pins
//! `proptest` to this path dependency. It keeps the public surface the
//! suites rely on — the [`proptest!`] macro with
//! `#![proptest_config(..)]`, range / tuple / [`Just`] /
//! [`collection::vec`] / [`any`] strategies, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros — but trades away
//! shrinking: a failing case panics immediately, and the deterministic
//! RNG makes every failure reproducible by rerunning the same test
//! binary.
//!
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `generate` draws a
    /// fresh value directly (no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f`
        /// builds out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let inner = (self.f)(self.source.generate(rng));
            inner.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_shim(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_incl_shim(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range_f64_shim(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_word() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_word() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full range for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range_shim(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Per-test configuration and the deterministic RNG.

    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Mirror of upstream's `ProptestConfig`; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; unused (no rejection
        /// sampling).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0, max_global_rejects: 0 }
        }
    }

    /// Error type for early case rejection (`return Ok(())` /
    /// `Err(..)` from a test body). The shim panics on `Err`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator handed to strategies. Seeded from the
    /// FNV hash of `file::test_name`, so every test function explores
    /// its own input stream (two tests sharing a stream would silently
    /// duplicate coverage) while every run of the binary sees
    /// identical inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Deterministic RNG keyed by the test's `file::name` site.
        pub fn deterministic(site: &str) -> Self {
            // FNV-1a over the site string.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in site.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { inner: SmallRng::seed_from_u64(h) }
        }

        /// Next raw 64-bit word.
        pub fn next_word(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from a half-open integer range.
        pub fn gen_range_shim<T, R>(&mut self, range: R) -> T
        where
            R: rand::distributions::uniform::SampleRange<T>,
        {
            self.inner.gen_range(range)
        }

        /// Uniform draw from an inclusive integer range.
        pub fn gen_range_incl_shim<T, R>(&mut self, range: R) -> T
        where
            R: rand::distributions::uniform::SampleRange<T>,
        {
            self.inner.gen_range(range)
        }

        /// Uniform draw from a half-open f64 range.
        pub fn gen_range_f64_shim(&mut self, range: std::ops::Range<f64>) -> f64 {
            self.inner.gen_range(range)
        }
    }
}

/// Everything the suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` that draws `config.cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                file!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                let ($($pat,)+) =
                    ($( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+);
                // As upstream: the body runs in a Result-returning
                // scope so `return Ok(())` rejects a case early.
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case failed: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` with proptest spelling (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` with proptest spelling (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` with proptest spelling (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u64>)> {
        (1usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..100, 0..n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(x in 3usize..24, y in 1u64..100, f in 0.0f64..0.15) {
            prop_assert!((3..24).contains(&x));
            prop_assert!((1..100).contains(&y));
            prop_assert!((0.0..0.15).contains(&f));
        }

        #[test]
        fn flat_map_links_sizes((n, v) in arb_pair()) {
            prop_assert!(v.len() < n.max(1) || v.is_empty());
            for e in v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn maps_apply(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0);
            prop_assert!(s < 20);
        }

        #[test]
        fn any_covers_wide_range(a in any::<u64>(), b in any::<u32>()) {
            // Statistical smoke only: values exist and differ across draws.
            let _ = (a, b);
        }
    }

    #[test]
    fn default_config_cases() {
        let c = ProptestConfig::default();
        assert_eq!(c.cases, 256);
    }
}
