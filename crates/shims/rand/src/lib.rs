//! Offline shim for the subset of the `rand 0.8` API this workspace
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`),
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The container that builds this workspace has no access to a crates
//! registry, so the workspace pins `rand` to this path dependency. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is what every seeded test in the workspace
//! relies on. The exact streams differ from upstream `rand`'s
//! `SmallRng` (upstream documents its streams as unstable anyway), so
//! seeds here are workspace-stable, not upstream-stable.

/// A source of random 32/64-bit words; object-safe like upstream.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding interface; only the `seed_from_u64` entry point upstream
/// callers in this workspace use.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] just as in upstream rand.
pub trait Rng: RngCore {
    /// A uniform value of type `T` (see [`distributions::Standard`]).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        standard_f64(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform f64 in [0, 1) from the top 53 bits of one output word.
fn standard_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on
    /// 64-bit targets. Small, fast, and plenty for test workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance
            // for seeding from a single word.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! The `Standard` distribution and the uniform-range plumbing
    //! behind [`Rng::gen_range`](super::Rng::gen_range).

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for primitives: full range
    /// for integers, `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::standard_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Range sampling. Integer ranges use widening-multiply
        //! rejection (Lemire) so results are exactly uniform.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draw one value from the range; panics on empty ranges.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform u64 in `[0, span)` by Lemire's method.
        fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return rng.next_u64() & (span - 1);
            }
            loop {
                let x = rng.next_u64();
                let m = (x as u128).wrapping_mul(span as u128);
                let lo = m as u64;
                if lo >= span.wrapping_neg() % span {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range: every word is valid.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize);

        macro_rules! impl_signed_range {
            ($($t:ty : $u:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                        self.start.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span =
                            ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                        if span == 0 {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_below(rng, span) as $t)
                    }
                }
            )*};
        }
        impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = crate::standard_f64(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp
                // back inside the half-open interval.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = crate::standard_f64(rng) as f32;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    }
}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`).

    use super::Rng;

    /// The slice extension trait, as in `rand::seq`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            use crate::distributions::uniform::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            use crate::distributions::uniform::SampleRange;
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_single(rng))
            }
        }
    }
}

/// Re-export mirror of `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let z: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&z));
            let w: usize = rng.gen_range(0..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn bool_and_float_shapes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut heads = 0;
        for _ in 0..2000 {
            if rng.gen_bool(0.5) {
                heads += 1;
            }
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((600..1400).contains(&heads), "badly biased coin: {heads}");
        assert!(!rng.gen_bool(0.0));
        // standard_f64 yields [0, 1), so p = 1.0 always succeeds.
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
