//! Where completed landmark trees live after the build: an in-memory
//! map of shared [`CenterTree`]s, or a spill file of length-prefixed
//! [`ErrorReportingTree`] wire records read back at route time.
//!
//! The spill path exists for constructions whose Õ(n^{1+1/k}) total
//! tree state exceeds RAM: the fused per-center pipeline serializes
//! each tree the moment it is finished (the full flat-arena store;
//! see [`ErrorReportingTree::to_wire`]) and drops it. Routing reloads
//! records on demand through a small FIFO cache; a reload is a single
//! validated decode pass, bit-identical to the in-memory tree, so the
//! two stores route the same paths (asserted by
//! `tests/spill_parity.rs`). The same record format and the same
//! reader serve scheme snapshots: [`SpillStore::from_file_index`]
//! points the store at a snapshot's center-trees section.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use graphkit::wire;
use treeroute::laing::ErrorReportingTree;

/// A landmark tree `T(c)` with the Lemma 4 scheme attached, plus the
/// host-id → tree-index lookup routing needs.
pub(crate) struct CenterTree {
    pub ert: ErrorReportingTree,
    /// host node id -> tree index. A sorted array rather than an
    /// n-length vector or a hash map: matrix-free graphs carry Θ(n)
    /// center trees totalling Õ(n^{1+1/k}) memberships, so per-entry
    /// memory is what decides whether a 10⁵-node scheme fits in RAM.
    pub ix_of: IdIndex,
}

impl CenterTree {
    /// Wrap a finished scheme, deriving the id index from the tree.
    pub fn new(ert: ErrorReportingTree) -> Self {
        let ix_of = IdIndex::from_graph_ids(ert.labeled().tree().graph_ids());
        CenterTree { ert, ix_of }
    }
}

/// Compact host-id → tree-index lookup: `(id, ix)` pairs sorted by id.
pub(crate) struct IdIndex(Vec<(u32, u32)>);

impl IdIndex {
    /// Build from a tree's host ids (index = position in the array).
    pub fn from_graph_ids(graph_ids: &[u32]) -> Self {
        let mut pairs: Vec<(u32, u32)> =
            graph_ids.iter().enumerate().map(|(i, &gid)| (gid, i as u32)).collect();
        pairs.sort_unstable();
        IdIndex(pairs)
    }

    /// Tree index of host id `v`, if present.
    #[inline]
    pub fn get(&self, v: u32) -> Option<u32> {
        self.0.binary_search_by_key(&v, |&(id, _)| id).ok().map(|i| self.0[i].1)
    }
}

/// Backing storage for the per-center trees.
pub(crate) enum CenterStore {
    /// Every tree resident, shared behind `Arc` (the default).
    Memory(HashMap<u32, Arc<CenterTree>>),
    /// Trees on disk; loads go through a FIFO cache.
    Spilled(SpillStore),
}

impl CenterStore {
    /// The tree of center `c`. Routing only ever asks for centers the
    /// plans recorded, so a miss — or, on the spilled store, an
    /// unreadable/corrupt record — is reported as an error for the
    /// caller to degrade on (a route falls through to its next level)
    /// rather than panicking the serving process.
    pub fn center_tree(&self, c: u32) -> io::Result<Arc<CenterTree>> {
        match self {
            CenterStore::Memory(m) => {
                m.get(&c).map(Arc::clone).ok_or_else(|| wire::invalid("unknown center"))
            }
            CenterStore::Spilled(s) => s.load_center(c),
        }
    }

    /// Every center with a tree, ascending (snapshot save iterates
    /// these so section payloads are byte-deterministic).
    pub fn centers(&self) -> Vec<u32> {
        let mut cs: Vec<u32> = match self {
            // lint:allow(deterministic-output): keys are collected then sorted below before any caller writes
            CenterStore::Memory(m) => m.keys().copied().collect(),
            // lint:allow(deterministic-output): keys are collected then sorted below before any caller writes
            CenterStore::Spilled(s) => s.index.keys().copied().collect(),
        };
        cs.sort_unstable();
        cs
    }

    /// The wire payload of center `c`'s tree. Resident trees are
    /// encoded on the fly; spilled records are copied verbatim — the
    /// spill file and the snapshot's center-trees section share the
    /// same per-record format, so no decode/re-encode round trip.
    pub fn payload(&self, c: u32) -> io::Result<Vec<u8>> {
        match self {
            CenterStore::Memory(m) => {
                let ct = m.get(&c).ok_or_else(|| wire::invalid("unknown center"))?;
                let mut w = wire::Writer::new();
                ct.ert.to_wire(&mut w);
                Ok(w.into_bytes())
            }
            CenterStore::Spilled(s) => {
                let &(off, len) = s.index.get(&c).ok_or_else(|| wire::invalid("unknown center"))?;
                let mut buf = vec![0u8; len as usize];
                s.file.read_exact_at(&mut buf, off)?;
                Ok(buf)
            }
        }
    }
}

/// Concurrent writer for the spill file. Workers of the fused
/// per-center pipeline call [`SpillWriter::write`] as trees complete;
/// the mutex serializes appends, and the in-memory index records where
/// each center's payload landed.
pub(crate) struct SpillWriter {
    inner: Mutex<WriterState>,
}

struct WriterState {
    file: File,
    offset: u64,
    /// center id -> (payload offset, payload byte length).
    index: HashMap<u32, (u64, u32)>,
}

/// Process-wide sequence for unique spill-file names.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillWriter {
    /// Create the backing file in the system temp directory and unlink
    /// it immediately — the kernel reclaims the space when the last
    /// handle drops, so no cleanup path is needed.
    pub fn create() -> io::Result<SpillWriter> {
        let mut last_err = None;
        for _ in 0..16 {
            let seq = SPILL_SEQ.fetch_add(1, Ordering::SeqCst);
            let path = std::env::temp_dir().join(format!(
                "agm-center-spill-{}-{}.bin",
                std::process::id(),
                seq
            ));
            match OpenOptions::new().read(true).write(true).create_new(true).open(&path) {
                Ok(file) => {
                    let _ = std::fs::remove_file(&path);
                    return Ok(SpillWriter {
                        inner: Mutex::new(WriterState { file, offset: 0, index: HashMap::new() }),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("spill file creation failed")))
    }

    /// Append one record: `[u32 center][u32 len][payload]`, little
    /// endian. Called from build workers; a failed write is fatal (the
    /// scheme under construction would be unroutable).
    pub fn write(&self, center: u32, payload: &[u8]) {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&center.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        let mut st = self.inner.lock().unwrap();
        let at = st.offset;
        st.file.write_all_at(&record, at).expect("spill write failed");
        st.index.insert(center, (at + 8, payload.len() as u32));
        st.offset += record.len() as u64;
    }

    /// Finish writing and flip to the read side.
    pub fn finish(self) -> SpillStore {
        let mut st = self.inner.into_inner().unwrap();
        st.file.flush().expect("spill flush failed");
        SpillStore { file: st.file, index: st.index, cache: Mutex::new(VecDeque::new()) }
    }
}

/// Read side of the spill file: positional reads plus a small FIFO
/// cache of rebuilt trees (route workloads revisit the same centers).
pub(crate) struct SpillStore {
    file: File,
    index: HashMap<u32, (u64, u32)>,
    cache: Mutex<VecDeque<(u32, Arc<CenterTree>)>>,
}

impl SpillStore {
    const CACHE_CAP: usize = 8;

    /// Point a store at records living inside an existing file — the
    /// snapshot loader's lazy mode hands over the snapshot file itself
    /// with absolute `(offset, len)` extents into its center-trees
    /// section. This is the spill/snapshot unification: route-time
    /// reloads go through exactly the same cache and decode path
    /// whether the records came from a build spill or a saved scheme.
    pub fn from_file_index(file: File, index: HashMap<u32, (u64, u32)>) -> SpillStore {
        SpillStore { file, index, cache: Mutex::new(VecDeque::new()) }
    }

    /// Load (or fetch from cache) the tree of center `c`, decoding
    /// the full Lemma 4 scheme from its flat-arena record. An index
    /// miss, short read, or corrupt record surfaces as an error — the
    /// route path treats it as "destination not found at this level".
    /// The cache mutex recovers from poisoning (no invariant spans the
    /// lock: the FIFO holds complete `Arc`s only).
    fn load_center(&self, c: u32) -> io::Result<Arc<CenterTree>> {
        {
            let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, ct)) = cache.iter().find(|&&(id, _)| id == c) {
                return Ok(Arc::clone(ct));
            }
        }
        let &(off, len) =
            self.index.get(&c).ok_or_else(|| wire::invalid("center missing from spill index"))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact_at(&mut buf, off)?;
        let mut r = wire::Reader::new(&buf);
        let ert = ErrorReportingTree::from_wire(&mut r)?;
        let ct = Arc::new(CenterTree::new(ert));
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.push_front((c, Arc::clone(&ct)));
        cache.truncate(Self::CACHE_CAP);
        Ok(ct)
    }
}
