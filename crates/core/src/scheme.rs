//! The full AGM SPAA'06 routing scheme (§3): preprocessing, the
//! iterative phase router, and bit-level storage accounting.

use std::collections::HashMap;

use decomposition::Decomposition;
use graphkit::bits::{bits_for_node, bits_for_universe};
use graphkit::{apsp, dijkstra, induced_subgraph, Cost, DistMatrix, Graph, NodeId, Tree, TreeIx};
use landmarks::LandmarkHierarchy;
use sim::{GroundTruth, RouteTrace, Router, StretchStats};
use treeroute::cover_router::{CoverOutcome, CoverTreeRouter};
use treeroute::laing::{ErrorReportingTree, SearchOutcome};

/// Ablation switch (experiment A1): disable one side of the
/// sparse/dense decomposition to show why the paper needs both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForceMode {
    /// Treat every level as sparse (landmark trees only). Storage
    /// blows up: the S-set budgets must absorb dense neighborhoods.
    AllSparse,
    /// Treat every level as dense (cover trees only). Delivery breaks:
    /// sparse levels' targets may not participate at the search scale.
    AllDense,
}

/// How the landmark hierarchy is constructed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HierarchySource {
    /// Randomized sampling with per-instance Claims 1–2 verification
    /// and re-seeding (§2.3's construction, the default).
    #[default]
    SampledVerified,
    /// The deterministic greedy hitting-set construction
    /// ([`landmarks::greedy_hierarchy`]) — the effective counterpart of
    /// the paper's derandomization remark. Slower to build; use on
    /// moderate n.
    Greedy,
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchemeParams {
    /// The space-stretch trade-off parameter `k ≥ 1`.
    pub k: usize,
    /// Seed for the landmark hierarchy and the tree hash functions.
    pub seed: u64,
    /// Re-sampling attempts for a Claims-1/2-verified hierarchy.
    pub landmark_attempts: u32,
    /// Extra S-set slots beyond the instance-tuned requirement (margin
    /// against the tie-break edge; ≥ 1 recommended).
    pub s_margin: usize,
    /// Ablation override (None = the paper's decomposition).
    pub force_mode: Option<ForceMode>,
    /// Landmark construction: randomized-verified or deterministic.
    pub hierarchy: HierarchySource,
}

impl SchemeParams {
    /// Defaults: verified sampling with 16 attempts, margin 2.
    pub fn new(k: usize, seed: u64) -> Self {
        SchemeParams {
            k,
            seed,
            landmark_attempts: 16,
            s_margin: 2,
            force_mode: None,
            hierarchy: HierarchySource::default(),
        }
    }

    /// Builder-style ablation switch.
    pub fn with_force_mode(mut self, mode: ForceMode) -> Self {
        self.force_mode = Some(mode);
        self
    }

    /// Builder-style deterministic-landmark switch.
    pub fn with_greedy_landmarks(mut self) -> Self {
        self.hierarchy = HierarchySource::Greedy;
        self
    }
}

/// Per-node storage split by component (experiment T2).
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageBreakdown {
    /// Level plans: dense flags, ranges, centers, b-values, root ids.
    pub plans_bits: u64,
    /// Sparse machinery: τ(T(c), v) over landmark trees containing v.
    pub landmark_bits: u64,
    /// Dense machinery: φ(T, v) over cover trees containing v.
    pub cover_bits: u64,
}

impl StorageBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.plans_bits + self.landmark_bits + self.cover_bits
    }
}

/// Per-(node, level) routing plan.
#[derive(Clone, Copy, Debug)]
struct LevelPlan {
    /// Dense or sparse strategy for this level.
    dense: bool,
    /// The range `a(u, i)` (the dense strategy's scale).
    a: u32,
    /// Sparse: the center `c(u, i)` (host id). Dense: unused.
    center: u32,
    /// Sparse: the bounded-search level `b(u, i)`.
    b: u8,
}

/// A landmark tree `T(c)` with the Lemma 4 scheme attached.
struct CenterTree {
    ert: ErrorReportingTree,
    /// host node id -> tree index (u32::MAX when absent).
    ix_of: Vec<u32>,
}

/// All cover trees of one scale `i` (over the subgraph `G_i`).
struct ScaleCover {
    routers: Vec<CoverEntry>,
    /// host node id -> index of its home router (u32::MAX outside G_i).
    home: Vec<u32>,
}

/// One cover tree with the Lemma 7 scheme attached.
struct CoverEntry {
    router: CoverTreeRouter,
    /// host node id -> tree index.
    ix: HashMap<u32, TreeIx>,
}

/// Diagnostics accumulated during preprocessing (experiment F2 reads
/// these; violations should be zero on verified hierarchies).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// (u, i, v) triples where Lemma 3 failed: `v ∈ E(u,i)` but the
    /// center's tree does not contain `v`.
    pub lemma3_violations: usize,
    /// Sparse (u, i, v) membership triples checked.
    pub lemma3_checked: usize,
    /// Instance-tuned S-set budget per landmark level.
    pub s_budgets: Vec<usize>,
    /// Number of distinct centers (= landmark trees built).
    pub num_center_trees: usize,
    /// Number of scales with cover collections.
    pub num_scales: usize,
    /// Total cover trees across scales.
    pub num_cover_trees: usize,
}

/// The scale-free name-independent routing scheme of Theorem 1.
pub struct Scheme {
    g: Graph,
    params: SchemeParams,
    dec: Decomposition,
    hier: LandmarkHierarchy,
    plans: Vec<Vec<LevelPlan>>,
    center_trees: HashMap<u32, CenterTree>,
    scale_covers: HashMap<u32, ScaleCover>,
    stats: BuildStats,
}

impl Scheme {
    /// Build the scheme, computing APSP internally.
    pub fn build(g: Graph, params: SchemeParams) -> Self {
        let d = apsp(&g);
        Self::build_with_matrix(g, &d, params)
    }

    /// Build the scheme reusing a precomputed distance matrix (the
    /// matrix is used for *preprocessing only*; routing reads only the
    /// constructed per-node structures).
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, params: SchemeParams) -> Self {
        assert!(params.k >= 1);
        assert!(d.connected(), "the scheme requires a connected graph");
        let n = g.n();
        let k = params.k;
        let dec = Decomposition::build(d, k);
        let hier = match params.hierarchy {
            HierarchySource::SampledVerified => {
                LandmarkHierarchy::sample_verified(d, k, params.seed, params.landmark_attempts)
            }
            HierarchySource::Greedy => landmarks::greedy_hierarchy(d, k),
        };
        let mut stats = BuildStats::default();

        // ---- per-(u, i) classification and centers -------------------
        let mut plans: Vec<Vec<LevelPlan>> = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let u_id = NodeId(u);
            let mut row = Vec::with_capacity(k);
            for i in 0..k {
                let a = dec.a(u_id, i);
                let dense = match params.force_mode {
                    None => dec.is_dense(u_id, i),
                    Some(ForceMode::AllDense) => true,
                    Some(ForceMode::AllSparse) => false,
                };
                let center =
                    if dense { u32::MAX } else { hier.center(d, u_id, dec.ball_radius(u_id, i)).0 };
                row.push(LevelPlan { dense, a, center, b: 1 });
            }
            plans.push(row);
        }

        // ---- instance-tuned S budgets (see DESIGN.md) ----------------
        // sorted_levels[v][l] = C_l members ordered by (d(v,·), id).
        let sorted_levels: Vec<Vec<Vec<(u64, u32)>>> = (0..n as u32)
            .map(|v| {
                let row = d.row(NodeId(v));
                (0..k)
                    .map(|l| {
                        let mut m: Vec<(u64, u32)> =
                            hier.level(l).iter().map(|&c| (row[c as usize], c)).collect();
                        m.sort_unstable();
                        m
                    })
                    .collect()
            })
            .collect();
        let position = |v: u32, l: usize, c: u32| -> usize {
            let key = (d.d(NodeId(v), NodeId(c)), c);
            sorted_levels[v as usize][l].partition_point(|&e| e < key)
        };
        let mut budgets = vec![1usize; k];
        for u in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                let plan = plans[u as usize][i];
                if plan.dense {
                    continue;
                }
                let c = plan.center;
                let l = hier.rank(NodeId(c));
                for v in dec.e_members(d, NodeId(u), i) {
                    let pos = position(v, l, c);
                    budgets[l] = budgets[l].max(pos + 1 + params.s_margin);
                }
            }
        }
        // Never exceed the paper's budget (it is the proven bound).
        let paper_budget = hier.s_budget();
        for b in &mut budgets {
            *b = (*b).min(paper_budget);
        }
        stats.s_budgets = budgets.clone();

        // ---- landmark trees for the distinct centers -----------------
        // membership: v stores τ(T(c), v) iff c ∈ S(v) under the tuned
        // budgets, i.e. c is among the first budgets[rank(c)] members of
        // v's sorted C_{rank(c)} list.
        let mut centers: Vec<u32> =
            plans.iter().flatten().filter(|p| !p.dense).map(|p| p.center).collect();
        centers.sort_unstable();
        centers.dedup();
        let in_s = |v: u32, c: u32| -> bool {
            let l = hier.rank(NodeId(c));
            position(v, l, c) < budgets[l]
        };
        let sigma = graphkit::ids::nth_root_ceil(n as u64, k as u32).max(2);
        let center_list: Vec<(u32, CenterTree)> = graphkit::metrics::par_per_node(&g, |u| {
            // par_per_node iterates all nodes; skip non-centers cheaply.
            if centers.binary_search(&u.0).is_err() {
                return None;
            }
            let c = u.0;
            let members: Vec<NodeId> = (0..n as u32).filter(|&v| in_s(v, c)).map(NodeId).collect();
            let sp = dijkstra::dijkstra(&g, NodeId(c));
            let tree = Tree::from_sssp(&g, &sp, members);
            let ix_of = tree.index_map(n);
            let ert = ErrorReportingTree::with_sigma(
                tree,
                k,
                sigma,
                params.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            Some((c, CenterTree { ert, ix_of }))
        })
        .into_iter()
        .flatten()
        .collect();
        let center_trees: HashMap<u32, CenterTree> = center_list.into_iter().collect();
        stats.num_center_trees = center_trees.len();

        // ---- b(u, i) + Lemma 3 verification --------------------------
        for u in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                let plan = plans[u as usize][i];
                if plan.dense {
                    continue;
                }
                let ct = &center_trees[&plan.center];
                let mut b = 1usize;
                for v in dec.e_members(d, NodeId(u), i) {
                    stats.lemma3_checked += 1;
                    let ix = ct.ix_of[v as usize];
                    if ix == u32::MAX {
                        stats.lemma3_violations += 1;
                        b = k; // fall back to the deepest search
                        continue;
                    }
                    let rank = ct.ert.rank(ix) as usize;
                    b = b.max(ct.ert.naming().level_of_rank(rank).max(1));
                }
                plans[u as usize][i].b = b.min(k).max(1) as u8;
            }
        }

        // ---- cover trees per dense scale -----------------------------
        let mut scales: Vec<u32> =
            plans.iter().flatten().filter(|p| p.dense).map(|p| p.a).collect();
        scales.sort_unstable();
        scales.dedup();
        let mut scale_covers: HashMap<u32, ScaleCover> = HashMap::new();
        for &s in &scales {
            let members: Vec<u32> =
                (0..n as u32).filter(|&v| dec.in_extended_range(NodeId(v), s)).collect();
            let sub = induced_subgraph(&g, &members);
            let rho = 1u64
                .checked_shl(s)
                .expect("scale exponent exceeds u64 — weights out of supported range");
            let cover = covers::build_cover(&sub.graph, k, rho);
            let mut home = vec![u32::MAX; n];
            for (local, &t) in cover.home.iter().enumerate() {
                home[sub.to_host[local] as usize] = t;
            }
            let routers: Vec<CoverEntry> = cover
                .trees
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let host_tree = remap_tree(t, &sub.to_host);
                    let ix: HashMap<u32, TreeIx> = host_tree
                        .graph_ids()
                        .iter()
                        .enumerate()
                        .map(|(i, &gid)| (gid, i as TreeIx))
                        .collect();
                    let router = CoverTreeRouter::new(
                        host_tree,
                        sigma,
                        params.seed ^ ((s as u64) << 32 | ti as u64),
                    );
                    CoverEntry { router, ix }
                })
                .collect();
            stats.num_cover_trees += routers.len();
            scale_covers.insert(s, ScaleCover { routers, home });
        }
        stats.num_scales = scale_covers.len();

        Scheme { g, params, dec, hier, plans, center_trees, scale_covers, stats }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Construction parameters.
    pub fn params(&self) -> &SchemeParams {
        &self.params
    }

    /// Preprocessing diagnostics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The decomposition (exposed for experiments F1/F2/A1).
    pub fn decomposition(&self) -> &Decomposition {
        &self.dec
    }

    /// The landmark hierarchy (exposed for experiments C1/C2).
    pub fn hierarchy(&self) -> &LandmarkHierarchy {
        &self.hier
    }

    /// Route a message (§3.7): phases `i = 0..k`, each using the dense
    /// or sparse strategy of level `i`, until the destination is found.
    pub fn route_message(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost: Cost = 0;
        for i in 0..self.params.k {
            let plan = self.plans[src.idx()][i];
            let found = if plan.dense {
                self.dense_phase(src, dst, plan, &mut path, &mut cost)
            } else {
                self.sparse_phase(src, dst, plan, &mut path, &mut cost)
            };
            if found {
                return RouteTrace { path, cost, delivered: true };
            }
            debug_assert_eq!(*path.last().unwrap(), src, "phase must end at the source");
        }
        RouteTrace { path, cost, delivered: false }
    }

    /// Dense strategy (§3.6): look up `dst` in the home cover tree
    /// `W(u, i)` at scale `a(u, i)`. Returns true when delivered.
    fn dense_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        let sc = &self.scale_covers[&plan.a];
        let home = sc.home[src.idx()];
        debug_assert_ne!(home, u32::MAX, "source must participate at its own scale");
        let entry = &sc.routers[home as usize];
        let from = entry.ix[&src.0];
        let (outcome, tpath) = entry.router.route(from, dst);
        append_tree_path(entry.router.labeled().tree(), &tpath, path);
        *cost += outcome.cost();
        matches!(outcome, CoverOutcome::Found { .. })
    }

    /// Sparse strategy (§3.3): climb to the center `c(u, i)`, run a
    /// `b(u, i)`-bounded search on `T(c(u, i))`, and come back on a miss.
    fn sparse_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        let ct = &self.center_trees[&plan.center];
        let tree = ct.ert.labeled().tree();
        let src_ix = ct.ix_of[src.idx()];
        debug_assert_ne!(src_ix, u32::MAX, "source must be in its own center's tree");
        // Climb to the root along tree parents.
        let mut climb = vec![src_ix];
        let mut at = src_ix;
        while let Some(p) = tree.parent(at) {
            *cost += tree.parent_weight(at);
            at = p;
            climb.push(at);
        }
        append_tree_path(tree, &climb, path);
        // Bounded search from the root.
        let (outcome, tpath) = ct.ert.search(dst, plan.b as usize);
        append_tree_path(tree, &tpath, path);
        *cost += outcome.cost();
        match outcome {
            SearchOutcome::Found { .. } => true,
            SearchOutcome::NotFound { .. } => {
                // Back down to the source for the next phase.
                for &t in climb.iter().rev().skip(1) {
                    *cost += tree.parent_weight(t);
                    path.push(tree.graph_id(t));
                }
                false
            }
        }
    }

    /// Evaluate this scheme over `pairs` with the parallel engine
    /// (`threads` = 0 → available parallelism), against any
    /// [`GroundTruth`] — the dense matrix used at build time or an
    /// on-demand truth for larger workloads. Results are bit-identical
    /// to sequential [`sim::evaluate`].
    pub fn evaluate(
        &self,
        truth: &(dyn GroundTruth + Sync),
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> StretchStats {
        sim::evaluate_parallel(&self.g, truth, self, pairs, threads)
    }

    /// Storage bits at node `v`: level plans, landmark-tree state
    /// `τ(T(c), v)` for every tree containing `v`, and cover-tree state
    /// `φ(T, v)` plus the home-root pointer for every scale in `R(v)`.
    pub fn storage_bits(&self, v: NodeId) -> u64 {
        self.storage_breakdown(v).total()
    }

    /// Storage bits at `v`, split by component (experiment T2).
    pub fn storage_breakdown(&self, v: NodeId) -> StorageBreakdown {
        let n = self.g.n();
        let id = bits_for_node(n);
        let mut b = StorageBreakdown {
            // Plans: dense flag + range + center + b per level.
            plans_bits: self.params.k as u64
                * (1 + bits_for_universe(self.dec.log_delta() as u64 + 1)
                    + id
                    + bits_for_universe(self.params.k as u64 + 1)),
            ..Default::default()
        };
        for ct in self.center_trees.values() {
            let ix = ct.ix_of[v.idx()];
            if ix != u32::MAX {
                b.landmark_bits += id + ct.ert.node_bits(ix); // center id + τ
            }
        }
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                if let Some(&ix) = entry.ix.get(&v.0) {
                    b.cover_bits += id + entry.router.node_bits(ix); // root id + φ
                }
            }
        }
        b
    }

    /// Theorem 1's per-node bound in explicit form (with the Lemma 11
    /// exponent; see DESIGN.md): `k² · n^{3/k} · log³ n` bits, constant
    /// 64.
    pub fn theorem1_bound(&self) -> f64 {
        let n = self.g.n() as f64;
        let k = self.params.k as f64;
        64.0 * k * k * n.powf(3.0 / k) * n.log2().powi(3)
    }

    /// Worst-case header size in bits — the paper's `Õ(1)` claim made
    /// concrete. A message carries: the destination id, the phase index,
    /// the search round, and (while walking a tree) the largest label of
    /// any tree in the scheme plus a return label for error reporting —
    /// O(log² n) total.
    pub fn header_bits_bound(&self) -> u64 {
        let n = self.g.n();
        let id = bits_for_node(n);
        let phase = bits_for_universe(self.params.k as u64 + 1);
        let mut max_label = 0u64;
        for ct in self.center_trees.values() {
            let lt = ct.ert.labeled();
            for t in 0..lt.tree().size() as u32 {
                max_label = max_label.max(lt.label_bits(t));
            }
        }
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                let lt = entry.router.labeled();
                for t in 0..lt.tree().size() as u32 {
                    max_label = max_label.max(lt.label_bits(t));
                }
            }
        }
        id + 2 * phase + 2 * max_label
    }
}

/// Relabel a tree's node ids through a host map (used to lift subgraph
/// cover trees into host-graph ids).
fn remap_tree(t: &Tree, to_host: &[u32]) -> Tree {
    let ids: Vec<u32> = t.graph_ids().iter().map(|&l| to_host[l as usize]).collect();
    let parents: Vec<u32> = (0..t.size() as u32).map(|x| t.parent(x).unwrap_or(u32::MAX)).collect();
    let weights: Vec<u64> = (0..t.size() as u32).map(|x| t.parent_weight(x)).collect();
    Tree::from_parents(ids, parents, weights)
}

/// Append a tree-index walk to a host-id path, skipping the first node
/// (it must equal the path's current tail).
fn append_tree_path(tree: &Tree, tpath: &[TreeIx], path: &mut Vec<NodeId>) {
    if tpath.is_empty() {
        return;
    }
    debug_assert_eq!(
        tree.graph_id(tpath[0]),
        *path.last().unwrap(),
        "tree walk must continue from the current node"
    );
    for &t in &tpath[1..] {
        path.push(tree.graph_id(t));
    }
}

// The parallel evaluator shards pairs across threads that all borrow
// the scheme; keep the structure free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Scheme>();
};

impl Router for Scheme {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        self.route_message(src, dst)
    }

    fn name(&self) -> &str {
        "agm-scale-free"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        self.storage_bits(v)
    }
}
