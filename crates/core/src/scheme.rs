//! The full AGM SPAA'06 routing scheme (§3): preprocessing, the
//! iterative phase router, and bit-level storage accounting.
//!
//! The preprocessing pipeline is flat and parallel end-to-end: every
//! per-node phase (classification, S budgets, membership, `b(u,i)`)
//! and every per-tree phase (center trees, cover trees) fans across
//! threads via [`graphkit::metrics::par_chunks`] with deterministic
//! chunk-ordered merges, so a build is bit-identical at any thread
//! count (asserted by `tests/thread_parity.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use decomposition::Decomposition;
use graphkit::bits::{bits_for_node, bits_for_universe};
use graphkit::ids::octave_radius;
use graphkit::{
    apsp, dijkstra, induced_subgraph, wire, Cost, DijkstraScratch, DistMatrix, Graph, NodeId, Tree,
    TreeIx, TreeScratch, INFINITY,
};
use landmarks::{LandmarkDistances, LandmarkHierarchy};
use sim::{GroundTruth, RouteTrace, Router, StretchStats};
use treeroute::cover_router::{CoverOutcome, CoverTreeRouter};
use treeroute::laing::{ErrorReportingTree, SearchOutcome};

use crate::center_store::{CenterStore, CenterTree, SpillWriter};

/// Ablation switch (experiment A1): disable one side of the
/// sparse/dense decomposition to show why the paper needs both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForceMode {
    /// Treat every level as sparse (landmark trees only). Storage
    /// blows up: the S-set budgets must absorb dense neighborhoods.
    AllSparse,
    /// Treat every level as dense (cover trees only). Delivery breaks:
    /// sparse levels' targets may not participate at the search scale.
    AllDense,
}

/// How the landmark hierarchy is constructed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HierarchySource {
    /// Randomized sampling with per-instance Claims 1–2 verification
    /// and re-seeding (§2.3's construction, the default).
    #[default]
    SampledVerified,
    /// The deterministic greedy hitting-set construction
    /// ([`landmarks::greedy_hierarchy`]) — the effective counterpart of
    /// the paper's derandomization remark. Slower to build; use on
    /// moderate n.
    Greedy,
}

/// How the instance-tuned S-set budgets are resolved (see DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SBudgetMode {
    /// One budget per landmark level, the max requirement over all
    /// nodes (the historical behavior, and the default).
    #[default]
    Global,
    /// Each node `v` keeps, per level, only the slots *its own*
    /// membership constraints require — strictly smaller S sets (and
    /// landmark trees) wherever requirements are skewed.
    PerNode,
    /// Compute per-node requirements, then flatten each level to its
    /// max over nodes — by construction identical to
    /// [`SBudgetMode::Global`] (the parity special case that
    /// `tests/budget_parity.rs` asserts end to end).
    PerNodeUniform,
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchemeParams {
    /// The space-stretch trade-off parameter `k ≥ 1`.
    pub k: usize,
    /// Seed for the landmark hierarchy and the tree hash functions.
    pub seed: u64,
    /// Re-sampling attempts for a Claims-1/2-verified hierarchy.
    pub landmark_attempts: u32,
    /// Extra S-set slots beyond the instance-tuned requirement (margin
    /// against the tie-break edge; ≥ 1 recommended).
    pub s_margin: usize,
    /// Ablation override (None = the paper's decomposition).
    pub force_mode: Option<ForceMode>,
    /// Landmark construction: randomized-verified or deterministic.
    pub hierarchy: HierarchySource,
    /// Global or per-node S-set budgets.
    pub s_budget_mode: SBudgetMode,
    /// Stream completed center trees to an unlinked temp file instead
    /// of holding them all resident — trades route-time reloads for a
    /// build whose peak memory excludes the Õ(n^{1+1/k}) tree state.
    pub spill: bool,
    /// Retain the build-time state (`RepairState`) that
    /// [`Scheme::repair`] needs to patch the scheme in place after
    /// graph deltas — old membership lists and per-center label sizes,
    /// ~O(total members) extra resident memory. Off by default so the
    /// construction-scale memory tripwires are unaffected; a scheme
    /// built without it (or loaded from a snapshot, which never
    /// serializes repair state) falls back to a full rebuild on the
    /// first repair call.
    pub repairable: bool,
}

impl SchemeParams {
    /// Defaults: verified sampling with 16 attempts, margin 2, global
    /// budgets, all trees resident.
    pub fn new(k: usize, seed: u64) -> Self {
        SchemeParams {
            k,
            seed,
            landmark_attempts: 16,
            s_margin: 2,
            force_mode: None,
            hierarchy: HierarchySource::default(),
            s_budget_mode: SBudgetMode::default(),
            spill: false,
            repairable: false,
        }
    }

    /// Builder-style ablation switch.
    pub fn with_force_mode(mut self, mode: ForceMode) -> Self {
        self.force_mode = Some(mode);
        self
    }

    /// Builder-style deterministic-landmark switch.
    pub fn with_greedy_landmarks(mut self) -> Self {
        self.hierarchy = HierarchySource::Greedy;
        self
    }

    /// Builder-style S-budget mode switch.
    pub fn with_s_budget_mode(mut self, mode: SBudgetMode) -> Self {
        self.s_budget_mode = mode;
        self
    }

    /// Builder-style spill switch.
    pub fn with_spill(mut self) -> Self {
        self.spill = true;
        self
    }

    /// Builder-style incremental-repair switch.
    pub fn with_repair(mut self) -> Self {
        self.repairable = true;
        self
    }
}

/// Per-node storage split by component (experiment T2).
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageBreakdown {
    /// Level plans: dense flags, ranges, centers, b-values, root ids.
    pub plans_bits: u64,
    /// Sparse machinery: τ(T(c), v) over landmark trees containing v.
    pub landmark_bits: u64,
    /// Dense machinery: φ(T, v) over cover trees containing v.
    pub cover_bits: u64,
}

impl StorageBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.plans_bits + self.landmark_bits + self.cover_bits
    }
}

/// Per-(node, level) routing plan.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LevelPlan {
    /// Dense or sparse strategy for this level.
    pub(crate) dense: bool,
    /// The range `a(u, i)` (the dense strategy's scale).
    pub(crate) a: u32,
    /// Sparse: the center `c(u, i)` (host id). Dense: unused.
    pub(crate) center: u32,
    /// Sparse: the bounded-search level `b(u, i)`.
    pub(crate) b: u8,
}

/// Resolved S-set budgets: global per-level values, or a flat
/// `n × k` per-node table.
enum Budgets {
    /// `budget[l]` applies to every node.
    Global(Vec<usize>),
    /// `per[v·k + l]` — node `v`'s slot count at level `l`.
    PerNode { per: Vec<u32>, k: usize },
}

impl Budgets {
    /// The budget of node `v` at landmark level `l`.
    #[inline]
    fn of(&self, v: u32, l: usize) -> usize {
        match self {
            Budgets::Global(b) => b[l],
            Budgets::PerNode { per, k } => per[v as usize * k + l] as usize,
        }
    }
}

/// What the `b(u,i)` pass needs from one finished center tree, without
/// keeping (or reloading) the tree itself: each member's bounded-search
/// level, sorted by host id.
pub(crate) struct BuildIndex {
    /// `(host id, search level)`, sorted by id.
    levels: Vec<(u32, u8)>,
    /// Max over `levels` — lets a whole-graph `E(u,i)` read `b(u,i)`
    /// off the tree in O(1).
    max_search_level: u8,
}

/// Per-center membership lists in CSR form: center `ci` (an index into
/// the sorted distinct-centers array) owns `items[off[ci]..off[ci+1]]`
/// as `(v, d(v, c))` with `v` ascending.
pub(crate) struct CenterMembers {
    off: Vec<usize>,
    pub(crate) items: Vec<(u32, Cost)>,
}

impl CenterMembers {
    #[inline]
    pub(crate) fn members(&self, ci: usize) -> &[(u32, Cost)] {
        &self.items[self.off[ci]..self.off[ci + 1]]
    }
}

/// Build-time state retained (under [`SchemeParams::repairable`]) so
/// [`Scheme::repair`] can tell which center trees a delta batch left
/// untouched and keep the bit-exact storage accounting without
/// re-deriving the whole scheme. Everything else repair needs is
/// recomputed fresh on the mutated graph (see DESIGN.md §"Churn &
/// incremental repair").
pub(crate) struct RepairState {
    /// The distinct centers of the previous build, ascending.
    pub(crate) centers: Vec<u32>,
    /// Their membership lists (CSR aligned with `centers`).
    pub(crate) members: CenterMembers,
    /// Per-center max routing-label bits — lets repair maintain
    /// `max_center_label_bits` exactly when trees are added/removed.
    pub(crate) center_labels: HashMap<u32, u64>,
}

/// How a sparse level's region `E(u, i)` is enumerated during
/// construction.
pub(crate) enum EScope {
    /// `a(u,i+1)` hit the `⌈log₂Δ⌉+3` cap, so `E(u,i) = V` exactly
    /// (see [`Decomposition::e_is_global`]); loops over it collapse
    /// to per-center aggregates instead of Θ(n) enumerations.
    Global,
    /// Explicit members as `(v, d(u,v))`, from a dense row or a
    /// radius-bounded Dijkstra.
    Local(Vec<(u32, Cost)>),
}

/// Where preprocessing reads distances from: the dense matrix (small
/// n, exact parity oracle) or the matrix-free sources — landmark
/// columns plus per-node bounded Dijkstras.
pub(crate) enum BuildSource<'a> {
    Dense {
        d: &'a DistMatrix,
        /// `sorted[v][l]` = `C_l` as `(d(v,·), id)`, sorted — the
        /// position oracle for S budgets and S membership.
        sorted: Vec<Vec<Vec<(Cost, u32)>>>,
    },
    OnDemand {
        ld: LandmarkDistances,
    },
}

impl BuildSource<'_> {
    /// The center `c(u, r)` (identical across sources).
    fn center(&self, hier: &LandmarkHierarchy, u: NodeId, r: Cost) -> u32 {
        match self {
            BuildSource::Dense { d, .. } => hier.center(d, u, r).0,
            BuildSource::OnDemand { ld } => ld.center(u, r).0,
        }
    }

    /// Position of center `c` (rank `l`) in `v`'s `(distance, id)`
    /// order over `C_l`. The on-demand source serves `l ≥ 1` from the
    /// landmark columns; level-0 positions come from the batched
    /// bounded-Dijkstra pass (`pos0`), so this must not be called for
    /// `l = 0` there.
    fn position(&self, v: NodeId, l: usize, c: u32) -> usize {
        match self {
            BuildSource::Dense { d, sorted } => {
                let key = (d.d(v, NodeId(c)), c);
                sorted[v.idx()][l].partition_point(|&e| e < key)
            }
            BuildSource::OnDemand { ld } => ld.position(v, l, c),
        }
    }
}

/// All cover trees of one scale `i` (over the subgraph `G_i`).
pub(crate) struct ScaleCover {
    pub(crate) routers: Vec<CoverEntry>,
    /// host node id -> index of its home router (u32::MAX outside G_i).
    pub(crate) home: Vec<u32>,
}

/// One cover tree with the Lemma 7 scheme attached.
pub(crate) struct CoverEntry {
    pub(crate) router: CoverTreeRouter,
    /// host node id -> tree index.
    pub(crate) ix: HashMap<u32, TreeIx>,
}

impl CoverEntry {
    /// Wrap a router, deriving the host-id lookup from its tree.
    pub(crate) fn from_router(router: CoverTreeRouter) -> Self {
        let ix: HashMap<u32, TreeIx> = router
            .labeled()
            .tree()
            .graph_ids()
            .iter()
            .enumerate()
            .map(|(i, &gid)| (gid, i as TreeIx))
            .collect();
        CoverEntry { router, ix }
    }
}

/// Diagnostics accumulated during preprocessing (experiment F2 reads
/// these; violations should be zero on verified hierarchies).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// (u, i, v) triples where Lemma 3 failed: `v ∈ E(u,i)` but the
    /// center's tree does not contain `v`.
    pub lemma3_violations: usize,
    /// Sparse (u, i, v) membership triples checked.
    pub lemma3_checked: usize,
    /// Effective S-set budget per landmark level (per-node modes
    /// report each level's max over nodes).
    pub s_budgets: Vec<usize>,
    /// Number of distinct centers (= landmark trees built).
    pub num_center_trees: usize,
    /// Number of scales with cover collections.
    pub num_scales: usize,
    /// Total cover trees across scales.
    pub num_cover_trees: usize,
    /// Total landmark-tree memberships (Σ over centers of tree size).
    pub total_members: usize,
    /// Wall-clock seconds per construction phase, in pipeline order —
    /// the machine-readable breakdown behind BENCH_construction.json.
    pub phase_seconds: Vec<(String, f64)>,
}

/// The scale-free name-independent routing scheme of Theorem 1.
pub struct Scheme {
    pub(crate) g: Graph,
    pub(crate) params: SchemeParams,
    pub(crate) dec: Decomposition,
    pub(crate) hier: LandmarkHierarchy,
    pub(crate) plans: Vec<Vec<LevelPlan>>,
    pub(crate) center_store: CenterStore,
    /// Per-node landmark-component storage bits (center id + τ over
    /// containing trees), accumulated during the fused build so that
    /// accounting never reloads spilled trees.
    pub(crate) landmark_bits: Vec<u64>,
    /// Largest routing label over all center trees (header accounting).
    pub(crate) max_center_label_bits: u64,
    pub(crate) scale_covers: HashMap<u32, ScaleCover>,
    pub(crate) stats: BuildStats,
    /// Build-time state for [`Scheme::repair`]; `None` unless built
    /// with [`SchemeParams::repairable`] (snapshots never carry it).
    pub(crate) repair_state: Option<RepairState>,
}

impl Scheme {
    /// Build the scheme, computing APSP internally.
    pub fn build(g: Graph, params: SchemeParams) -> Self {
        let d = apsp(&g);
        Self::build_with_matrix(g, &d, params)
    }

    /// Build the scheme reusing a precomputed distance matrix (the
    /// matrix is used for *preprocessing only*; routing reads only the
    /// constructed per-node structures).
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, params: SchemeParams) -> Self {
        assert!(params.k >= 1);
        assert!(d.connected(), "the scheme requires a connected graph");
        let k = params.k;
        let dec = Decomposition::build(d, k);
        let hier = match params.hierarchy {
            HierarchySource::SampledVerified => {
                LandmarkHierarchy::sample_verified(d, k, params.seed, params.landmark_attempts)
            }
            HierarchySource::Greedy => landmarks::greedy_hierarchy(d, k),
        };
        // sorted[v][l] = C_l members ordered by (d(v,·), id).
        // merge: per-node lists, flattened in chunk (= node id) order.
        let sorted: Vec<Vec<Vec<(u64, u32)>>> = graphkit::metrics::par_chunks(g.n(), |nodes| {
            nodes
                .map(|v| {
                    let row = d.row(NodeId(v as u32));
                    (0..k)
                        .map(|l| {
                            let mut m: Vec<(u64, u32)> =
                                hier.level(l).iter().map(|&c| (row[c as usize], c)).collect();
                            m.sort_unstable();
                            m
                        })
                        .collect()
                })
                .collect::<Vec<Vec<Vec<(u64, u32)>>>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let scopes = Self::dense_scopes(&g, d, &dec, &params);
        Self::assemble(g, params, dec, hier, BuildSource::Dense { d, sorted }, scopes)
    }

    /// Build the scheme without ever materializing an n×n matrix — the
    /// Theorem 1 construction at 10⁵+ nodes.
    ///
    /// Substitutions relative to [`Scheme::build_with_matrix`]
    /// (documented in DESIGN.md §"Matrix-free construction"; output is
    /// parity-tested identical):
    ///
    /// * the decomposition's per-node ranges come from size-capped
    ///   Dijkstras ([`Decomposition::build_on_demand_with_diameter`]),
    ///   seeded with the exact diameter from
    ///   [`graphkit::diameter_matrix_free`];
    /// * the landmark side runs one full Dijkstra per rank-≥1 landmark
    ///   ([`LandmarkDistances`]) and serves Claims verification,
    ///   centers, rank positions, and the instance-tuned S budgets
    ///   from those columns;
    /// * `E(u,i)` balls come from radius-bounded Dijkstras, and levels
    ///   whose range hit the `⌈log₂Δ⌉+3` cap are handled as exact
    ///   whole-graph scopes so no Θ(n) per-node enumeration happens;
    /// * level-0 (`C_0 = V`) S-sets and positions come from per-node
    ///   size-capped Dijkstras instead of full sorted rows.
    ///
    /// Requires the default [`HierarchySource::SampledVerified`] (the
    /// greedy construction is inherently matrix-bound) and strictly
    /// positive edge weights (every generator in this workspace).
    pub fn build_on_demand(g: Graph, params: SchemeParams) -> Self {
        assert!(params.k >= 1);
        assert!(
            params.hierarchy == HierarchySource::SampledVerified,
            "on-demand construction supports the sampled-verified hierarchy only"
        );
        assert!(
            dijkstra::dijkstra(&g, NodeId(0)).dist.iter().all(|&x| x != INFINITY),
            "the scheme requires a connected graph"
        );
        let diameter = graphkit::diameter_matrix_free(&g);
        let dec = Decomposition::build_on_demand_with_diameter(&g, params.k, diameter);
        let (hier, ld) = LandmarkHierarchy::sample_verified_on_demand(
            &g,
            params.k,
            params.seed,
            params.landmark_attempts,
            diameter,
        );
        Self::build_on_demand_parts(g, params, dec, hier, ld)
    }

    /// The tail of [`Scheme::build_on_demand`] once the decomposition
    /// and the verified hierarchy (with its landmark columns) exist —
    /// shared with the repair path, which computes those parts itself
    /// on the mutated graph and falls back here when the hierarchy
    /// shape changed.
    pub(crate) fn build_on_demand_parts(
        g: Graph,
        params: SchemeParams,
        dec: Decomposition,
        hier: LandmarkHierarchy,
        ld: LandmarkDistances,
    ) -> Self {
        let scopes = Self::on_demand_scopes(&g, &dec, &params, g.n());
        Self::assemble(g, params, dec, hier, BuildSource::OnDemand { ld }, scopes)
    }

    /// Per-(u, i) `E(u,i)` scopes from dense rows (`None` = dense
    /// level, no sparse region), parallel over node chunks.
    fn dense_scopes(
        g: &Graph,
        d: &DistMatrix,
        dec: &Decomposition,
        params: &SchemeParams,
    ) -> Vec<Vec<Option<EScope>>> {
        let n = g.n();
        // merge: per-node scope rows, flattened in chunk (= node id) order.
        graphkit::metrics::par_chunks(n, |nodes| {
            nodes
                .map(|u| {
                    let u_id = NodeId(u as u32);
                    let row = d.row(u_id);
                    (0..params.k)
                        .map(|i| {
                            if level_is_dense(dec, u_id, i, params) {
                                None
                            } else if dec.e_is_global(u_id, i) {
                                Some(EScope::Global)
                            } else {
                                let radius = dec.e_radius(u_id, i);
                                Some(EScope::Local(
                                    row.iter()
                                        .enumerate()
                                        .filter(|&(_, &dist)| dist != INFINITY && dist <= radius)
                                        .map(|(v, &dist)| (v as u32, dist))
                                        .collect(),
                                ))
                            }
                        })
                        .collect()
                })
                .collect::<Vec<Vec<Option<EScope>>>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Per-(u, i) `E(u,i)` scopes from radius-bounded Dijkstras,
    /// parallel over node chunks with per-worker scratch.
    pub(crate) fn on_demand_scopes(
        g: &Graph,
        dec: &Decomposition,
        params: &SchemeParams,
        n: usize,
    ) -> Vec<Vec<Option<EScope>>> {
        // merge: per-node scope rows, flattened in chunk (= node id) order.
        graphkit::metrics::par_chunks(n, |nodes| {
            let mut scratch = DijkstraScratch::new(n);
            nodes
                .map(|u| {
                    let u = NodeId(u as u32);
                    (0..params.k)
                        .map(|lvl| {
                            if level_is_dense(dec, u, lvl, params) {
                                None
                            } else if dec.e_is_global(u, lvl) {
                                Some(EScope::Global)
                            } else {
                                scratch.run(g, u, dec.e_radius(u, lvl), usize::MAX);
                                let mut members: Vec<(u32, Cost)> =
                                    scratch.settled().iter().map(|&(dist, v)| (v, dist)).collect();
                                members.sort_unstable(); // id order, as the dense rows yield
                                Some(EScope::Local(members))
                            }
                        })
                        .collect()
                })
                .collect::<Vec<Vec<Option<EScope>>>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The shared construction skeleton: classification and centers,
    /// instance-tuned S budgets, center trees with Lemma 4 schemes,
    /// `b(u,i)` with Lemma 3 verification, and cover trees per dense
    /// scale. Every distance it consumes flows through `src` and the
    /// precomputed `scopes`, so the dense and matrix-free paths are
    /// the same algorithm over different storage; every phase fans out
    /// over deterministic chunks and merges in chunk order.
    fn assemble(
        g: Graph,
        params: SchemeParams,
        dec: Decomposition,
        hier: LandmarkHierarchy,
        src: BuildSource<'_>,
        scopes: Vec<Vec<Option<EScope>>>,
    ) -> Self {
        let n = g.n();
        let k = params.k;
        let mut stats = BuildStats::default();
        let mut clock = PhaseClock::start();
        let Prepared { mut plans, centers, members, s_budgets } =
            Self::prepare(&g, &params, &dec, &hier, &src, &scopes, &mut clock);
        stats.s_budgets = s_budgets;

        // ---- fused per-center pipeline -------------------------------
        let bounded = matches!(src, BuildSource::OnDemand { .. });
        // Spill-file creation failing (tmpdir full or unwritable)
        // degrades to the resident store: higher peak memory, same
        // routing.
        let spill = params.spill.then(SpillWriter::create).and_then(Result::ok);
        let jobs: Vec<(u32, &[(u32, Cost)])> =
            centers.iter().enumerate().map(|(ci, &c)| (c, members.members(ci))).collect();
        let TreeBatch { built, bix, lm_bits: landmark_bits, labels } =
            build_center_trees(&g, &params, &jobs, bounded, spill.as_ref());
        drop(jobs);
        let max_center_label_bits = labels.iter().map(|&(_, l)| l).max().unwrap_or(0);
        let center_store = match spill {
            Some(w) => CenterStore::Spilled(w.finish()),
            None => CenterStore::Memory(built.into_iter().collect()),
        };
        stats.num_center_trees = centers.len();
        stats.total_members = members.items.len();
        clock.lap("center_trees", String::new());

        // ---- b(u, i) + Lemma 3 verification --------------------------
        // merge: rows concatenated in chunk (= node id) order; the
        // check counters are sums, which commute.
        let b_shards = graphkit::metrics::par_chunks(n, |nodes| {
            let base = nodes.start;
            let mut out = vec![0u8; nodes.len() * k];
            let mut checked = 0usize;
            let mut violations = 0usize;
            for u in nodes {
                for i in 0..k {
                    let Some(scope) = &scopes[u][i] else { continue };
                    let entry = &bix[&plans[u][i].center];
                    let (b, c, v) = b_for_scope(scope, entry, n, k);
                    out[(u - base) * k + i] = b;
                    checked += c;
                    violations += v;
                }
            }
            (out, checked, violations)
        });
        let mut b_flat = Vec::with_capacity(n * k);
        for (out, checked, violations) in b_shards {
            b_flat.extend(out);
            stats.lemma3_checked += checked;
            stats.lemma3_violations += violations;
        }
        for (u, row) in plans.iter_mut().enumerate() {
            for (i, plan) in row.iter_mut().enumerate() {
                let b = b_flat[u * k + i];
                if b != 0 {
                    plan.b = b;
                }
            }
        }
        drop(bix);
        clock.lap("b_levels", String::new());

        // ---- cover trees per dense scale -----------------------------
        let mut scales: Vec<u32> =
            plans.iter().flatten().filter(|p| p.dense).map(|p| p.a).collect();
        scales.sort_unstable();
        scales.dedup();
        let mut scale_covers: HashMap<u32, ScaleCover> = HashMap::new();
        for &s in &scales {
            let sc = build_scale_cover(&g, &dec, &params, s);
            stats.num_cover_trees += sc.routers.len();
            scale_covers.insert(s, sc);
        }
        stats.num_scales = scale_covers.len();
        clock.lap("covers", String::new());
        stats.phase_seconds = clock.finish();

        let repair_state = params.repairable.then(|| RepairState {
            centers,
            center_labels: labels.into_iter().collect(),
            members,
        });

        Scheme {
            g,
            params,
            dec,
            hier,
            plans,
            center_store,
            landmark_bits,
            max_center_label_bits,
            scale_covers,
            stats,
            repair_state,
        }
    }

    /// Construction phases 1–3 — per-(u, i) classification and centers,
    /// instance-tuned S budgets, and center-tree membership — shared
    /// verbatim between [`Scheme::assemble`] and [`Scheme::repair`]
    /// (which runs them against the mutated graph; their cost is a few
    /// percent of a full build, so repair recomputes rather than
    /// patches them — see DESIGN.md §"Churn & incremental repair").
    pub(crate) fn prepare(
        g: &Graph,
        params: &SchemeParams,
        dec: &Decomposition,
        hier: &LandmarkHierarchy,
        src: &BuildSource<'_>,
        scopes: &[Vec<Option<EScope>>],
        clock: &mut PhaseClock,
    ) -> Prepared {
        let n = g.n();
        let k = params.k;
        // ---- per-(u, i) classification and centers -------------------
        // merge: per-node plan rows, flattened in chunk (= node id) order.
        let plans: Vec<Vec<LevelPlan>> = graphkit::metrics::par_chunks(n, |nodes| {
            nodes
                .map(|u| {
                    let u_id = NodeId(u as u32);
                    (0..k)
                        .map(|i| {
                            let a = dec.a(u_id, i);
                            let dense = level_is_dense(dec, u_id, i, params);
                            let center = if dense {
                                u32::MAX
                            } else {
                                src.center(hier, u_id, dec.ball_radius(u_id, i))
                            };
                            LevelPlan { dense, a, center, b: 1 }
                        })
                        .collect()
                })
                .collect::<Vec<Vec<LevelPlan>>>()
        })
        .into_iter()
        .flatten()
        .collect();

        clock.lap("plans", String::new());
        // ---- instance-tuned S budgets (see DESIGN.md) ----------------
        // Level-0 positions for the on-demand source: batched bounded
        // Dijkstras, one per queried node, covering every (v, center)
        // pair the local scopes produce.
        let pos0 = match src {
            BuildSource::Dense { .. } => HashMap::new(),
            BuildSource::OnDemand { .. } => Self::level0_positions(g, hier, &plans, scopes, n),
        };
        let position_of = |v: u32, l: usize, c: u32| -> usize {
            if l == 0 {
                if let BuildSource::OnDemand { .. } = src {
                    return pos0[&pos0_key(v, c)];
                }
            }
            src.position(NodeId(v), l, c)
        };
        // Whole-graph scopes first: their position columns are shared
        // by every (u, i) that capped, so compute each distinct
        // center's column once (each internally parallel).
        let mut global_centers: Vec<(u32, usize)> = Vec::new();
        for u in 0..n {
            for i in 0..k {
                if matches!(scopes[u][i], Some(EScope::Global)) {
                    let c = plans[u][i].center;
                    global_centers.push((c, hier.rank(NodeId(c))));
                }
            }
        }
        global_centers.sort_unstable();
        global_centers.dedup();
        let global_pos: HashMap<u32, Vec<u32>> = global_centers
            .iter()
            .map(|&(c, l)| (c, Self::positions_over_v(g, src, n, l, c)))
            .collect();
        // Raw per-(v, level) requirement: max over the sparse regions
        // containing v of (position + 1 + margin). A region's members
        // are arbitrary nodes, not the worker's own chunk, so workers
        // accumulate into private n×k tables.
        // merge: elementwise max — order-free, hence chunk-count independent.
        let margin = params.s_margin as u32;
        let mut raw = vec![0u32; n * k];
        for shard in graphkit::metrics::par_chunks(n, |nodes| {
            let mut local = vec![0u32; n * k];
            for u in nodes {
                for i in 0..k {
                    let Some(EScope::Local(list)) = &scopes[u][i] else { continue };
                    debug_assert!(!plans[u][i].dense);
                    let c = plans[u][i].center;
                    let l = hier.rank(NodeId(c));
                    for &(v, _) in list {
                        let slot = &mut local[v as usize * k + l];
                        let val = position_of(v, l, c) as u32 + 1 + margin;
                        if val > *slot {
                            *slot = val;
                        }
                    }
                }
            }
            local
        }) {
            for (acc, add) in raw.iter_mut().zip(shard) {
                *acc = (*acc).max(add);
            }
        }
        for &(c, l) in &global_centers {
            let column = &global_pos[&c];
            for (v, &pos) in column.iter().enumerate() {
                let slot = &mut raw[v * k + l];
                let val = pos + 1 + margin;
                if val > *slot {
                    *slot = val;
                }
            }
        }
        drop(global_pos);
        // Never exceed the paper's budget (it is the proven bound);
        // every budget is at least 1 (a node is its own closest C_0
        // member).
        let paper_budget = hier.s_budget();
        let level_max: Vec<usize> = (0..k)
            .map(|l| {
                (0..n).map(|v| raw[v * k + l] as usize).max().unwrap_or(0).max(1).min(paper_budget)
            })
            .collect();
        let budgets = match params.s_budget_mode {
            SBudgetMode::Global | SBudgetMode::PerNodeUniform => Budgets::Global(level_max.clone()),
            SBudgetMode::PerNode => Budgets::PerNode {
                per: raw.iter().map(|&x| (x as usize).max(1).min(paper_budget) as u32).collect(),
                k,
            },
        };
        drop(raw);
        clock.lap("budgets", format!("{level_max:?}"));

        // ---- landmark-tree membership --------------------------------
        // v stores τ(T(c), v) iff c ∈ S(v) under the tuned budgets,
        // i.e. c is among the first budget(v, rank(c)) entries of v's
        // sorted C_{rank(c)} list.
        let mut centers: Vec<u32> =
            plans.iter().flatten().filter(|p| !p.dense).map(|p| p.center).collect();
        centers.sort_unstable();
        centers.dedup();
        let members = Self::center_members(g, src, hier, &centers, &budgets, n, k);
        clock.lap(
            "members",
            format!("{} centers, {} total members", centers.len(), members.items.len()),
        );
        Prepared { plans, centers, members, s_budgets: level_max }
    }

    /// Level-0 position oracle for the on-demand source: group every
    /// `(v, c)` query by `v`, run one bounded Dijkstra per queried
    /// node (radius = its farthest query), and read positions off the
    /// settled `(distance, id)` order.
    fn level0_positions(
        g: &Graph,
        hier: &LandmarkHierarchy,
        plans: &[Vec<LevelPlan>],
        scopes: &[Vec<Option<EScope>>],
        n: usize,
    ) -> HashMap<u64, usize> {
        let mut queries: HashMap<u32, Vec<(u32, Cost)>> = HashMap::new();
        for (u, row) in scopes.iter().enumerate() {
            for (i, scope) in row.iter().enumerate() {
                let Some(EScope::Local(list)) = scope else { continue };
                let c = plans[u][i].center;
                if hier.rank(NodeId(c)) != 0 {
                    continue;
                }
                debug_assert_eq!(c, u as u32, "a rank-0 center is always the node itself");
                for &(v, d_uv) in list {
                    queries.entry(v).or_default().push((c, d_uv));
                }
            }
        }
        let mut keys: Vec<u32> = queries.keys().copied().collect();
        keys.sort_unstable();
        // merge: entries keyed by pos0_key(v, c), which is unique per
        // query — collection order is immaterial.
        graphkit::metrics::par_chunks(keys.len(), |range| {
            let mut scratch = DijkstraScratch::new(n);
            let mut out = Vec::new();
            for &v in &keys[range] {
                let qs = &queries[&v];
                let radius = qs.iter().map(|&(_, d)| d).max().unwrap_or(0);
                scratch.run(g, NodeId(v), radius, usize::MAX);
                for &(c, d_vc) in qs {
                    out.push((pos0_key(v, c), scratch.position_below((d_vc, c))));
                }
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// `position(v, l, c)` for every `v` — the S-budget column of a
    /// whole-graph `E(u,i)`. For the on-demand source at `l = 0` (a
    /// rank-0 center whose level capped — only reachable on instances
    /// whose balls dodge every landmark) this falls back to one full
    /// Dijkstra plus per-node bounded runs; DESIGN.md records it as
    /// the construction's worst-case residue.
    fn positions_over_v(g: &Graph, src: &BuildSource<'_>, n: usize, l: usize, c: u32) -> Vec<u32> {
        if l == 0 {
            if let BuildSource::OnDemand { .. } = src {
                let row = dijkstra::dijkstra(g, NodeId(c)).dist;
                // merge: per-node positions, flattened in chunk (= node id) order.
                return graphkit::metrics::par_chunks(n, |nodes| {
                    let mut scratch = DijkstraScratch::new(n);
                    let mut out = Vec::with_capacity(nodes.len());
                    for v in nodes {
                        let d_vc = row[v];
                        scratch.run(g, NodeId(v as u32), d_vc, usize::MAX);
                        out.push(scratch.position_below((d_vc, c)) as u32);
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect();
            }
        }
        // merge: per-node positions, flattened in chunk (= node id) order.
        graphkit::metrics::par_chunks(n, |nodes| {
            nodes.map(|v| src.position(NodeId(v as u32), l, c) as u32).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Members `{v : c ∈ S(v)}` of every distinct center's tree, with
    /// `d(v, c)` attached (the bounded tree Dijkstra's radius), in CSR
    /// form aligned with the sorted `centers` array.
    ///
    /// Enumerated node-major: `c ∈ S(v)` iff `c` sits in the first
    /// `budget(v, rank(c))` entries of `v`'s sorted `C_{rank(c)}` list
    /// (positions are unique — the sort key `(distance, id)` is), so
    /// each node scans its own prefix once — `O(Σ_v Σ_l budget(v, l))`
    /// work instead of `O(|centers| · n)` position probes — and a
    /// counting sort by center re-buckets the stream. Chunks
    /// concatenate in node order and the placement scan is stable, so
    /// each center's members stay v-ascending, exactly as the old
    /// center-major enumeration produced them.
    fn center_members(
        g: &Graph,
        src: &BuildSource<'_>,
        hier: &LandmarkHierarchy,
        centers: &[u32],
        budgets: &Budgets,
        n: usize,
        k: usize,
    ) -> CenterMembers {
        debug_assert!(k < u8::MAX as usize);
        // Center rank by host id (u8::MAX = not a center), and each
        // center's slot in the sorted array.
        let mut center_rank = vec![u8::MAX; n];
        let mut center_slot = vec![u32::MAX; n];
        for (ci, &c) in centers.iter().enumerate() {
            center_rank[c as usize] = hier.rank(NodeId(c)) as u8;
            center_slot[c as usize] = ci as u32;
        }
        let dijkstra_rank0 = matches!(src, BuildSource::OnDemand { .. })
            && centers.iter().any(|&c| center_rank[c as usize] == 0);
        // merge: counting-sort scatter by center; within a center the
        // shard (= ascending node id) order is preserved.
        let shards: Vec<Vec<(u32, u32, Cost)>> = graphkit::metrics::par_chunks(n, |nodes| {
            let mut out = Vec::new();
            let mut scratch = dijkstra_rank0.then(|| DijkstraScratch::new(n));
            for v in nodes {
                match src {
                    BuildSource::Dense { sorted, .. } => {
                        for (l, list) in sorted[v].iter().enumerate() {
                            let b = budgets.of(v as u32, l).min(list.len());
                            for &(dist, c) in &list[..b] {
                                if center_rank[c as usize] == l as u8 {
                                    out.push((center_slot[c as usize], v as u32, dist));
                                }
                            }
                        }
                    }
                    BuildSource::OnDemand { ld } => {
                        // Rank 0: c ∈ S(v) ⟺ c is among v's
                        // budget(v, 0) closest nodes — one size-capped
                        // Dijkstra yields every rank-0 membership.
                        if let Some(s) = scratch.as_mut() {
                            s.run(g, NodeId(v as u32), INFINITY - 1, budgets.of(v as u32, 0));
                            for &(dist, w) in s.settled() {
                                if center_rank[w as usize] == 0 {
                                    out.push((center_slot[w as usize], v as u32, dist));
                                }
                            }
                        }
                        // Rank ≥ 1: prefixes of the landmark columns.
                        for l in 1..k {
                            let list = ld.list(NodeId(v as u32), l);
                            let b = budgets.of(v as u32, l).min(list.len());
                            for &(dist, c) in &list[..b] {
                                if center_rank[c as usize] == l as u8 {
                                    out.push((center_slot[c as usize], v as u32, dist));
                                }
                            }
                        }
                    }
                }
            }
            out
        });
        let mut off = vec![0usize; centers.len() + 1];
        for shard in &shards {
            for &(ci, _, _) in shard {
                off[ci as usize + 1] += 1;
            }
        }
        for i in 0..centers.len() {
            off[i + 1] += off[i];
        }
        let mut cursor = off.clone();
        let mut items = vec![(0u32, 0 as Cost); off[centers.len()]];
        for shard in shards {
            for (ci, v, dist) in shard {
                let p = &mut cursor[ci as usize];
                items[*p] = (v, dist);
                *p += 1;
            }
        }
        CenterMembers { off, items }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Construction parameters.
    pub fn params(&self) -> &SchemeParams {
        &self.params
    }

    /// Preprocessing diagnostics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The decomposition (exposed for experiments F1/F2/A1).
    pub fn decomposition(&self) -> &Decomposition {
        &self.dec
    }

    /// The landmark hierarchy (exposed for experiments C1/C2).
    pub fn hierarchy(&self) -> &LandmarkHierarchy {
        &self.hier
    }

    /// Route a message (§3.7): phases `i = 0..k`, each using the dense
    /// or sparse strategy of level `i`, until the destination is found.
    pub fn route_message(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        // lint:allow(no-alloc-in-route): the returned RouteTrace owns its path; one Vec per route is the API
        let mut path = vec![src];
        let mut cost: Cost = 0;
        // A source outside the scheme's node range is undeliverable,
        // not a panic — serve_batch forwards caller-supplied ids.
        let Some(row) = self.plans.get(src.idx()) else {
            return RouteTrace { path, cost, delivered: false };
        };
        for i in 0..self.params.k {
            let Some(&plan) = row.get(i) else { break };
            let found = if plan.dense {
                self.dense_phase(src, dst, plan, &mut path, &mut cost)
            } else {
                self.sparse_phase(src, dst, plan, &mut path, &mut cost)
            };
            if found {
                return RouteTrace { path, cost, delivered: true };
            }
            debug_assert_eq!(*path.last().unwrap(), src, "phase must end at the source");
        }
        RouteTrace { path, cost, delivered: false }
    }

    /// Dense strategy (§3.6): look up `dst` in the home cover tree
    /// `W(u, i)` at scale `a(u, i)`. Returns true when delivered.
    fn dense_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        // Every lookup degrades to "not found at this level" rather
        // than panicking: a stale plan (e.g. after a degraded repair)
        // must cost an undelivered route, not the serving thread.
        let Some(sc) = self.scale_covers.get(&plan.a) else { return false };
        let Some(&home) = sc.home.get(src.idx()) else { return false };
        debug_assert_ne!(home, u32::MAX, "source must participate at its own scale");
        let Some(entry) = sc.routers.get(home as usize) else { return false };
        let Some(&from) = entry.ix.get(&src.0) else { return false };
        let (outcome, tpath) = entry.router.route(from, dst);
        append_tree_path(entry.router.labeled().tree(), &tpath, path);
        *cost += outcome.cost();
        matches!(outcome, CoverOutcome::Found { .. })
    }

    /// Sparse strategy (§3.3): climb to the center `c(u, i)`, run a
    /// `b(u, i)`-bounded search on `T(c(u, i))`, and come back on a miss.
    fn sparse_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        // A missing or unreadable center tree (torn spill file, bad
        // disk) degrades to "not found at this level": the caller
        // falls through to the next level and ultimately reports an
        // undelivered route — never a panicked serving thread.
        let Ok(ct) = self.center_store.center_tree(plan.center) else {
            return false;
        };
        let tree = ct.ert.labeled().tree();
        let src_ix = ct.ix_of.get(src.0).unwrap_or(u32::MAX);
        debug_assert_ne!(src_ix, u32::MAX, "source must be in its own center's tree");
        // Climb to the root along tree parents.
        // lint:allow(no-alloc-in-route): per-route climb scratch, sized by tree depth; measured negligible vs the bounded search
        let mut climb = vec![src_ix];
        let mut at = src_ix;
        while let Some(p) = tree.parent(at) {
            *cost += tree.parent_weight(at);
            at = p;
            climb.push(at);
        }
        append_tree_path(tree, &climb, path);
        // Bounded search from the root.
        let (outcome, tpath) = ct.ert.search(dst, plan.b as usize);
        append_tree_path(tree, &tpath, path);
        *cost += outcome.cost();
        match outcome {
            SearchOutcome::Found { .. } => true,
            SearchOutcome::NotFound { .. } => {
                // Back down to the source for the next phase.
                for &t in climb.iter().rev().skip(1) {
                    *cost += tree.parent_weight(t);
                    path.push(tree.graph_id(t));
                }
                false
            }
        }
    }

    /// Evaluate this scheme over `pairs` with the parallel engine
    /// (`threads` = 0 → available parallelism), against any
    /// [`GroundTruth`] — the dense matrix used at build time or an
    /// on-demand truth for larger workloads. Results are bit-identical
    /// to sequential [`sim::evaluate`].
    pub fn evaluate(
        &self,
        truth: &(dyn GroundTruth + Sync),
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> StretchStats {
        sim::evaluate_parallel(&self.g, truth, self, pairs, threads)
    }

    /// Storage bits at node `v`: level plans, landmark-tree state
    /// `τ(T(c), v)` for every tree containing `v`, and cover-tree state
    /// `φ(T, v)` plus the home-root pointer for every scale in `R(v)`.
    pub fn storage_bits(&self, v: NodeId) -> u64 {
        self.storage_breakdown(v).total()
    }

    /// Storage bits at `v`, split by component (experiment T2). The
    /// landmark component was accumulated during the fused build, so
    /// this never touches the center store — a spilled scheme accounts
    /// its storage without a single disk read.
    pub fn storage_breakdown(&self, v: NodeId) -> StorageBreakdown {
        let n = self.g.n();
        let id = bits_for_node(n);
        let mut b = StorageBreakdown {
            // Plans: dense flag + range + center + b per level.
            plans_bits: self.params.k as u64
                * (1 + bits_for_universe(self.dec.log_delta() as u64 + 1)
                    + id
                    + bits_for_universe(self.params.k as u64 + 1)),
            landmark_bits: self.landmark_bits[v.idx()],
            ..Default::default()
        };
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                if let Some(&ix) = entry.ix.get(&v.0) {
                    b.cover_bits += id + entry.router.node_bits(ix); // root id + φ
                }
            }
        }
        b
    }

    /// Theorem 1's per-node bound in explicit form (with the Lemma 11
    /// exponent; see DESIGN.md): `k² · n^{3/k} · log³ n` bits, constant
    /// 64.
    pub fn theorem1_bound(&self) -> f64 {
        let n = self.g.n() as f64;
        let k = self.params.k as f64;
        64.0 * k * k * n.powf(3.0 / k) * n.log2().powi(3)
    }

    /// Worst-case header size in bits — the paper's `Õ(1)` claim made
    /// concrete. A message carries: the destination id, the phase index,
    /// the search round, and (while walking a tree) the largest label of
    /// any tree in the scheme plus a return label for error reporting —
    /// O(log² n) total. (The center-tree max was recorded during the
    /// fused build; cover labels are read off the resident routers.)
    pub fn header_bits_bound(&self) -> u64 {
        let n = self.g.n();
        let id = bits_for_node(n);
        let phase = bits_for_universe(self.params.k as u64 + 1);
        let mut max_label = self.max_center_label_bits;
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                let lt = entry.router.labeled();
                for t in 0..lt.tree().size() as u32 {
                    max_label = max_label.max(lt.label_bits(t));
                }
            }
        }
        id + 2 * phase + 2 * max_label
    }
}

/// Effective dense/sparse classification of level `i` (force-mode
/// aware; used identically by both construction sources).
pub(crate) fn level_is_dense(
    dec: &Decomposition,
    u: NodeId,
    i: usize,
    params: &SchemeParams,
) -> bool {
    match params.force_mode {
        None => dec.is_dense(u, i),
        Some(ForceMode::AllDense) => true,
        Some(ForceMode::AllSparse) => false,
    }
}

/// Phase wall-clock bookkeeping behind [`BuildStats::phase_seconds`],
/// echoed to stderr when `SCHEME_TIMING` is set.
pub(crate) struct PhaseClock {
    started: std::time::Instant,
    prev: f64,
    timing: bool,
    laps: Vec<(String, f64)>,
}

impl PhaseClock {
    pub(crate) fn start() -> Self {
        PhaseClock {
            started: std::time::Instant::now(),
            prev: 0.0,
            timing: std::env::var_os("SCHEME_TIMING").is_some(),
            laps: Vec::new(),
        }
    }

    pub(crate) fn lap(&mut self, name: &str, detail: String) {
        let t = self.started.elapsed().as_secs_f64();
        self.laps.push((name.to_string(), t - self.prev));
        self.prev = t;
        if self.timing {
            eprintln!("[scheme {t:>8.2}s] {name} {detail}");
        }
    }

    pub(crate) fn finish(self) -> Vec<(String, f64)> {
        self.laps
    }
}

/// Output of [`Scheme::prepare`] — everything the per-center tree
/// pipeline and the later passes consume.
pub(crate) struct Prepared {
    pub(crate) plans: Vec<Vec<LevelPlan>>,
    /// Distinct sparse centers, ascending.
    pub(crate) centers: Vec<u32>,
    /// Membership CSR aligned with `centers`.
    pub(crate) members: CenterMembers,
    /// Effective per-level S budgets (for [`BuildStats::s_budgets`]).
    pub(crate) s_budgets: Vec<usize>,
}

/// One finished batch from the fused per-center pipeline: resident
/// trees (empty when spilled — the writer received them instead), the
/// b-pass indexes keyed by center, per-node storage-bit contributions,
/// and each tree's largest routing label.
pub(crate) struct TreeBatch {
    pub(crate) built: Vec<(u32, Arc<CenterTree>)>,
    pub(crate) bix: HashMap<u32, BuildIndex>,
    pub(crate) lm_bits: Vec<u64>,
    pub(crate) labels: Vec<(u32, u64)>,
}

/// The fused per-center pipeline over an explicit job list: bounded
/// Dijkstra → tree extraction against reusable scratch → Lemma 4
/// scheme → storage accounting → store (resident Arc or spill
/// record). Nothing tree-sized survives the pass beyond what routing
/// and the b-pass actually consume. A full build passes every center;
/// repair passes only the invalidated ones.
pub(crate) fn build_center_trees(
    g: &Graph,
    params: &SchemeParams,
    jobs: &[(u32, &[(u32, Cost)])],
    bounded: bool,
    spill: Option<&SpillWriter>,
) -> TreeBatch {
    let n = g.n();
    let k = params.k;
    let sigma = graphkit::ids::nth_root_ceil(n as u64, k as u32).max(2);
    let id_bits = bits_for_node(n);
    struct CenterShard {
        built: Vec<(u32, Arc<CenterTree>)>,
        index: Vec<(u32, BuildIndex)>,
        lm_bits: Vec<u64>,
        labels: Vec<(u32, u64)>,
    }
    // merge: keyed by center id (maps), plus elementwise bit sums and
    // per-center label entries — shard order immaterial.
    let shards = graphkit::metrics::par_chunks(jobs.len(), |range| {
        let mut scratch = DijkstraScratch::new(n);
        let mut tscratch = TreeScratch::new(n);
        let mut built = Vec::new();
        let mut index = Vec::with_capacity(range.len());
        let mut lm_bits = vec![0u64; n];
        let mut labels = Vec::with_capacity(range.len());
        for ji in range {
            let (c, mem) = jobs[ji];
            let radius = if bounded {
                mem.iter().map(|&(_, dist)| dist).max().unwrap_or(0)
            } else {
                INFINITY - 1
            };
            scratch.run(g, NodeId(c), radius, usize::MAX);
            let tree = Tree::from_dist_parents_with(
                &mut tscratch,
                g,
                NodeId(c),
                scratch.dists(),
                scratch.parents(),
                mem.iter().map(|&(v, _)| NodeId(v)),
            );
            let ert = ErrorReportingTree::with_sigma(
                tree,
                k,
                sigma,
                params.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let (entry, bits, max_label) = index_and_bits(&ert, id_bits);
            for &(gid, b) in &bits {
                lm_bits[gid as usize] += b;
            }
            labels.push((c, max_label));
            index.push((c, entry));
            if let Some(w) = spill {
                let mut rec = wire::Writer::new();
                ert.to_wire(&mut rec);
                w.write(c, &rec.into_bytes());
            } else {
                built.push((c, Arc::new(CenterTree::new(ert))));
            }
        }
        CenterShard { built, index, lm_bits, labels }
    });
    let mut built = Vec::new();
    let mut bix: HashMap<u32, BuildIndex> = HashMap::with_capacity(jobs.len());
    let mut lm_bits = vec![0u64; n];
    let mut labels = Vec::with_capacity(jobs.len());
    for shard in shards {
        built.extend(shard.built);
        for (acc, add) in lm_bits.iter_mut().zip(&shard.lm_bits) {
            *acc += add;
        }
        bix.extend(shard.index);
        labels.extend(shard.labels);
    }
    TreeBatch { built, bix, lm_bits, labels }
}

/// Per-tree derived data, usable on a freshly built tree or one
/// decoded back from the spill/snapshot store: the b-pass index, each
/// member's `(host id, storage-bit)` contribution (root id + τ), and
/// the largest routing label.
pub(crate) fn index_and_bits(
    ert: &ErrorReportingTree,
    id_bits: u64,
) -> (BuildIndex, Vec<(u32, u64)>, u64) {
    let size = ert.labeled().tree().size();
    let mut levels: Vec<(u32, u8)> = Vec::with_capacity(size);
    let mut bits: Vec<(u32, u64)> = Vec::with_capacity(size);
    let mut max_search_level = 1u8;
    let mut max_label = 0u64;
    for ix in 0..size as u32 {
        let gid = ert.labeled().tree().graph_id(ix).0;
        let lvl =
            ert.naming().level_of_rank(ert.rank(ix) as usize).clamp(1, u8::MAX as usize) as u8;
        max_search_level = max_search_level.max(lvl);
        levels.push((gid, lvl));
        bits.push((gid, id_bits + ert.node_bits(ix)));
        max_label = max_label.max(ert.labeled().label_bits(ix));
    }
    levels.sort_unstable();
    (BuildIndex { levels, max_search_level }, bits, max_label)
}

/// `b(u, i)` for one sparse scope against its center's tree index,
/// plus that region's Lemma 3 `(checked, violations)` counts.
pub(crate) fn b_for_scope(
    scope: &EScope,
    entry: &BuildIndex,
    n: usize,
    k: usize,
) -> (u8, usize, usize) {
    let mut checked = 0usize;
    let mut violations = 0usize;
    let mut b = 1usize;
    match scope {
        EScope::Global => {
            // E(u,i) = V: every non-member is a Lemma 3 violation, and
            // the members' worst search level is a per-tree constant.
            checked += n;
            let missing = n - entry.levels.len();
            if missing > 0 {
                violations += missing;
                b = k;
            } else {
                b = entry.max_search_level as usize;
            }
        }
        EScope::Local(list) => {
            for &(v, _) in list {
                checked += 1;
                match entry.levels.binary_search_by_key(&v, |&(id, _)| id) {
                    Ok(p) => b = b.max(entry.levels[p].1 as usize),
                    Err(_) => {
                        violations += 1;
                        b = k; // fall back to the deepest search
                    }
                }
            }
        }
    }
    (b.min(k).max(1) as u8, checked, violations)
}

/// All cover trees of one dense scale `s`: the extended-range member
/// set, its induced subgraph, the AGM cover, and one Lemma 7 router
/// per tree lifted back to host ids. Deterministic in
/// `(g, dec, params, s)` — repair reuses a scale's covers only when
/// each of those provably matches what a fresh build would pass here.
pub(crate) fn build_scale_cover(
    g: &Graph,
    dec: &Decomposition,
    params: &SchemeParams,
    s: u32,
) -> ScaleCover {
    let n = g.n();
    let k = params.k;
    let sigma = graphkit::ids::nth_root_ceil(n as u64, k as u32).max(2);
    let members: Vec<u32> =
        (0..n as u32).filter(|&v| dec.in_extended_range(NodeId(v), s)).collect();
    let sub = induced_subgraph(g, &members);
    let rho = octave_radius(s);
    let cover = covers::build_cover(&sub.graph, k, rho);
    let mut home = vec![u32::MAX; n];
    for (local, &t) in cover.home.iter().enumerate() {
        home[sub.to_host[local] as usize] = t;
    }
    let routers: Vec<CoverEntry> =
        // merge: entries flattened in chunk (= tree index) order.
        graphkit::metrics::par_chunks(cover.trees.len(), |range| {
            range
                .map(|ti| {
                    let host_tree = remap_tree(&cover.trees[ti], &sub.to_host);
                    let ix: HashMap<u32, TreeIx> = host_tree
                        .graph_ids()
                        .iter()
                        .enumerate()
                        .map(|(i, &gid)| (gid, i as TreeIx))
                        .collect();
                    let router = CoverTreeRouter::new(
                        host_tree,
                        sigma,
                        params.seed ^ ((s as u64) << 32 | ti as u64),
                    );
                    CoverEntry { router, ix }
                })
                .collect::<Vec<CoverEntry>>()
        })
        .into_iter()
        .flatten()
        .collect();
    ScaleCover { routers, home }
}

/// Key for the batched level-0 position map.
#[inline(always)]
fn pos0_key(v: u32, c: u32) -> u64 {
    (v as u64) << 32 | c as u64
}

/// Relabel a tree's node ids through a host map (used to lift subgraph
/// cover trees into host-graph ids).
fn remap_tree(t: &Tree, to_host: &[u32]) -> Tree {
    let ids: Vec<u32> = t.graph_ids().iter().map(|&l| to_host[l as usize]).collect();
    let parents: Vec<u32> = (0..t.size() as u32).map(|x| t.parent(x).unwrap_or(u32::MAX)).collect();
    let weights: Vec<u64> = (0..t.size() as u32).map(|x| t.parent_weight(x)).collect();
    Tree::from_parents(ids, parents, weights)
}

/// Append a tree-index walk to a host-id path, skipping the first node
/// (it must equal the path's current tail).
fn append_tree_path(tree: &Tree, tpath: &[TreeIx], path: &mut Vec<NodeId>) {
    if tpath.is_empty() {
        return;
    }
    debug_assert_eq!(
        tree.graph_id(tpath[0]),
        *path.last().unwrap(),
        "tree walk must continue from the current node"
    );
    for &t in tpath.iter().skip(1) {
        path.push(tree.graph_id(t));
    }
}

// The parallel evaluator shards pairs across threads that all borrow
// the scheme; the only interior mutability is the spill store's
// mutex-guarded record cache, which affects load timing, never routing
// results.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Scheme>();
};

impl Router for Scheme {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        self.route_message(src, dst)
    }

    fn name(&self) -> &str {
        "agm-scale-free"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        self.storage_bits(v)
    }
}
