//! The full AGM SPAA'06 routing scheme (§3): preprocessing, the
//! iterative phase router, and bit-level storage accounting.

use std::collections::HashMap;

use decomposition::Decomposition;
use graphkit::bits::{bits_for_node, bits_for_universe};
use graphkit::ids::octave_radius;
use graphkit::{
    apsp, dijkstra, induced_subgraph, Cost, DijkstraScratch, DistMatrix, Graph, NodeId, Tree,
    TreeIx, INFINITY,
};
use landmarks::{LandmarkDistances, LandmarkHierarchy};
use sim::{GroundTruth, RouteTrace, Router, StretchStats};
use treeroute::cover_router::{CoverOutcome, CoverTreeRouter};
use treeroute::laing::{ErrorReportingTree, SearchOutcome};

/// Ablation switch (experiment A1): disable one side of the
/// sparse/dense decomposition to show why the paper needs both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForceMode {
    /// Treat every level as sparse (landmark trees only). Storage
    /// blows up: the S-set budgets must absorb dense neighborhoods.
    AllSparse,
    /// Treat every level as dense (cover trees only). Delivery breaks:
    /// sparse levels' targets may not participate at the search scale.
    AllDense,
}

/// How the landmark hierarchy is constructed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HierarchySource {
    /// Randomized sampling with per-instance Claims 1–2 verification
    /// and re-seeding (§2.3's construction, the default).
    #[default]
    SampledVerified,
    /// The deterministic greedy hitting-set construction
    /// ([`landmarks::greedy_hierarchy`]) — the effective counterpart of
    /// the paper's derandomization remark. Slower to build; use on
    /// moderate n.
    Greedy,
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SchemeParams {
    /// The space-stretch trade-off parameter `k ≥ 1`.
    pub k: usize,
    /// Seed for the landmark hierarchy and the tree hash functions.
    pub seed: u64,
    /// Re-sampling attempts for a Claims-1/2-verified hierarchy.
    pub landmark_attempts: u32,
    /// Extra S-set slots beyond the instance-tuned requirement (margin
    /// against the tie-break edge; ≥ 1 recommended).
    pub s_margin: usize,
    /// Ablation override (None = the paper's decomposition).
    pub force_mode: Option<ForceMode>,
    /// Landmark construction: randomized-verified or deterministic.
    pub hierarchy: HierarchySource,
}

impl SchemeParams {
    /// Defaults: verified sampling with 16 attempts, margin 2.
    pub fn new(k: usize, seed: u64) -> Self {
        SchemeParams {
            k,
            seed,
            landmark_attempts: 16,
            s_margin: 2,
            force_mode: None,
            hierarchy: HierarchySource::default(),
        }
    }

    /// Builder-style ablation switch.
    pub fn with_force_mode(mut self, mode: ForceMode) -> Self {
        self.force_mode = Some(mode);
        self
    }

    /// Builder-style deterministic-landmark switch.
    pub fn with_greedy_landmarks(mut self) -> Self {
        self.hierarchy = HierarchySource::Greedy;
        self
    }
}

/// Per-node storage split by component (experiment T2).
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageBreakdown {
    /// Level plans: dense flags, ranges, centers, b-values, root ids.
    pub plans_bits: u64,
    /// Sparse machinery: τ(T(c), v) over landmark trees containing v.
    pub landmark_bits: u64,
    /// Dense machinery: φ(T, v) over cover trees containing v.
    pub cover_bits: u64,
}

impl StorageBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.plans_bits + self.landmark_bits + self.cover_bits
    }
}

/// Per-(node, level) routing plan.
#[derive(Clone, Copy, Debug)]
struct LevelPlan {
    /// Dense or sparse strategy for this level.
    dense: bool,
    /// The range `a(u, i)` (the dense strategy's scale).
    a: u32,
    /// Sparse: the center `c(u, i)` (host id). Dense: unused.
    center: u32,
    /// Sparse: the bounded-search level `b(u, i)`.
    b: u8,
}

/// A landmark tree `T(c)` with the Lemma 4 scheme attached.
struct CenterTree {
    ert: ErrorReportingTree,
    /// host node id -> tree index. A sorted array rather than an
    /// n-length vector or a hash map: matrix-free graphs carry Θ(n)
    /// center trees totalling Õ(n^{1+1/k}) memberships, so per-entry
    /// memory is what decides whether a 10⁵-node scheme fits in RAM.
    ix_of: IdIndex,
    /// Largest bounded-search level any member needs — lets a
    /// whole-graph `E(u,i)` read `b(u,i)` off the tree in O(1).
    max_search_level: usize,
}

/// Compact host-id → tree-index lookup: `(id, ix)` pairs sorted by id.
struct IdIndex(Vec<(u32, u32)>);

impl IdIndex {
    /// Build from a tree's host ids (index = position in the array).
    fn from_graph_ids(graph_ids: &[u32]) -> Self {
        let mut pairs: Vec<(u32, u32)> =
            graph_ids.iter().enumerate().map(|(i, &gid)| (gid, i as u32)).collect();
        pairs.sort_unstable();
        IdIndex(pairs)
    }

    /// Tree index of host id `v`, if present.
    #[inline]
    fn get(&self, v: u32) -> Option<u32> {
        self.0.binary_search_by_key(&v, |&(id, _)| id).ok().map(|i| self.0[i].1)
    }

    /// Number of tree members.
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// How a sparse level's region `E(u, i)` is enumerated during
/// construction.
enum EScope {
    /// `a(u,i+1)` hit the `⌈log₂Δ⌉+3` cap, so `E(u,i) = V` exactly
    /// (see [`Decomposition::e_is_global`]); loops over it collapse
    /// to per-center aggregates instead of Θ(n) enumerations.
    Global,
    /// Explicit members as `(v, d(u,v))`, from a dense row or a
    /// radius-bounded Dijkstra.
    Local(Vec<(u32, Cost)>),
}

/// Where preprocessing reads distances from: the dense matrix (small
/// n, exact parity oracle) or the matrix-free sources — landmark
/// columns plus per-node bounded Dijkstras.
enum BuildSource<'a> {
    Dense {
        d: &'a DistMatrix,
        /// `sorted[v][l]` = `C_l` as `(d(v,·), id)`, sorted — the
        /// position oracle for S budgets and S membership.
        sorted: Vec<Vec<Vec<(Cost, u32)>>>,
    },
    OnDemand {
        ld: LandmarkDistances,
    },
}

impl BuildSource<'_> {
    /// The center `c(u, r)` (identical across sources).
    fn center(&self, hier: &LandmarkHierarchy, u: NodeId, r: Cost) -> u32 {
        match self {
            BuildSource::Dense { d, .. } => hier.center(d, u, r).0,
            BuildSource::OnDemand { ld } => ld.center(u, r).0,
        }
    }

    /// Position of center `c` (rank `l`) in `v`'s `(distance, id)`
    /// order over `C_l`. The on-demand source serves `l ≥ 1` from the
    /// landmark columns; level-0 positions come from the batched
    /// bounded-Dijkstra pass (`pos0`), so this must not be called for
    /// `l = 0` there.
    fn position(&self, v: NodeId, l: usize, c: u32) -> usize {
        match self {
            BuildSource::Dense { d, sorted } => {
                let key = (d.d(v, NodeId(c)), c);
                sorted[v.idx()][l].partition_point(|&e| e < key)
            }
            BuildSource::OnDemand { ld } => ld.position(v, l, c),
        }
    }

    /// `d(v, c)` for a center `c` of rank `l` (on-demand: `l ≥ 1`).
    fn dist_to_center(&self, v: NodeId, l: usize, c: u32) -> Cost {
        match self {
            BuildSource::Dense { d, .. } => d.d(v, NodeId(c)),
            BuildSource::OnDemand { ld } => {
                debug_assert!(l >= 1);
                ld.d(c, v)
            }
        }
    }
}

/// All cover trees of one scale `i` (over the subgraph `G_i`).
struct ScaleCover {
    routers: Vec<CoverEntry>,
    /// host node id -> index of its home router (u32::MAX outside G_i).
    home: Vec<u32>,
}

/// One cover tree with the Lemma 7 scheme attached.
struct CoverEntry {
    router: CoverTreeRouter,
    /// host node id -> tree index.
    ix: HashMap<u32, TreeIx>,
}

/// Diagnostics accumulated during preprocessing (experiment F2 reads
/// these; violations should be zero on verified hierarchies).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// (u, i, v) triples where Lemma 3 failed: `v ∈ E(u,i)` but the
    /// center's tree does not contain `v`.
    pub lemma3_violations: usize,
    /// Sparse (u, i, v) membership triples checked.
    pub lemma3_checked: usize,
    /// Instance-tuned S-set budget per landmark level.
    pub s_budgets: Vec<usize>,
    /// Number of distinct centers (= landmark trees built).
    pub num_center_trees: usize,
    /// Number of scales with cover collections.
    pub num_scales: usize,
    /// Total cover trees across scales.
    pub num_cover_trees: usize,
}

/// The scale-free name-independent routing scheme of Theorem 1.
pub struct Scheme {
    g: Graph,
    params: SchemeParams,
    dec: Decomposition,
    hier: LandmarkHierarchy,
    plans: Vec<Vec<LevelPlan>>,
    center_trees: HashMap<u32, CenterTree>,
    scale_covers: HashMap<u32, ScaleCover>,
    stats: BuildStats,
}

impl Scheme {
    /// Build the scheme, computing APSP internally.
    pub fn build(g: Graph, params: SchemeParams) -> Self {
        let d = apsp(&g);
        Self::build_with_matrix(g, &d, params)
    }

    /// Build the scheme reusing a precomputed distance matrix (the
    /// matrix is used for *preprocessing only*; routing reads only the
    /// constructed per-node structures).
    pub fn build_with_matrix(g: Graph, d: &DistMatrix, params: SchemeParams) -> Self {
        assert!(params.k >= 1);
        assert!(d.connected(), "the scheme requires a connected graph");
        let k = params.k;
        let dec = Decomposition::build(d, k);
        let hier = match params.hierarchy {
            HierarchySource::SampledVerified => {
                LandmarkHierarchy::sample_verified(d, k, params.seed, params.landmark_attempts)
            }
            HierarchySource::Greedy => landmarks::greedy_hierarchy(d, k),
        };
        // sorted[v][l] = C_l members ordered by (d(v,·), id).
        let sorted: Vec<Vec<Vec<(u64, u32)>>> = (0..g.n() as u32)
            .map(|v| {
                let row = d.row(NodeId(v));
                (0..k)
                    .map(|l| {
                        let mut m: Vec<(u64, u32)> =
                            hier.level(l).iter().map(|&c| (row[c as usize], c)).collect();
                        m.sort_unstable();
                        m
                    })
                    .collect()
            })
            .collect();
        let scopes = Self::dense_scopes(&g, d, &dec, &params);
        Self::assemble(g, params, dec, hier, BuildSource::Dense { d, sorted }, scopes)
    }

    /// Build the scheme without ever materializing an n×n matrix — the
    /// Theorem 1 construction at 10⁵+ nodes.
    ///
    /// Substitutions relative to [`Scheme::build_with_matrix`]
    /// (documented in DESIGN.md §"Matrix-free construction"; output is
    /// parity-tested identical):
    ///
    /// * the decomposition's per-node ranges come from size-capped
    ///   Dijkstras ([`Decomposition::build_on_demand_with_diameter`]),
    ///   seeded with the exact diameter from
    ///   [`graphkit::diameter_matrix_free`];
    /// * the landmark side runs one full Dijkstra per rank-≥1 landmark
    ///   ([`LandmarkDistances`]) and serves Claims verification,
    ///   centers, rank positions, and the instance-tuned S budgets
    ///   from those columns;
    /// * `E(u,i)` balls come from radius-bounded Dijkstras, and levels
    ///   whose range hit the `⌈log₂Δ⌉+3` cap are handled as exact
    ///   whole-graph scopes so no Θ(n) per-node enumeration happens;
    /// * level-0 (`C_0 = V`) S-sets and positions come from per-node
    ///   size-capped Dijkstras instead of full sorted rows.
    ///
    /// Requires the default [`HierarchySource::SampledVerified`] (the
    /// greedy construction is inherently matrix-bound) and strictly
    /// positive edge weights (every generator in this workspace).
    pub fn build_on_demand(g: Graph, params: SchemeParams) -> Self {
        assert!(params.k >= 1);
        assert!(
            params.hierarchy == HierarchySource::SampledVerified,
            "on-demand construction supports the sampled-verified hierarchy only"
        );
        let n = g.n();
        assert!(
            dijkstra::dijkstra(&g, NodeId(0)).dist.iter().all(|&x| x != INFINITY),
            "the scheme requires a connected graph"
        );
        let diameter = graphkit::diameter_matrix_free(&g);
        let dec = Decomposition::build_on_demand_with_diameter(&g, params.k, diameter);
        let (hier, ld) = LandmarkHierarchy::sample_verified_on_demand(
            &g,
            params.k,
            params.seed,
            params.landmark_attempts,
            diameter,
        );
        let scopes = Self::on_demand_scopes(&g, &dec, &params, n);
        Self::assemble(g, params, dec, hier, BuildSource::OnDemand { ld }, scopes)
    }

    /// Per-(u, i) `E(u,i)` scopes from dense rows (`None` = dense
    /// level, no sparse region).
    fn dense_scopes(
        g: &Graph,
        d: &DistMatrix,
        dec: &Decomposition,
        params: &SchemeParams,
    ) -> Vec<Vec<Option<EScope>>> {
        let n = g.n();
        (0..n as u32)
            .map(|u| {
                let u_id = NodeId(u);
                let row = d.row(u_id);
                (0..params.k)
                    .map(|i| {
                        if level_is_dense(dec, u_id, i, params) {
                            None
                        } else if dec.e_is_global(u_id, i) {
                            Some(EScope::Global)
                        } else {
                            let radius = dec.e_radius(u_id, i);
                            Some(EScope::Local(
                                row.iter()
                                    .enumerate()
                                    .filter(|&(_, &dist)| dist != INFINITY && dist <= radius)
                                    .map(|(v, &dist)| (v as u32, dist))
                                    .collect(),
                            ))
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-(u, i) `E(u,i)` scopes from radius-bounded Dijkstras,
    /// parallel over node chunks with per-worker scratch.
    fn on_demand_scopes(
        g: &Graph,
        dec: &Decomposition,
        params: &SchemeParams,
        n: usize,
    ) -> Vec<Vec<Option<EScope>>> {
        graphkit::metrics::par_chunks(n, |nodes| {
            let mut scratch = DijkstraScratch::new(n);
            nodes
                .map(|u| {
                    let u = NodeId(u as u32);
                    (0..params.k)
                        .map(|lvl| {
                            if level_is_dense(dec, u, lvl, params) {
                                None
                            } else if dec.e_is_global(u, lvl) {
                                Some(EScope::Global)
                            } else {
                                scratch.run(g, u, dec.e_radius(u, lvl), usize::MAX);
                                let mut members: Vec<(u32, Cost)> =
                                    scratch.settled().iter().map(|&(dist, v)| (v, dist)).collect();
                                members.sort_unstable(); // id order, as the dense rows yield
                                Some(EScope::Local(members))
                            }
                        })
                        .collect()
                })
                .collect::<Vec<Vec<Option<EScope>>>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The shared construction skeleton: classification and centers,
    /// instance-tuned S budgets, center trees with Lemma 4 schemes,
    /// `b(u,i)` with Lemma 3 verification, and cover trees per dense
    /// scale. Every distance it consumes flows through `src` and the
    /// precomputed `scopes`, so the dense and matrix-free paths are
    /// the same algorithm over different storage.
    fn assemble(
        g: Graph,
        params: SchemeParams,
        dec: Decomposition,
        hier: LandmarkHierarchy,
        src: BuildSource<'_>,
        scopes: Vec<Vec<Option<EScope>>>,
    ) -> Self {
        let n = g.n();
        let k = params.k;
        let mut stats = BuildStats::default();
        // Phase timings to stderr when SCHEME_TIMING is set — the knob
        // behind the construction hot-spot notes in DESIGN.md.
        let started = std::time::Instant::now();
        let timing = std::env::var_os("SCHEME_TIMING").is_some();
        macro_rules! lap {
            ($m:expr) => {
                if timing {
                    eprintln!("[scheme {:>8.2}s] {}", started.elapsed().as_secs_f64(), $m);
                }
            };
        }

        // ---- per-(u, i) classification and centers -------------------
        let mut plans: Vec<Vec<LevelPlan>> = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let u_id = NodeId(u);
            let mut row = Vec::with_capacity(k);
            for i in 0..k {
                let a = dec.a(u_id, i);
                let dense = level_is_dense(&dec, u_id, i, &params);
                let center = if dense {
                    u32::MAX
                } else {
                    src.center(&hier, u_id, dec.ball_radius(u_id, i))
                };
                row.push(LevelPlan { dense, a, center, b: 1 });
            }
            plans.push(row);
        }

        lap!("plans+centers");
        // ---- instance-tuned S budgets (see DESIGN.md) ----------------
        // Level-0 positions for the on-demand source: batched bounded
        // Dijkstras, one per queried node, covering every (v, center)
        // pair the local scopes produce.
        let pos0 = match &src {
            BuildSource::Dense { .. } => HashMap::new(),
            BuildSource::OnDemand { .. } => Self::level0_positions(&g, &hier, &plans, &scopes, n),
        };
        let position_of = |v: u32, l: usize, c: u32| -> usize {
            if l == 0 {
                if let BuildSource::OnDemand { .. } = &src {
                    return pos0[&pos0_key(v, c)];
                }
            }
            src.position(NodeId(v), l, c)
        };
        let mut budgets = vec![1usize; k];
        // max position over all of V, per global center (memoized:
        // many nodes share the same capped-level center).
        let mut global_max: HashMap<u32, usize> = HashMap::new();
        for u in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                let plan = plans[u as usize][i];
                let Some(scope) = &scopes[u as usize][i] else { continue };
                debug_assert!(!plan.dense);
                let c = plan.center;
                let l = hier.rank(NodeId(c));
                match scope {
                    EScope::Global => {
                        let p = *global_max
                            .entry(c)
                            .or_insert_with(|| Self::max_position_over_v(&g, &src, n, l, c));
                        budgets[l] = budgets[l].max(p + 1 + params.s_margin);
                    }
                    EScope::Local(list) => {
                        for &(v, _) in list {
                            let pos = position_of(v, l, c);
                            budgets[l] = budgets[l].max(pos + 1 + params.s_margin);
                        }
                    }
                }
            }
        }
        // Never exceed the paper's budget (it is the proven bound).
        let paper_budget = hier.s_budget();
        for b in &mut budgets {
            *b = (*b).min(paper_budget);
        }
        stats.s_budgets = budgets.clone();
        lap!(format!("budgets {budgets:?}"));

        // ---- landmark trees for the distinct centers -----------------
        // membership: v stores τ(T(c), v) iff c ∈ S(v) under the tuned
        // budgets, i.e. c is among the first budgets[rank(c)] members of
        // v's sorted C_{rank(c)} list.
        let mut centers: Vec<u32> =
            plans.iter().flatten().filter(|p| !p.dense).map(|p| p.center).collect();
        centers.sort_unstable();
        centers.dedup();
        let members_of = Self::center_members(&g, &src, &hier, &centers, &budgets, n);
        lap!(format!(
            "members ({} centers, {} total members)",
            centers.len(),
            members_of.values().map(|m| m.len()).sum::<usize>()
        ));
        let sigma = graphkit::ids::nth_root_ceil(n as u64, k as u32).max(2);
        let center_trees =
            Self::build_center_trees(&g, &src, &params, &centers, &members_of, sigma);
        stats.num_center_trees = center_trees.len();
        lap!("center trees");

        // ---- b(u, i) + Lemma 3 verification --------------------------
        for u in 0..n as u32 {
            #[allow(clippy::needless_range_loop)] // parallel-array indexing by level
            for i in 0..k {
                let plan = plans[u as usize][i];
                let Some(scope) = &scopes[u as usize][i] else { continue };
                let ct = &center_trees[&plan.center];
                let mut b = 1usize;
                match scope {
                    EScope::Global => {
                        // E(u,i) = V: every non-member is a Lemma 3
                        // violation, and the members' worst search
                        // level is a per-tree constant.
                        stats.lemma3_checked += n;
                        let missing = n - ct.ix_of.len();
                        if missing > 0 {
                            stats.lemma3_violations += missing;
                            b = k;
                        } else {
                            b = ct.max_search_level;
                        }
                    }
                    EScope::Local(list) => {
                        for &(v, _) in list {
                            stats.lemma3_checked += 1;
                            let ix = ct.ix_of.get(v).unwrap_or(u32::MAX);
                            if ix == u32::MAX {
                                stats.lemma3_violations += 1;
                                b = k; // fall back to the deepest search
                                continue;
                            }
                            let rank = ct.ert.rank(ix) as usize;
                            b = b.max(ct.ert.naming().level_of_rank(rank).max(1));
                        }
                    }
                }
                plans[u as usize][i].b = b.min(k).max(1) as u8;
            }
        }

        // ---- cover trees per dense scale -----------------------------
        let mut scales: Vec<u32> =
            plans.iter().flatten().filter(|p| p.dense).map(|p| p.a).collect();
        scales.sort_unstable();
        scales.dedup();
        let mut scale_covers: HashMap<u32, ScaleCover> = HashMap::new();
        for &s in &scales {
            let members: Vec<u32> =
                (0..n as u32).filter(|&v| dec.in_extended_range(NodeId(v), s)).collect();
            let sub = induced_subgraph(&g, &members);
            let rho = octave_radius(s);
            let cover = covers::build_cover(&sub.graph, k, rho);
            let mut home = vec![u32::MAX; n];
            for (local, &t) in cover.home.iter().enumerate() {
                home[sub.to_host[local] as usize] = t;
            }
            let routers: Vec<CoverEntry> = cover
                .trees
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let host_tree = remap_tree(t, &sub.to_host);
                    let ix: HashMap<u32, TreeIx> = host_tree
                        .graph_ids()
                        .iter()
                        .enumerate()
                        .map(|(i, &gid)| (gid, i as TreeIx))
                        .collect();
                    let router = CoverTreeRouter::new(
                        host_tree,
                        sigma,
                        params.seed ^ ((s as u64) << 32 | ti as u64),
                    );
                    CoverEntry { router, ix }
                })
                .collect();
            stats.num_cover_trees += routers.len();
            scale_covers.insert(s, ScaleCover { routers, home });
        }
        stats.num_scales = scale_covers.len();
        lap!("covers");

        Scheme { g, params, dec, hier, plans, center_trees, scale_covers, stats }
    }

    /// Level-0 position oracle for the on-demand source: group every
    /// `(v, c)` query by `v`, run one bounded Dijkstra per queried
    /// node (radius = its farthest query), and read positions off the
    /// settled `(distance, id)` order.
    fn level0_positions(
        g: &Graph,
        hier: &LandmarkHierarchy,
        plans: &[Vec<LevelPlan>],
        scopes: &[Vec<Option<EScope>>],
        n: usize,
    ) -> HashMap<u64, usize> {
        let mut queries: HashMap<u32, Vec<(u32, Cost)>> = HashMap::new();
        for (u, row) in scopes.iter().enumerate() {
            for (i, scope) in row.iter().enumerate() {
                let Some(EScope::Local(list)) = scope else { continue };
                let c = plans[u][i].center;
                if hier.rank(NodeId(c)) != 0 {
                    continue;
                }
                debug_assert_eq!(c, u as u32, "a rank-0 center is always the node itself");
                for &(v, d_uv) in list {
                    queries.entry(v).or_default().push((c, d_uv));
                }
            }
        }
        let mut keys: Vec<u32> = queries.keys().copied().collect();
        keys.sort_unstable();
        graphkit::metrics::par_chunks(keys.len(), |range| {
            let mut scratch = DijkstraScratch::new(n);
            let mut out = Vec::new();
            for &v in &keys[range] {
                let qs = &queries[&v];
                let radius = qs.iter().map(|&(_, d)| d).max().unwrap_or(0);
                scratch.run(g, NodeId(v), radius, usize::MAX);
                for &(c, d_vc) in qs {
                    out.push((pos0_key(v, c), scratch.position_below((d_vc, c))));
                }
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Max of `position(v, l, c)` over all `v` — the S-budget
    /// contribution of a whole-graph `E(u,i)`. For the on-demand
    /// source at `l = 0` (a rank-0 center whose level capped — only
    /// reachable on instances whose balls dodge every landmark) this
    /// falls back to one full Dijkstra plus per-node bounded runs;
    /// DESIGN.md records it as the construction's worst-case residue.
    fn max_position_over_v(g: &Graph, src: &BuildSource<'_>, n: usize, l: usize, c: u32) -> usize {
        if l == 0 {
            if let BuildSource::OnDemand { .. } = src {
                let row = dijkstra::dijkstra(g, NodeId(c)).dist;
                return graphkit::metrics::par_chunks(n, |nodes| {
                    let mut scratch = DijkstraScratch::new(n);
                    let mut best = 0usize;
                    for v in nodes {
                        let d_vc = row[v];
                        scratch.run(g, NodeId(v as u32), d_vc, usize::MAX);
                        best = best.max(scratch.position_below((d_vc, c)));
                    }
                    best
                })
                .into_iter()
                .max()
                .unwrap_or(0);
            }
        }
        (0..n as u32).map(|v| src.position(NodeId(v), l, c)).max().unwrap_or(0)
    }

    /// Members `{v : c ∈ S(v)}` of every distinct center's tree, with
    /// `d(v, c)` attached (the bounded tree Dijkstra's radius).
    fn center_members(
        g: &Graph,
        src: &BuildSource<'_>,
        hier: &LandmarkHierarchy,
        centers: &[u32],
        budgets: &[usize],
        n: usize,
    ) -> HashMap<u32, Vec<(u32, Cost)>> {
        let mut members_of: HashMap<u32, Vec<(u32, Cost)>> =
            centers.iter().map(|&c| (c, Vec::new())).collect();
        match src {
            BuildSource::Dense { .. } => {
                for &c in centers {
                    let l = hier.rank(NodeId(c));
                    let members = members_of.get_mut(&c).expect("preseeded");
                    for v in 0..n as u32 {
                        if src.position(NodeId(v), l, c) < budgets[l] {
                            members.push((v, src.dist_to_center(NodeId(v), l, c)));
                        }
                    }
                }
            }
            BuildSource::OnDemand { .. } => {
                // Rank ≥ 1: positions straight off the landmark columns.
                for &c in centers {
                    let l = hier.rank(NodeId(c));
                    if l == 0 {
                        continue;
                    }
                    let members = members_of.get_mut(&c).expect("preseeded");
                    for v in 0..n as u32 {
                        if src.position(NodeId(v), l, c) < budgets[l] {
                            members.push((v, src.dist_to_center(NodeId(v), l, c)));
                        }
                    }
                }
                // Rank 0: c ∈ S(v) ⟺ c is among v's budgets[0]
                // closest nodes — one size-capped Dijkstra per node
                // yields every rank-0 membership at once.
                let rank0: std::collections::HashSet<u32> =
                    centers.iter().copied().filter(|&c| hier.rank(NodeId(c)) == 0).collect();
                if !rank0.is_empty() {
                    let b0 = budgets[0];
                    let shards = graphkit::metrics::par_chunks(n, |nodes| {
                        let mut scratch = DijkstraScratch::new(n);
                        let mut out = Vec::new();
                        for v in nodes {
                            scratch.run(g, NodeId(v as u32), INFINITY - 1, b0);
                            for &(dist, w) in scratch.settled() {
                                if rank0.contains(&w) {
                                    out.push((w, v as u32, dist));
                                }
                            }
                        }
                        out
                    });
                    // Shards come back in v-ascending order; concatenate
                    // in order so member lists stay id-ascending.
                    for shard in shards {
                        for (c, v, dist) in shard {
                            members_of.get_mut(&c).expect("rank-0 center").push((v, dist));
                        }
                    }
                }
            }
        }
        members_of
    }

    /// One landmark tree per distinct center: shortest-path tree over
    /// the membership, Lemma 4 scheme attached. The dense source runs
    /// full Dijkstras (as before); the on-demand source bounds each
    /// run by the farthest member, so a small tree costs its ball.
    fn build_center_trees(
        g: &Graph,
        src: &BuildSource<'_>,
        params: &SchemeParams,
        centers: &[u32],
        members_of: &HashMap<u32, Vec<(u32, Cost)>>,
        sigma: u64,
    ) -> HashMap<u32, CenterTree> {
        let n = g.n();
        let k = params.k;
        let bounded = matches!(src, BuildSource::OnDemand { .. });
        graphkit::metrics::par_chunks(centers.len(), |range| {
            let mut scratch = DijkstraScratch::new(n);
            let mut out = Vec::with_capacity(range.len());
            for &c in &centers[range] {
                let members = &members_of[&c];
                let radius = if bounded {
                    members.iter().map(|&(_, dist)| dist).max().unwrap_or(0)
                } else {
                    INFINITY - 1
                };
                scratch.run(g, NodeId(c), radius, usize::MAX);
                let tree = Tree::from_dist_parents(
                    g,
                    NodeId(c),
                    scratch.dists(),
                    scratch.parents(),
                    members.iter().map(|&(v, _)| NodeId(v)),
                );
                let ix_of = IdIndex::from_graph_ids(tree.graph_ids());
                let ert = ErrorReportingTree::with_sigma(
                    tree,
                    k,
                    sigma,
                    params.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let max_search_level = (0..ert.labeled().tree().size())
                    .map(|r| ert.naming().level_of_rank(r).max(1))
                    .max()
                    .unwrap_or(1);
                out.push((c, CenterTree { ert, ix_of, max_search_level }));
            }
            out
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Construction parameters.
    pub fn params(&self) -> &SchemeParams {
        &self.params
    }

    /// Preprocessing diagnostics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The decomposition (exposed for experiments F1/F2/A1).
    pub fn decomposition(&self) -> &Decomposition {
        &self.dec
    }

    /// The landmark hierarchy (exposed for experiments C1/C2).
    pub fn hierarchy(&self) -> &LandmarkHierarchy {
        &self.hier
    }

    /// Route a message (§3.7): phases `i = 0..k`, each using the dense
    /// or sparse strategy of level `i`, until the destination is found.
    pub fn route_message(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        if src == dst {
            return RouteTrace::trivial(src);
        }
        let mut path = vec![src];
        let mut cost: Cost = 0;
        for i in 0..self.params.k {
            let plan = self.plans[src.idx()][i];
            let found = if plan.dense {
                self.dense_phase(src, dst, plan, &mut path, &mut cost)
            } else {
                self.sparse_phase(src, dst, plan, &mut path, &mut cost)
            };
            if found {
                return RouteTrace { path, cost, delivered: true };
            }
            debug_assert_eq!(*path.last().unwrap(), src, "phase must end at the source");
        }
        RouteTrace { path, cost, delivered: false }
    }

    /// Dense strategy (§3.6): look up `dst` in the home cover tree
    /// `W(u, i)` at scale `a(u, i)`. Returns true when delivered.
    fn dense_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        let sc = &self.scale_covers[&plan.a];
        let home = sc.home[src.idx()];
        debug_assert_ne!(home, u32::MAX, "source must participate at its own scale");
        let entry = &sc.routers[home as usize];
        let from = entry.ix[&src.0];
        let (outcome, tpath) = entry.router.route(from, dst);
        append_tree_path(entry.router.labeled().tree(), &tpath, path);
        *cost += outcome.cost();
        matches!(outcome, CoverOutcome::Found { .. })
    }

    /// Sparse strategy (§3.3): climb to the center `c(u, i)`, run a
    /// `b(u, i)`-bounded search on `T(c(u, i))`, and come back on a miss.
    fn sparse_phase(
        &self,
        src: NodeId,
        dst: NodeId,
        plan: LevelPlan,
        path: &mut Vec<NodeId>,
        cost: &mut Cost,
    ) -> bool {
        let ct = &self.center_trees[&plan.center];
        let tree = ct.ert.labeled().tree();
        let src_ix = ct.ix_of.get(src.0).unwrap_or(u32::MAX);
        debug_assert_ne!(src_ix, u32::MAX, "source must be in its own center's tree");
        // Climb to the root along tree parents.
        let mut climb = vec![src_ix];
        let mut at = src_ix;
        while let Some(p) = tree.parent(at) {
            *cost += tree.parent_weight(at);
            at = p;
            climb.push(at);
        }
        append_tree_path(tree, &climb, path);
        // Bounded search from the root.
        let (outcome, tpath) = ct.ert.search(dst, plan.b as usize);
        append_tree_path(tree, &tpath, path);
        *cost += outcome.cost();
        match outcome {
            SearchOutcome::Found { .. } => true,
            SearchOutcome::NotFound { .. } => {
                // Back down to the source for the next phase.
                for &t in climb.iter().rev().skip(1) {
                    *cost += tree.parent_weight(t);
                    path.push(tree.graph_id(t));
                }
                false
            }
        }
    }

    /// Evaluate this scheme over `pairs` with the parallel engine
    /// (`threads` = 0 → available parallelism), against any
    /// [`GroundTruth`] — the dense matrix used at build time or an
    /// on-demand truth for larger workloads. Results are bit-identical
    /// to sequential [`sim::evaluate`].
    pub fn evaluate(
        &self,
        truth: &(dyn GroundTruth + Sync),
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> StretchStats {
        sim::evaluate_parallel(&self.g, truth, self, pairs, threads)
    }

    /// Storage bits at node `v`: level plans, landmark-tree state
    /// `τ(T(c), v)` for every tree containing `v`, and cover-tree state
    /// `φ(T, v)` plus the home-root pointer for every scale in `R(v)`.
    pub fn storage_bits(&self, v: NodeId) -> u64 {
        self.storage_breakdown(v).total()
    }

    /// Storage bits at `v`, split by component (experiment T2).
    pub fn storage_breakdown(&self, v: NodeId) -> StorageBreakdown {
        let n = self.g.n();
        let id = bits_for_node(n);
        let mut b = StorageBreakdown {
            // Plans: dense flag + range + center + b per level.
            plans_bits: self.params.k as u64
                * (1 + bits_for_universe(self.dec.log_delta() as u64 + 1)
                    + id
                    + bits_for_universe(self.params.k as u64 + 1)),
            ..Default::default()
        };
        for ct in self.center_trees.values() {
            if let Some(ix) = ct.ix_of.get(v.0) {
                b.landmark_bits += id + ct.ert.node_bits(ix); // center id + τ
            }
        }
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                if let Some(&ix) = entry.ix.get(&v.0) {
                    b.cover_bits += id + entry.router.node_bits(ix); // root id + φ
                }
            }
        }
        b
    }

    /// Theorem 1's per-node bound in explicit form (with the Lemma 11
    /// exponent; see DESIGN.md): `k² · n^{3/k} · log³ n` bits, constant
    /// 64.
    pub fn theorem1_bound(&self) -> f64 {
        let n = self.g.n() as f64;
        let k = self.params.k as f64;
        64.0 * k * k * n.powf(3.0 / k) * n.log2().powi(3)
    }

    /// Worst-case header size in bits — the paper's `Õ(1)` claim made
    /// concrete. A message carries: the destination id, the phase index,
    /// the search round, and (while walking a tree) the largest label of
    /// any tree in the scheme plus a return label for error reporting —
    /// O(log² n) total.
    pub fn header_bits_bound(&self) -> u64 {
        let n = self.g.n();
        let id = bits_for_node(n);
        let phase = bits_for_universe(self.params.k as u64 + 1);
        let mut max_label = 0u64;
        for ct in self.center_trees.values() {
            let lt = ct.ert.labeled();
            for t in 0..lt.tree().size() as u32 {
                max_label = max_label.max(lt.label_bits(t));
            }
        }
        for sc in self.scale_covers.values() {
            for entry in &sc.routers {
                let lt = entry.router.labeled();
                for t in 0..lt.tree().size() as u32 {
                    max_label = max_label.max(lt.label_bits(t));
                }
            }
        }
        id + 2 * phase + 2 * max_label
    }
}

/// Effective dense/sparse classification of level `i` (force-mode
/// aware; used identically by both construction sources).
fn level_is_dense(dec: &Decomposition, u: NodeId, i: usize, params: &SchemeParams) -> bool {
    match params.force_mode {
        None => dec.is_dense(u, i),
        Some(ForceMode::AllDense) => true,
        Some(ForceMode::AllSparse) => false,
    }
}

/// Key for the batched level-0 position map.
#[inline(always)]
fn pos0_key(v: u32, c: u32) -> u64 {
    (v as u64) << 32 | c as u64
}

/// Relabel a tree's node ids through a host map (used to lift subgraph
/// cover trees into host-graph ids).
fn remap_tree(t: &Tree, to_host: &[u32]) -> Tree {
    let ids: Vec<u32> = t.graph_ids().iter().map(|&l| to_host[l as usize]).collect();
    let parents: Vec<u32> = (0..t.size() as u32).map(|x| t.parent(x).unwrap_or(u32::MAX)).collect();
    let weights: Vec<u64> = (0..t.size() as u32).map(|x| t.parent_weight(x)).collect();
    Tree::from_parents(ids, parents, weights)
}

/// Append a tree-index walk to a host-id path, skipping the first node
/// (it must equal the path's current tail).
fn append_tree_path(tree: &Tree, tpath: &[TreeIx], path: &mut Vec<NodeId>) {
    if tpath.is_empty() {
        return;
    }
    debug_assert_eq!(
        tree.graph_id(tpath[0]),
        *path.last().unwrap(),
        "tree walk must continue from the current node"
    );
    for &t in &tpath[1..] {
        path.push(tree.graph_id(t));
    }
}

// The parallel evaluator shards pairs across threads that all borrow
// the scheme; keep the structure free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Scheme>();
};

impl Router for Scheme {
    fn route(&self, src: NodeId, dst: NodeId) -> RouteTrace {
        self.route_message(src, dst)
    }

    fn name(&self) -> &str {
        "agm-scale-free"
    }

    fn node_storage_bits(&self, v: NodeId) -> u64 {
        self.storage_bits(v)
    }
}
