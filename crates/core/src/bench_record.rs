//! Machine-readable construction-benchmark records — the schema behind
//! the checked-in `BENCH_construction.json`.
//!
//! The workspace has no JSON dependency (offline container), so the
//! small fixed schema is rendered and scanned by hand. The `sc`
//! experiment emits records after each Theorem-1 build; the CI
//! construction smoke (`examples/build_100k.rs`) compares its peak RSS
//! against the checked-in baseline and fails on a >2× regression.

use crate::BuildStats;

/// One Theorem-1 construction datapoint.
#[derive(Clone, Debug)]
pub struct ConstructionRecord {
    /// Graph size (nodes).
    pub n: usize,
    /// Trade-off parameter.
    pub k: usize,
    /// Worker-thread cap the build ran under (0 = auto).
    pub threads: usize,
    /// End-to-end scheme build wall clock.
    pub build_seconds: f64,
    /// `VmHWM` after the build, in KiB (0 where procfs is unavailable).
    pub peak_rss_kib: u64,
    /// Distinct centers (= landmark trees built).
    pub num_center_trees: usize,
    /// Total landmark-tree memberships.
    pub total_members: usize,
    /// Effective S-set budget per landmark level.
    pub s_budgets: Vec<usize>,
    /// Per-phase wall clock, in pipeline order (`BuildStats::phase_seconds`).
    pub phase_seconds: Vec<(String, f64)>,
}

impl ConstructionRecord {
    /// Snapshot a record from a finished build (peak RSS read from
    /// procfs at call time, so collect right after the build).
    pub fn collect(
        n: usize,
        k: usize,
        threads: usize,
        build_seconds: f64,
        stats: &BuildStats,
    ) -> Self {
        ConstructionRecord {
            n,
            k,
            threads,
            build_seconds,
            peak_rss_kib: graphkit::metrics::peak_rss_kib().unwrap_or(0),
            num_center_trees: stats.num_center_trees,
            total_members: stats.total_members,
            s_budgets: stats.s_budgets.clone(),
            phase_seconds: stats.phase_seconds.clone(),
        }
    }

    fn to_json(&self) -> String {
        let budgets: Vec<String> = self.s_budgets.iter().map(|b| b.to_string()).collect();
        let phases: Vec<String> =
            self.phase_seconds.iter().map(|(name, s)| format!("\"{name}\": {s:.3}")).collect();
        format!(
            "    {{\n      \"n\": {},\n      \"k\": {},\n      \"threads\": {},\n      \
             \"build_seconds\": {:.3},\n      \"peak_rss_kib\": {},\n      \
             \"num_center_trees\": {},\n      \"total_members\": {},\n      \
             \"s_budgets\": [{}],\n      \"phase_seconds\": {{{}}}\n    }}",
            self.n,
            self.k,
            self.threads,
            self.build_seconds,
            self.peak_rss_kib,
            self.num_center_trees,
            self.total_members,
            budgets.join(", "),
            phases.join(", "),
        )
    }
}

/// Render the full `BENCH_construction.json` document.
pub fn render_json(records: &[ConstructionRecord]) -> String {
    let body: Vec<String> = records.iter().map(|r| r.to_json()).collect();
    format!(
        "{{\n  \"benchmark\": \"agm-theorem1-construction\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// Scan a `BENCH_construction.json` document for the record with the
/// given `n` and return a numeric field of it (fields are rendered in
/// fixed order with `n` first, so the next occurrence of `key` after
/// the `n` anchor belongs to that record).
fn baseline_field<'a>(json: &'a str, n: usize, key: &str) -> Option<&'a str> {
    let anchor = format!("\"n\": {n},");
    let at = json.find(&anchor)?;
    let rest = &json[at + anchor.len()..];
    let needle = format!("\"{key}\": ");
    let kat = rest.find(&needle)?;
    let val = &rest[kat + needle.len()..];
    let end = val.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(val.len());
    Some(&val[..end])
}

/// The checked-in baseline's peak RSS (KiB) at graph size `n`.
pub fn baseline_peak_rss_kib(json: &str, n: usize) -> Option<u64> {
    baseline_field(json, n, "peak_rss_kib")?.parse().ok()
}

/// The checked-in baseline's build wall clock (seconds) at graph size `n`.
pub fn baseline_build_seconds(json: &str, n: usize) -> Option<f64> {
    baseline_field(json, n, "build_seconds")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let records = vec![
            ConstructionRecord {
                n: 10_000,
                k: 2,
                threads: 1,
                build_seconds: 12.345,
                peak_rss_kib: 400_000,
                num_center_trees: 9_000,
                total_members: 1_000_000,
                s_budgets: vec![60, 40],
                phase_seconds: vec![("plans".into(), 1.0), ("budgets".into(), 2.5)],
            },
            ConstructionRecord {
                n: 50_000,
                k: 2,
                threads: 0,
                build_seconds: 222.5,
                peak_rss_kib: 2_000_000,
                num_center_trees: 45_000,
                total_members: 9_000_000,
                s_budgets: vec![80, 50],
                phase_seconds: vec![("plans".into(), 5.0)],
            },
        ];
        render_json(&records)
    }

    #[test]
    fn roundtrip_per_size() {
        let json = sample();
        assert_eq!(baseline_peak_rss_kib(&json, 10_000), Some(400_000));
        assert_eq!(baseline_peak_rss_kib(&json, 50_000), Some(2_000_000));
        assert_eq!(baseline_build_seconds(&json, 50_000), Some(222.5));
        assert_eq!(baseline_peak_rss_kib(&json, 99), None);
    }

    #[test]
    fn rendered_document_shape() {
        let json = sample();
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"agm-theorem1-construction\""));
        assert!(json.contains("\"phase_seconds\": {\"plans\": 1.000, \"budgets\": 2.500}"));
    }
}
