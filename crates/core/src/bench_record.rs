//! Machine-readable benchmark records — the schema behind the
//! checked-in `BENCH_<topic>.json` documents.
//!
//! The workspace has no JSON dependency (offline container), so
//! records are rendered and scanned by hand through a small generic
//! layer: a [`TopicRecord`] is an ordered list of typed fields, and
//! [`render_topic_json`] renders any list of them as a
//! `BENCH_<topic>.json` document. Three concrete schemas ride on it:
//!
//! * [`ConstructionRecord`] → `BENCH_construction.json` (the `sc`
//!   experiment; the CI construction smoke compares its peak RSS
//!   against the checked-in baseline and fails on a >2× regression);
//! * [`ServingRecord`] → `BENCH_serving.json` (the `serve`
//!   experiment and the CI serving smoke: routes/sec and p50/p99
//!   latency against a loaded snapshot);
//! * [`EvaluationRecord`] → `BENCH_evaluation.json` (the `churn`
//!   experiment: one record per mutate→repair epoch — stale vs
//!   repaired delivery rate and stretch percentiles, plus what the
//!   repair reused).
//!
//! Baseline scanning works on any topic document via
//! [`baseline_value`], anchored on the record's leading `"n"` field.

use crate::churn::EpochRow;
use crate::repair::RepairOutcome;
use crate::serve::ServeReport;
use crate::BuildStats;

/// One typed field value of a [`TopicRecord`].
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// An unsigned integer, rendered bare.
    Int(u64),
    /// A float, rendered with three decimals.
    Float(f64),
    /// A list of unsigned integers.
    IntList(Vec<u64>),
    /// An ordered string→float map (e.g. per-phase seconds).
    FloatMap(Vec<(String, f64)>),
    /// A short enum-like string (rendered quoted; must not need
    /// escaping).
    Str(String),
}

impl FieldValue {
    fn render(&self) -> String {
        match self {
            FieldValue::Int(x) => x.to_string(),
            FieldValue::Float(x) => format!("{x:.3}"),
            FieldValue::Str(s) => format!("\"{s}\""),
            FieldValue::IntList(xs) => {
                let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                format!("[{}]", items.join(", "))
            }
            FieldValue::FloatMap(m) => {
                let items: Vec<String> =
                    m.iter().map(|(k, v)| format!("\"{k}\": {v:.3}")).collect();
                format!("{{{}}}", items.join(", "))
            }
        }
    }
}

/// One benchmark datapoint of any topic: ordered `(key, value)`
/// fields, rendered in insertion order.
#[derive(Clone, Debug, Default)]
pub struct TopicRecord {
    fields: Vec<(String, FieldValue)>,
}

impl TopicRecord {
    /// An empty record.
    pub fn new() -> Self {
        TopicRecord::default()
    }

    /// Append a field (builder-style).
    pub fn field(mut self, key: &str, value: FieldValue) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }
}

/// Render a full `BENCH_<topic>.json` document: a `benchmark` name
/// plus the records in order.
pub fn render_topic_json(benchmark: &str, records: &[TopicRecord]) -> String {
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            let fields: Vec<String> =
                r.fields.iter().map(|(k, v)| format!("      \"{k}\": {}", v.render())).collect();
            format!("    {{\n{}\n    }}", fields.join(",\n"))
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"{benchmark}\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// One Theorem-1 construction datapoint.
#[derive(Clone, Debug)]
pub struct ConstructionRecord {
    /// Graph size (nodes).
    pub n: usize,
    /// Trade-off parameter.
    pub k: usize,
    /// Worker-thread cap the build ran under (0 = auto).
    pub threads: usize,
    /// End-to-end scheme build wall clock.
    pub build_seconds: f64,
    /// `VmHWM` after the build, in KiB (0 where procfs is unavailable).
    pub peak_rss_kib: u64,
    /// Distinct centers (= landmark trees built).
    pub num_center_trees: usize,
    /// Total landmark-tree memberships.
    pub total_members: usize,
    /// Effective S-set budget per landmark level.
    pub s_budgets: Vec<usize>,
    /// Per-phase wall clock, in pipeline order (`BuildStats::phase_seconds`).
    pub phase_seconds: Vec<(String, f64)>,
}

impl ConstructionRecord {
    /// Snapshot a record from a finished build (peak RSS read from
    /// procfs at call time, so collect right after the build).
    pub fn collect(
        n: usize,
        k: usize,
        threads: usize,
        build_seconds: f64,
        stats: &BuildStats,
    ) -> Self {
        ConstructionRecord {
            n,
            k,
            threads,
            build_seconds,
            peak_rss_kib: graphkit::metrics::peak_rss_kib().unwrap_or(0),
            num_center_trees: stats.num_center_trees,
            total_members: stats.total_members,
            s_budgets: stats.s_budgets.clone(),
            phase_seconds: stats.phase_seconds.clone(),
        }
    }

    /// Lower into the generic topic schema (field order is the
    /// document format; never reorder).
    pub fn to_topic(&self) -> TopicRecord {
        TopicRecord::new()
            .field("n", FieldValue::Int(self.n as u64))
            .field("k", FieldValue::Int(self.k as u64))
            .field("threads", FieldValue::Int(self.threads as u64))
            .field("build_seconds", FieldValue::Float(self.build_seconds))
            .field("peak_rss_kib", FieldValue::Int(self.peak_rss_kib))
            .field("num_center_trees", FieldValue::Int(self.num_center_trees as u64))
            .field("total_members", FieldValue::Int(self.total_members as u64))
            .field(
                "s_budgets",
                FieldValue::IntList(self.s_budgets.iter().map(|&b| b as u64).collect()),
            )
            .field("phase_seconds", FieldValue::FloatMap(self.phase_seconds.clone()))
    }
}

/// Render the full `BENCH_construction.json` document.
pub fn render_json(records: &[ConstructionRecord]) -> String {
    let topics: Vec<TopicRecord> = records.iter().map(|r| r.to_topic()).collect();
    render_topic_json("agm-theorem1-construction", &topics)
}

/// One serving datapoint: a snapshot-loaded scheme answering a query
/// batch, optionally next to a baseline router served the same batch.
#[derive(Clone, Debug)]
pub struct ServingRecord {
    /// Graph size (nodes).
    pub n: usize,
    /// Trade-off parameter.
    pub k: usize,
    /// Snapshot file size, bytes.
    pub snapshot_bytes: u64,
    /// Wall clock of `Scheme::load`, seconds.
    pub load_seconds: f64,
    /// The scheme's serve report.
    pub scheme: ServeReport,
    /// The comparison router's report over the same batch (e.g.
    /// shortest-path tables), where one is feasible to build.
    pub baseline: Option<(String, ServeReport)>,
}

impl ServingRecord {
    /// Lower into the generic topic schema.
    pub fn to_topic(&self) -> TopicRecord {
        let serve = |r: TopicRecord, prefix: &str, rep: &ServeReport| {
            r.field(&format!("{prefix}routes_per_sec"), FieldValue::Float(rep.routes_per_sec))
                .field(&format!("{prefix}p50_us"), FieldValue::Float(rep.p50_us))
                .field(&format!("{prefix}p99_us"), FieldValue::Float(rep.p99_us))
        };
        let mut r = TopicRecord::new()
            .field("n", FieldValue::Int(self.n as u64))
            .field("k", FieldValue::Int(self.k as u64))
            .field("queries", FieldValue::Int(self.scheme.queries as u64))
            .field("delivered", FieldValue::Int(self.scheme.delivered as u64))
            .field("threads", FieldValue::Int(self.scheme.threads as u64))
            .field("snapshot_bytes", FieldValue::Int(self.snapshot_bytes))
            .field("load_seconds", FieldValue::Float(self.load_seconds));
        r = serve(r, "", &self.scheme);
        if let Some((name, rep)) = &self.baseline {
            r = r.field(&format!("baseline_{name}_queries"), FieldValue::Int(rep.queries as u64));
            r = serve(r, &format!("baseline_{name}_"), rep);
        }
        r
    }
}

/// Render the full `BENCH_serving.json` document.
pub fn render_serving_json(records: &[ServingRecord]) -> String {
    let topics: Vec<TopicRecord> = records.iter().map(|r| r.to_topic()).collect();
    render_topic_json("agm-theorem1-serving", &topics)
}

/// One churn-epoch datapoint: the stale scheme's degradation on the
/// mutated graph next to the repaired scheme on the same workload,
/// plus how much of the structure the repair reused.
#[derive(Clone, Debug)]
pub struct EvaluationRecord {
    /// Graph size (nodes).
    pub n: usize,
    /// Trade-off parameter.
    pub k: usize,
    /// Epoch index within the schedule (0-based).
    pub epoch: usize,
    /// Deltas applied this epoch.
    pub batch_deltas: usize,
    /// Deltas still outstanding after the repair attempt (nonzero only
    /// while repair defers on a disconnected graph).
    pub pending_deltas: usize,
    /// Delivered fraction of the stale (pre-repair) measurement.
    pub pre_delivery_rate: f64,
    /// Stale stretch percentiles over delivered pairs.
    pub pre_p50_stretch: f64,
    /// Stale 99th-percentile stretch.
    pub pre_p99_stretch: f64,
    /// Stale maximum stretch.
    pub pre_max_stretch: f64,
    /// What repair did: `repaired`, `rebuilt-<reason>`, or
    /// `deferred-<reason>`.
    pub outcome: String,
    /// Nodes whose distance vector changed (zero unless `repaired`).
    pub dirty_nodes: usize,
    /// Center trees rebuilt by the repair (zero unless `repaired`).
    pub trees_rebuilt: usize,
    /// Center trees reused bit-identically (zero unless `repaired`).
    pub trees_reused: usize,
    /// Wall clock of the repair or fallback rebuild (zero while
    /// deferred).
    pub repair_seconds: f64,
    /// Post-repair measurements on the same workload (`None` while
    /// deferred — those fields are omitted from the record).
    pub post_delivery_rate: Option<f64>,
    /// Repaired median stretch.
    pub post_p50_stretch: Option<f64>,
    /// Repaired 99th-percentile stretch.
    pub post_p99_stretch: Option<f64>,
    /// Repaired maximum stretch.
    pub post_max_stretch: Option<f64>,
}

impl EvaluationRecord {
    /// Lower one epoch of a churn run into the record schema.
    pub fn collect(n: usize, k: usize, row: &EpochRow) -> Self {
        let (outcome, dirty_nodes, trees_rebuilt, trees_reused, repair_seconds) = match &row.outcome
        {
            RepairOutcome::Repaired(r) => {
                ("repaired".to_string(), r.dirty_nodes, r.trees_rebuilt, r.trees_reused, r.seconds)
            }
            RepairOutcome::RebuiltFull { reason, seconds } => {
                (format!("rebuilt-{reason:?}").to_lowercase(), 0, 0, 0, *seconds)
            }
            RepairOutcome::Deferred { reason } => {
                (format!("deferred-{reason:?}").to_lowercase(), 0, 0, 0, 0.0)
            }
        };
        EvaluationRecord {
            n,
            k,
            epoch: row.epoch,
            batch_deltas: row.batch_deltas,
            pending_deltas: row.pending_deltas,
            pre_delivery_rate: row.pre_delivery_rate(),
            pre_p50_stretch: row.pre.p50_stretch,
            pre_p99_stretch: row.pre.p99_stretch,
            pre_max_stretch: row.pre.max_stretch,
            outcome,
            dirty_nodes,
            trees_rebuilt,
            trees_reused,
            repair_seconds,
            post_delivery_rate: row.post_delivery_rate(),
            post_p50_stretch: row.post.as_ref().map(|s| s.p50_stretch),
            post_p99_stretch: row.post.as_ref().map(|s| s.p99_stretch),
            post_max_stretch: row.post.as_ref().map(|s| s.max_stretch),
        }
    }

    /// Lower into the generic topic schema (field order is the
    /// document format; never reorder). Post-repair fields are present
    /// only when repair ran this epoch.
    pub fn to_topic(&self) -> TopicRecord {
        let mut r = TopicRecord::new()
            .field("n", FieldValue::Int(self.n as u64))
            .field("k", FieldValue::Int(self.k as u64))
            .field("epoch", FieldValue::Int(self.epoch as u64))
            .field("batch_deltas", FieldValue::Int(self.batch_deltas as u64))
            .field("pending_deltas", FieldValue::Int(self.pending_deltas as u64))
            .field("pre_delivery_rate", FieldValue::Float(self.pre_delivery_rate))
            .field("pre_p50_stretch", FieldValue::Float(self.pre_p50_stretch))
            .field("pre_p99_stretch", FieldValue::Float(self.pre_p99_stretch))
            .field("pre_max_stretch", FieldValue::Float(self.pre_max_stretch))
            .field("outcome", FieldValue::Str(self.outcome.clone()))
            .field("dirty_nodes", FieldValue::Int(self.dirty_nodes as u64))
            .field("trees_rebuilt", FieldValue::Int(self.trees_rebuilt as u64))
            .field("trees_reused", FieldValue::Int(self.trees_reused as u64))
            .field("repair_seconds", FieldValue::Float(self.repair_seconds));
        if let (Some(rate), Some(p50), Some(p99), Some(max)) = (
            self.post_delivery_rate,
            self.post_p50_stretch,
            self.post_p99_stretch,
            self.post_max_stretch,
        ) {
            r = r
                .field("post_delivery_rate", FieldValue::Float(rate))
                .field("post_p50_stretch", FieldValue::Float(p50))
                .field("post_p99_stretch", FieldValue::Float(p99))
                .field("post_max_stretch", FieldValue::Float(max));
        }
        r
    }
}

/// Render the full `BENCH_evaluation.json` document.
pub fn render_evaluation_json(records: &[EvaluationRecord]) -> String {
    let topics: Vec<TopicRecord> = records.iter().map(|r| r.to_topic()).collect();
    render_topic_json("agm-theorem1-evaluation", &topics)
}

/// Scan a rendered topic document for the record whose `anchor` field
/// (rendered first, e.g. `"n"`) equals `anchor_val`, and return the
/// raw text of `key` within that record (fields render in fixed
/// order, so the next occurrence of `key` after the anchor belongs to
/// that record).
pub fn baseline_value<'a>(
    json: &'a str,
    anchor: &str,
    anchor_val: u64,
    key: &str,
) -> Option<&'a str> {
    let anchor = format!("\"{anchor}\": {anchor_val},");
    let at = json.find(&anchor)?;
    let rest = &json[at + anchor.len()..];
    let needle = format!("\"{key}\": ");
    let kat = rest.find(&needle)?;
    let val = &rest[kat + needle.len()..];
    let end = val.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(val.len());
    Some(&val[..end])
}

/// The checked-in baseline's peak RSS (KiB) at graph size `n`.
pub fn baseline_peak_rss_kib(json: &str, n: usize) -> Option<u64> {
    baseline_value(json, "n", n as u64, "peak_rss_kib")?.parse().ok()
}

/// The checked-in baseline's build wall clock (seconds) at graph size `n`.
pub fn baseline_build_seconds(json: &str, n: usize) -> Option<f64> {
    baseline_value(json, "n", n as u64, "build_seconds")?.parse().ok()
}

/// Every value the `anchor` field takes across a rendered topic
/// document, in record order — one entry per record.
pub fn baseline_anchors(json: &str, anchor: &str) -> Vec<u64> {
    let needle = format!("\"{anchor}\": ");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let val = &rest[at + needle.len()..];
        let end = val.find(|c: char| !c.is_ascii_digit()).unwrap_or(val.len());
        if let Ok(v) = val[..end].parse() {
            out.push(v);
        }
        rest = &val[end..];
    }
    out
}

/// The anchor value of the record closest to `n` (ties break low) —
/// the gating anchor when the current run's exact size has no
/// checked-in epoch.
pub fn baseline_nearest_anchor(json: &str, anchor: &str, n: u64) -> Option<u64> {
    baseline_anchors(json, anchor).into_iter().min_by_key(|&a| (a.abs_diff(n), a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let records = vec![
            ConstructionRecord {
                n: 10_000,
                k: 2,
                threads: 1,
                build_seconds: 12.345,
                peak_rss_kib: 400_000,
                num_center_trees: 9_000,
                total_members: 1_000_000,
                s_budgets: vec![60, 40],
                phase_seconds: vec![("plans".into(), 1.0), ("budgets".into(), 2.5)],
            },
            ConstructionRecord {
                n: 50_000,
                k: 2,
                threads: 0,
                build_seconds: 222.5,
                peak_rss_kib: 2_000_000,
                num_center_trees: 45_000,
                total_members: 9_000_000,
                s_budgets: vec![80, 50],
                phase_seconds: vec![("plans".into(), 5.0)],
            },
        ];
        render_json(&records)
    }

    #[test]
    fn roundtrip_per_size() {
        let json = sample();
        assert_eq!(baseline_peak_rss_kib(&json, 10_000), Some(400_000));
        assert_eq!(baseline_peak_rss_kib(&json, 50_000), Some(2_000_000));
        assert_eq!(baseline_build_seconds(&json, 50_000), Some(222.5));
        assert_eq!(baseline_peak_rss_kib(&json, 99), None);
    }

    #[test]
    fn nearest_anchor_selection() {
        let json = sample();
        assert_eq!(baseline_anchors(&json, "n"), vec![10_000, 50_000]);
        // Exact hit, nearest-below, nearest-above, and tie-breaks-low.
        assert_eq!(baseline_nearest_anchor(&json, "n", 50_000), Some(50_000));
        assert_eq!(baseline_nearest_anchor(&json, "n", 12_000), Some(10_000));
        assert_eq!(baseline_nearest_anchor(&json, "n", 1_000_000), Some(50_000));
        assert_eq!(baseline_nearest_anchor(&json, "n", 30_000), Some(10_000));
        assert_eq!(baseline_nearest_anchor("{}", "n", 5), None);
    }

    #[test]
    fn rendered_document_shape() {
        let json = sample();
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"benchmark\": \"agm-theorem1-construction\""));
        assert!(json.contains("\"phase_seconds\": {\"plans\": 1.000, \"budgets\": 2.500}"));
    }

    #[test]
    fn arbitrary_topics_render_and_scan() {
        // The generalized layer: any topic, any field set, scanned
        // back through the same anchor machinery.
        let rec = TopicRecord::new()
            .field("n", FieldValue::Int(500))
            .field("widgets", FieldValue::Int(7))
            .field("ratio", FieldValue::Float(2.5));
        let json = render_topic_json("agm-widgets", &[rec]);
        assert!(json.contains("\"benchmark\": \"agm-widgets\""));
        assert_eq!(baseline_value(&json, "n", 500, "widgets"), Some("7"));
        assert_eq!(baseline_value(&json, "n", 500, "ratio"), Some("2.500"));
        assert_eq!(baseline_value(&json, "n", 501, "widgets"), None);
    }

    #[test]
    fn serving_record_shape() {
        let report = ServeReport {
            queries: 10_000,
            delivered: 10_000,
            threads: 4,
            elapsed_seconds: 2.0,
            routes_per_sec: 5_000.0,
            p50_us: 150.25,
            p99_us: 900.5,
        };
        let rec = ServingRecord {
            n: 50_000,
            k: 2,
            snapshot_bytes: 123_456_789,
            load_seconds: 1.5,
            scheme: report.clone(),
            baseline: Some(("sp_tables".into(), report)),
        };
        let json = render_serving_json(&[rec]);
        assert!(json.contains("\"benchmark\": \"agm-theorem1-serving\""));
        assert_eq!(baseline_value(&json, "n", 50_000, "queries"), Some("10000"));
        assert_eq!(baseline_value(&json, "n", 50_000, "routes_per_sec"), Some("5000.000"));
        assert_eq!(baseline_value(&json, "n", 50_000, "p99_us"), Some("900.500"));
        assert_eq!(
            baseline_value(&json, "n", 50_000, "baseline_sp_tables_p50_us"),
            Some("150.250")
        );
    }

    #[test]
    fn evaluation_record_shape() {
        let stats = |failures: usize| sim::StretchStats {
            pairs: 200,
            failures,
            max_stretch: 4.0,
            mean_stretch: 1.2,
            p50_stretch: 1.0,
            p99_stretch: 3.5,
            mean_hops: 2.0,
        };
        let repaired = EpochRow {
            epoch: 0,
            batch_deltas: 7,
            pending_deltas: 0,
            pre: stats(10),
            outcome: RepairOutcome::Repaired(crate::RepairReport {
                dirty_nodes: 42,
                trees_rebuilt: 5,
                trees_reused: 95,
                seconds: 1.25,
                ..Default::default()
            }),
            post: Some(stats(0)),
        };
        let deferred = EpochRow {
            epoch: 1,
            batch_deltas: 3,
            pending_deltas: 3,
            pre: stats(20),
            outcome: RepairOutcome::Deferred { reason: crate::DeferReason::Disconnected },
            post: None,
        };
        let records: Vec<EvaluationRecord> =
            [&repaired, &deferred].iter().map(|r| EvaluationRecord::collect(500, 2, r)).collect();
        let json = render_evaluation_json(&records);
        assert!(json.contains("\"benchmark\": \"agm-theorem1-evaluation\""));
        assert_eq!(baseline_value(&json, "epoch", 0, "trees_reused"), Some("95"));
        assert_eq!(baseline_value(&json, "epoch", 0, "post_delivery_rate"), Some("1.000"));
        assert!(json.contains("\"outcome\": \"repaired\""));
        assert!(json.contains("\"outcome\": \"deferred-disconnected\""));
        // Deferred epochs omit the post-repair fields entirely.
        assert_eq!(baseline_value(&json, "epoch", 1, "post_delivery_rate"), None);
        assert_eq!(baseline_value(&json, "epoch", 1, "pre_delivery_rate"), Some("0.900"));
    }
}
