//! Versioned on-disk [`Scheme`] snapshots: build once, serve anywhere.
//!
//! A snapshot is a [`graphkit::wire`] container (magic, format
//! version, checksummed section table) holding every routing-time
//! structure of a scheme in its flat-arena wire form:
//!
//! | section | contents |
//! |---|---|
//! | `META` | construction params, build stats, header accounting |
//! | `GRAPH` | the host graph's CSR arenas |
//! | `DECOMPOSITION` | ranges `a(u, i)` + `⌈log₂Δ⌉` |
//! | `HIERARCHY` | landmark levels `C_0 … C_{k−1}` |
//! | `PLANS` | per-(node, level) plans, SoA |
//! | `LANDMARK_BITS` | per-node landmark storage accounting |
//! | `CENTER_DIR` | center id → extent into `CENTER_TREES` |
//! | `CENTER_TREES` | concatenated Lemma-4 tree records |
//! | `SCALE_COVERS` | per dense scale: home map + Lemma-7 stores |
//!
//! Loading is a decode pass into the same stores routing uses — no
//! Dijkstras, no tree construction, no hashing re-derivation — so a
//! scheme saved by one process and loaded by another routes
//! bit-identically (asserted by `tests/snapshot_parity.rs`).
//!
//! [`Scheme::load`] materializes every center tree in memory;
//! [`Scheme::load_lazy`] leaves the (dominant) center-tree section on
//! disk and serves records through the spill store's FIFO cache — the
//! spill substrate and the snapshot format share their per-record
//! layout, so a spilled build saves by copying record bytes verbatim.
//! Lazy mode trades the one-time section checksum for not reading the
//! section at all; each record decode still validates structurally.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

use decomposition::Decomposition;
use graphkit::wire::{self, Reader, SnapshotReader, SnapshotWriter, Writer};
use graphkit::Graph;
use landmarks::LandmarkHierarchy;
use treeroute::cover_router::{CoverStore, CoverTreeRouter};
use treeroute::laing::ErrorReportingTree;

use crate::center_store::{CenterStore, CenterTree, SpillStore};
use crate::scheme::{
    BuildStats, CoverEntry, ForceMode, HierarchySource, LevelPlan, SBudgetMode, ScaleCover, Scheme,
    SchemeParams,
};

/// Section ids (stable across snapshot versions; never reuse).
const SEC_META: u32 = 1;
const SEC_GRAPH: u32 = 2;
const SEC_DECOMPOSITION: u32 = 3;
const SEC_HIERARCHY: u32 = 4;
const SEC_PLANS: u32 = 5;
const SEC_LANDMARK_BITS: u32 = 6;
const SEC_CENTER_DIR: u32 = 7;
const SEC_CENTER_TREES: u32 = 8;
const SEC_SCALE_COVERS: u32 = 9;

impl Scheme {
    /// Write the scheme to `path` as a versioned snapshot. The output
    /// is byte-deterministic: every keyed collection is serialized in
    /// sorted key order.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut sw = SnapshotWriter::create(path)?;

        sw.section(SEC_META, &self.encode_meta())?;

        let mut w = Writer::new();
        self.g.to_wire(&mut w);
        sw.section(SEC_GRAPH, &w.into_bytes())?;

        let mut w = Writer::new();
        self.dec.to_wire(&mut w);
        sw.section(SEC_DECOMPOSITION, &w.into_bytes())?;

        let mut w = Writer::new();
        w.u64(self.hier.n() as u64);
        w.u64(self.hier.k() as u64);
        for level in self.hier.levels() {
            w.slice_u32(level);
        }
        sw.section(SEC_HIERARCHY, &w.into_bytes())?;

        sw.section(SEC_PLANS, &self.encode_plans())?;

        let mut w = Writer::new();
        w.slice_u64(&self.landmark_bits);
        sw.section(SEC_LANDMARK_BITS, &w.into_bytes())?;

        // Center trees: streamed payload-by-payload (a spilled store
        // copies record bytes straight from the spill file), with the
        // directory accumulated alongside and written as its own
        // section.
        let centers = self.center_store.centers();
        let mut dir = Writer::new();
        dir.len(centers.len());
        let mut off = 0u64;
        sw.begin_section(SEC_CENTER_TREES);
        for &c in &centers {
            let payload = self.center_store.payload(c)?;
            sw.write(&payload)?;
            dir.u32(c);
            dir.u64(off);
            dir.u32(payload.len() as u32);
            off += payload.len() as u64;
        }
        sw.end_section();
        sw.section(SEC_CENTER_DIR, &dir.into_bytes())?;

        let mut w = Writer::new();
        // lint:allow(deterministic-output): keys are collected then sorted on the next line before any write
        let mut scales: Vec<u32> = self.scale_covers.keys().copied().collect();
        scales.sort_unstable();
        w.len(scales.len());
        for &s in &scales {
            let sc = &self.scale_covers[&s];
            w.u32(s);
            w.slice_u32(&sc.home);
            w.len(sc.routers.len());
            for entry in &sc.routers {
                entry.router.store().to_wire(&mut w);
            }
        }
        sw.section(SEC_SCALE_COVERS, &w.into_bytes())?;

        sw.finish()
    }

    /// Load a snapshot with every center tree resident in memory (the
    /// serving default: no disk reads on the route path). Every
    /// section is checksum-verified before decoding; center trees
    /// decode in parallel.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Scheme> {
        Self::load_impl(path, false)
    }

    /// Load a snapshot leaving the center-tree records on disk: the
    /// snapshot file itself becomes the spill store's backing file,
    /// and routing reloads records through its FIFO cache. Peak memory
    /// excludes the Õ(n^{1+1/k}) tree state, exactly as a spilled
    /// build does. The center-trees section's checksum is *not*
    /// verified (that would require reading it whole); every other
    /// section is.
    pub fn load_lazy(path: impl AsRef<Path>) -> io::Result<Scheme> {
        Self::load_impl(path, true)
    }

    fn load_impl(path: impl AsRef<Path>, lazy: bool) -> io::Result<Scheme> {
        let sr = SnapshotReader::open(path)?;

        let meta_bytes = sr.section(SEC_META)?;
        let (params, stats, max_center_label_bits) = decode_meta(&mut Reader::new(&meta_bytes))?;
        let k = params.k;

        let graph_bytes = sr.section(SEC_GRAPH)?;
        let g = Graph::from_wire(&mut Reader::new(&graph_bytes))?;
        let n = g.n();

        let dec_bytes = sr.section(SEC_DECOMPOSITION)?;
        let dec = Decomposition::from_wire(&mut Reader::new(&dec_bytes))?;
        if dec.k() != k || dec.n() != n {
            return Err(wire::invalid("decomposition does not match the graph"));
        }

        let hier_bytes = sr.section(SEC_HIERARCHY)?;
        let hier = decode_hierarchy(&mut Reader::new(&hier_bytes), n, k)?;

        let plan_bytes = sr.section(SEC_PLANS)?;
        let plans = decode_plans(&mut Reader::new(&plan_bytes), n, k)?;

        let lb_bytes = sr.section(SEC_LANDMARK_BITS)?;
        let landmark_bits = Reader::new(&lb_bytes).slice_u64()?;
        if landmark_bits.len() != n {
            return Err(wire::invalid("landmark-bits table has wrong length"));
        }

        let dir_bytes = sr.section(SEC_CENTER_DIR)?;
        let dir = decode_center_dir(&mut Reader::new(&dir_bytes))?;
        for row in &plans {
            for p in row {
                if !p.dense && dir.binary_search_by_key(&p.center, |e| e.0).is_err() {
                    return Err(wire::invalid("plan references a center with no tree"));
                }
            }
        }

        let covers_bytes = sr.section(SEC_SCALE_COVERS)?;
        let scale_covers = decode_scale_covers(&mut Reader::new(&covers_bytes), n)?;
        for row in &plans {
            for p in row {
                if p.dense && !scale_covers.contains_key(&p.a) {
                    return Err(wire::invalid("plan references a scale with no cover"));
                }
            }
        }

        let center_store = if lazy {
            let (sec_off, sec_len) = sr.section_range(SEC_CENTER_TREES)?;
            let mut index = HashMap::with_capacity(dir.len());
            for &(c, off, len) in &dir {
                if off.checked_add(len as u64).is_none_or(|end| end > sec_len) {
                    return Err(wire::invalid("center record extends past its section"));
                }
                index.insert(c, (sec_off + off, len));
            }
            CenterStore::Spilled(SpillStore::from_file_index(sr.into_file(), index))
        } else {
            let bytes = sr.section(SEC_CENTER_TREES)?;
            let trees = decode_center_trees(&bytes, &dir)?;
            CenterStore::Memory(trees)
        };

        Ok(Scheme {
            g,
            params,
            dec,
            hier,
            plans,
            center_store,
            landmark_bits,
            max_center_label_bits,
            scale_covers,
            stats,
            repair_state: None,
        })
    }

    fn encode_meta(&self) -> Vec<u8> {
        let p = &self.params;
        let mut w = Writer::new();
        w.u64(p.k as u64);
        w.u64(p.seed);
        w.u32(p.landmark_attempts);
        w.u64(p.s_margin as u64);
        w.u8(match p.force_mode {
            None => 0,
            Some(ForceMode::AllSparse) => 1,
            Some(ForceMode::AllDense) => 2,
        });
        w.u8(match p.hierarchy {
            HierarchySource::SampledVerified => 0,
            HierarchySource::Greedy => 1,
        });
        w.u8(match p.s_budget_mode {
            SBudgetMode::Global => 0,
            SBudgetMode::PerNode => 1,
            SBudgetMode::PerNodeUniform => 2,
        });
        w.u8(p.spill as u8);
        w.u64(self.max_center_label_bits);
        let st = &self.stats;
        w.u64(st.lemma3_violations as u64);
        w.u64(st.lemma3_checked as u64);
        w.u64(st.num_center_trees as u64);
        w.u64(st.num_scales as u64);
        w.u64(st.num_cover_trees as u64);
        w.u64(st.total_members as u64);
        let budgets: Vec<u64> = st.s_budgets.iter().map(|&b| b as u64).collect();
        w.slice_u64(&budgets);
        w.len(st.phase_seconds.len());
        for (name, secs) in &st.phase_seconds {
            w.str(name);
            w.f64(*secs);
        }
        w.into_bytes()
    }

    fn encode_plans(&self) -> Vec<u8> {
        let n = self.g.n();
        let k = self.params.k;
        let mut dense = Vec::with_capacity(n * k);
        let mut a = Vec::with_capacity(n * k);
        let mut center = Vec::with_capacity(n * k);
        let mut b = Vec::with_capacity(n * k);
        for row in &self.plans {
            for p in row {
                dense.push(p.dense as u8);
                a.push(p.a);
                center.push(p.center);
                b.push(p.b);
            }
        }
        let mut w = Writer::new();
        w.u64(n as u64);
        w.u64(k as u64);
        w.slice_u8(&dense);
        w.slice_u32(&a);
        w.slice_u32(&center);
        w.slice_u8(&b);
        w.into_bytes()
    }
}

fn decode_meta(r: &mut Reader<'_>) -> io::Result<(SchemeParams, BuildStats, u64)> {
    let k = r.u64()? as usize;
    let seed = r.u64()?;
    let landmark_attempts = r.u32()?;
    let s_margin = r.u64()? as usize;
    let force_mode = match r.u8()? {
        0 => None,
        1 => Some(ForceMode::AllSparse),
        2 => Some(ForceMode::AllDense),
        _ => return Err(wire::invalid("bad force-mode tag")),
    };
    let hierarchy = match r.u8()? {
        0 => HierarchySource::SampledVerified,
        1 => HierarchySource::Greedy,
        _ => return Err(wire::invalid("bad hierarchy tag")),
    };
    let s_budget_mode = match r.u8()? {
        0 => SBudgetMode::Global,
        1 => SBudgetMode::PerNode,
        2 => SBudgetMode::PerNodeUniform,
        _ => return Err(wire::invalid("bad budget-mode tag")),
    };
    let spill = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(wire::invalid("bad spill tag")),
    };
    if k < 1 {
        return Err(wire::invalid("k must be at least 1"));
    }
    let max_center_label_bits = r.u64()?;
    let mut stats = BuildStats {
        lemma3_violations: r.u64()? as usize,
        lemma3_checked: r.u64()? as usize,
        num_center_trees: r.u64()? as usize,
        num_scales: r.u64()? as usize,
        num_cover_trees: r.u64()? as usize,
        total_members: r.u64()? as usize,
        ..BuildStats::default()
    };
    stats.s_budgets = r.slice_u64()?.into_iter().map(|b| b as usize).collect();
    let phases = r.len()?;
    stats.phase_seconds = (0..phases)
        .map(|_| Ok((r.str()?, r.f64()?)))
        .collect::<io::Result<Vec<(String, f64)>>>()?;
    let params = SchemeParams {
        k,
        seed,
        landmark_attempts,
        s_margin,
        force_mode,
        hierarchy,
        s_budget_mode,
        spill,
        // Repair state is build-time-only and never serialized; a
        // loaded scheme's first repair() falls back to a full rebuild.
        repairable: false,
    };
    Ok((params, stats, max_center_label_bits))
}

fn decode_hierarchy(r: &mut Reader<'_>, n: usize, k: usize) -> io::Result<LandmarkHierarchy> {
    if r.u64()? as usize != n || r.u64()? as usize != k {
        return Err(wire::invalid("hierarchy does not match the graph"));
    }
    let levels = (0..k).map(|_| r.slice_u32()).collect::<io::Result<Vec<Vec<u32>>>>()?;
    LandmarkHierarchy::try_from_levels(n, k, levels).map_err(|msg| wire::invalid(&msg))
}

// lint:allow-fn(panic-free-serve): validate-then-index — all four tables are length-checked against n*k before the loop, and x < n*k
fn decode_plans(r: &mut Reader<'_>, n: usize, k: usize) -> io::Result<Vec<Vec<LevelPlan>>> {
    if r.u64()? as usize != n || r.u64()? as usize != k {
        return Err(wire::invalid("plan table does not match the graph"));
    }
    let dense = r.slice_u8()?;
    let a = r.slice_u32()?;
    let center = r.slice_u32()?;
    let b = r.slice_u8()?;
    if dense.len() != n * k || a.len() != n * k || center.len() != n * k || b.len() != n * k {
        return Err(wire::invalid("plan table has wrong length"));
    }
    let mut plans = Vec::with_capacity(n);
    for u in 0..n {
        let mut row = Vec::with_capacity(k);
        for i in 0..k {
            let x = u * k + i;
            let dense = match dense[x] {
                0 => false,
                1 => true,
                _ => return Err(wire::invalid("bad dense flag")),
            };
            if !dense && center[x] as usize >= n {
                return Err(wire::invalid("plan center out of range"));
            }
            if b[x] < 1 || b[x] as usize > k {
                return Err(wire::invalid("plan search bound out of range"));
            }
            row.push(LevelPlan { dense, a: a[x], center: center[x], b: b[x] });
        }
        plans.push(row);
    }
    Ok(plans)
}

/// `(center, offset-within-section, byte length)`, ascending by center.
fn decode_center_dir(r: &mut Reader<'_>) -> io::Result<Vec<(u32, u64, u32)>> {
    let count = r.len()?;
    let mut dir = Vec::with_capacity(count);
    for _ in 0..count {
        dir.push((r.u32()?, r.u64()?, r.u32()?));
    }
    // lint:allow(panic-free-serve): windows(2) yields exactly-2-element slices, so p[0]/p[1] are in bounds
    if dir.windows(2).any(|p| p[0].0 >= p[1].0) {
        return Err(wire::invalid("center directory is not sorted"));
    }
    Ok(dir)
}

fn decode_center_trees(
    bytes: &[u8],
    dir: &[(u32, u64, u32)],
) -> io::Result<HashMap<u32, Arc<CenterTree>>> {
    for &(_, off, len) in dir {
        if off.checked_add(len as u64).is_none_or(|end| end > bytes.len() as u64) {
            return Err(wire::invalid("center record extends past its section"));
        }
    }
    // merge: one shard per chunk of directory rows, extended into the map in chunk order.
    let shards = graphkit::metrics::par_chunks(dir.len(), |range| {
        range
            .map(|di| {
                // lint:allow(panic-free-serve): di ranges over 0..dir.len() by construction of par_chunks
                let (c, off, len) = dir[di];
                // lint:allow(panic-free-serve): every (off, len) was bounds-checked against the section above
                let record = &bytes[off as usize..off as usize + len as usize];
                let ert = ErrorReportingTree::from_wire(&mut Reader::new(record))?;
                Ok((c, Arc::new(CenterTree::new(ert))))
            })
            .collect::<io::Result<Vec<(u32, Arc<CenterTree>)>>>()
    });
    let mut out = HashMap::with_capacity(dir.len());
    for shard in shards {
        out.extend(shard?);
    }
    Ok(out)
}

fn decode_scale_covers(r: &mut Reader<'_>, n: usize) -> io::Result<HashMap<u32, ScaleCover>> {
    let count = r.len()?;
    let mut out = HashMap::with_capacity(count);
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let s = r.u32()?;
        if prev.is_some_and(|p| p >= s) {
            return Err(wire::invalid("scale covers are not sorted"));
        }
        prev = Some(s);
        let home = r.slice_u32()?;
        if home.len() != n {
            return Err(wire::invalid("cover home map has wrong length"));
        }
        let routers = r.len()?;
        let routers = (0..routers)
            .map(|_| {
                let store = CoverStore::from_wire(r)?;
                Ok(CoverEntry::from_router(CoverTreeRouter::from_store(store)))
            })
            .collect::<io::Result<Vec<CoverEntry>>>()?;
        if home.iter().any(|&h| h != u32::MAX && h as usize >= routers.len()) {
            return Err(wire::invalid("cover home map points past its routers"));
        }
        out.insert(s, ScaleCover { routers, home });
    }
    Ok(out)
}
