//! The serving engine: batched routing lookups sharded across threads.
//!
//! A *serve* workload is the read side of the scheme's lifecycle —
//! no construction, no ground truth, just `route(src, dst)` over a
//! batch of queries against an already-built (typically
//! snapshot-loaded) router. Queries are sharded by source node id, so
//! a query's thread assignment — and therefore the exact interleaving
//! of any store-cache effects — is a function of the workload alone,
//! not of scheduler timing.
//!
//! The engine reports throughput (routes/sec over the batch wall
//! clock) and per-query latency percentiles (p50/p99, microseconds),
//! the numbers `BENCH_serving.json` records.

use graphkit::NodeId;
use sim::Router;

/// Aggregate results of one served batch.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Queries issued.
    pub queries: usize,
    /// Queries whose trace reported delivery.
    pub delivered: usize,
    /// Threads the batch ran on.
    pub threads: usize,
    /// Batch wall clock, seconds.
    pub elapsed_seconds: f64,
    /// `queries / elapsed_seconds`.
    pub routes_per_sec: f64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
}

/// Serve `queries` against `router` on `threads` threads (0 = all
/// available), sharding by `src.0 % threads`. Returns the merged
/// throughput/latency report; per-query results are not retained.
pub fn serve_batch(
    router: &(dyn Router + Sync),
    queries: &[(NodeId, NodeId)],
    threads: usize,
) -> ServeReport {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    };
    let started = std::time::Instant::now();
    let shards: Vec<(usize, Vec<u64>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                scope.spawn(move || {
                    let mut delivered = 0usize;
                    let mut lat_ns = Vec::new();
                    for &(s, t) in queries {
                        if s.0 as usize % threads != tid {
                            continue;
                        }
                        let q0 = std::time::Instant::now();
                        let trace = router.route(s, t);
                        lat_ns.push(q0.elapsed().as_nanos() as u64);
                        delivered += trace.delivered as usize;
                    }
                    (delivered, lat_ns)
                })
            })
            .collect();
        // A panicked worker contributes zero routes: its shard shows
        // up as undelivered queries in the report (visible, bounded
        // damage) instead of taking the whole batch down.
        workers.into_iter().map(|w| w.join().unwrap_or((0, Vec::new()))).collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();
    let mut delivered = 0usize;
    let mut lat_ns = Vec::with_capacity(queries.len());
    for (d, l) in shards {
        delivered += d;
        lat_ns.extend(l);
    }
    lat_ns.sort_unstable();
    ServeReport {
        queries: queries.len(),
        delivered,
        threads,
        elapsed_seconds,
        routes_per_sec: if elapsed_seconds > 0.0 {
            queries.len() as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_us: percentile_us(&lat_ns, 50),
        p99_us: percentile_us(&lat_ns, 99),
    }
}

/// Nearest-rank percentile of sorted nanosecond latencies, in µs.
fn percentile_us(sorted_ns: &[u64], p: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() - 1) * p / 100;
    sorted_ns.get(idx).copied().unwrap_or(0) as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheme, SchemeParams};
    use graphkit::gen::Family;
    use graphkit::metrics::apsp;
    use sim::pairs;

    #[test]
    fn serve_batch_delivers_and_reports() {
        let g = Family::Geometric.generate(100, 0x5E1);
        let d = apsp(&g);
        let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(2, 0x5E1));
        let queries = pairs::sample(g.n(), 500, 0x5E2);
        for threads in [1usize, 3] {
            let report = serve_batch(&scheme, &queries, threads);
            assert_eq!(report.queries, 500);
            assert_eq!(report.delivered, 500, "scheme must deliver every query");
            assert_eq!(report.threads, threads);
            assert!(report.routes_per_sec > 0.0);
            assert!(report.p50_us <= report.p99_us);
        }
    }

    #[test]
    fn sharding_covers_every_query_exactly_once() {
        // Delivered count equals the query count at any thread count —
        // no query is dropped or double-served by the sharding.
        let g = Family::Ring.generate(60, 0x5E3);
        let d = apsp(&g);
        let scheme = Scheme::build_with_matrix(g.clone(), &d, SchemeParams::new(2, 0x5E3));
        let queries = pairs::all(g.n());
        let total = queries.len();
        for threads in [1usize, 2, 5, 16] {
            let report = serve_batch(&scheme, &queries, threads);
            assert_eq!((report.queries, report.delivered), (total, total), "threads={threads}");
        }
    }
}
