//! Incremental repair: patch a built [`Scheme`] after a batch of
//! [`GraphDelta`]s instead of rebuilding it from scratch.
//!
//! ## Strategy (see DESIGN.md §"Churn & incremental repair")
//!
//! The build's cost is wildly skewed: at 50k nodes the per-center tree
//! pipeline is ~96% of assembly, while classification, S budgets,
//! membership, `b(u,i)`, and cover trees are a few percent combined.
//! Repair therefore does not patch the cheap phases — it *recomputes*
//! them on the mutated graph with exactly the code the fresh build
//! runs ([`Scheme::prepare`] and friends), which makes their output
//! bit-identical to a rebuild by construction, with no invalidation
//! logic to get wrong. Only the expensive artifacts carry reuse
//! logic:
//!
//! * **center trees** — a tree `T(c)` is reused iff `c` was a center
//!   before, its member list `(v, d(v, c))` is unchanged, and every
//!   changed edge sits strictly outside the tree's Dijkstra radius
//!   `R(c)` on both the old and new graph
//!   (`prox(c) > R(c)`, where `prox` is the distance from `c` to the
//!   nearest changed-edge endpoint). Under those conditions the
//!   bounded run never relaxes a changed edge, so the fresh tree —
//!   and its Lemma 4 scheme, seeded by `c` alone — is bit-identical
//!   to the stored one;
//! * **cover trees** — a dense scale's whole cover collection is
//!   reused iff its extended-range member set is unchanged and no
//!   changed edge has both endpoints inside it (then the induced
//!   subgraph, and hence the deterministic cover construction, is
//!   identical);
//! * **`b(u,i)`** — copied from the old plans when `u`'s distance
//!   vector is unchanged and its center's tree was reused (same scope,
//!   same tree ⇒ same bounded-search level), recomputed otherwise.
//!
//! Change detection is exact, not heuristic: `graphkit::delta_impact`
//! compares per-endpoint distance columns on the two final graphs,
//! and a node outside its dirty set provably has its *entire*
//! distance vector unchanged — hence the same decomposition row,
//! landmark lists, centers, and sorted positions. This is what makes
//! `repair ≡ rebuild` hold bit-for-bit (asserted across families,
//! `k`, and store types by `tests/repair_parity.rs`).
//!
//! ## Residue cases
//!
//! Repair declines in a few documented situations instead of risking
//! a wrong patch: a scheme without retained
//! [`crate::SchemeParams::repairable`] state, a greedy (matrix-bound)
//! hierarchy, or a delta batch after which the seeded hierarchy
//! re-verification picks a different landmark set — each falls back
//! to a full rebuild and says so. A batch that leaves the graph
//! disconnected is *deferred*: the scheme is left untouched (stale),
//! and the caller accumulates deltas until connectivity returns —
//! `core::churn` leans on this for node-leave/join epochs.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use decomposition::Decomposition;
use graphkit::bits::bits_for_node;
use graphkit::{apply_deltas, delta_impact, dijkstra, Cost, GraphDelta, NodeId, INFINITY};
use landmarks::LandmarkHierarchy;

use crate::center_store::{CenterStore, CenterTree, SpillWriter};
use crate::scheme::{
    b_for_scope, build_center_trees, build_scale_cover, index_and_bits, BuildSource,
    HierarchySource, PhaseClock, Prepared, RepairState, ScaleCover, Scheme, TreeBatch,
};

/// Why repair declined to patch and rebuilt the scheme from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildReason {
    /// The scheme carries no repair state — built without
    /// [`crate::SchemeParams::repairable`] or loaded from a snapshot (which
    /// never serializes it). The rebuild turns `repairable` on, so
    /// subsequent repairs are incremental.
    NotPrepared,
    /// Greedy hierarchies are matrix-bound; the matrix-free repair
    /// machinery cannot reproduce them incrementally.
    GreedyHierarchy,
    /// Re-verifying the seeded landmark hierarchy on the mutated graph
    /// selected a different landmark set (a different sampling attempt
    /// passed Claims 1–2), so every center assignment is suspect and
    /// reuse potential is nil.
    HierarchyChanged,
}

/// Why repair touched nothing at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeferReason {
    /// The mutated graph is disconnected — the Theorem 1 scheme is
    /// only defined on connected graphs. The scheme is unchanged (its
    /// routes are now stale); accumulate further deltas and repair
    /// again once connectivity returns.
    Disconnected,
}

/// Patch statistics for a successful incremental repair.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Distinct edges changed by the delta batch.
    pub changed_edges: usize,
    /// Nodes whose distance vector changed (the exact invalidation
    /// set; everything outside it kept its build state verbatim).
    pub dirty_nodes: usize,
    /// Distinct centers after repair.
    pub centers_total: usize,
    /// Center trees rebuilt (members or nearby edges changed).
    pub trees_rebuilt: usize,
    /// Center trees reused bit-identically.
    pub trees_reused: usize,
    /// Centers that exist now but not before.
    pub centers_added: usize,
    /// Centers that existed before but not now.
    pub centers_removed: usize,
    /// Dense scales whose cover collections were rebuilt.
    pub scales_rebuilt: usize,
    /// Dense scales whose cover collections were reused.
    pub scales_reused: usize,
    /// Sparse `(u, i)` pairs whose `b(u,i)` was re-derived (the rest
    /// copied over; Lemma 3 counters in [`crate::BuildStats`] reflect
    /// only these re-verified pairs after a repair).
    pub b_recomputed: usize,
    /// Wall-clock seconds for the whole repair.
    pub seconds: f64,
}

/// What [`Scheme::repair`] did.
#[derive(Clone, Debug)]
pub enum RepairOutcome {
    /// The scheme was patched in place — bit-identical to a fresh
    /// build on the mutated graph.
    Repaired(RepairReport),
    /// A residue case forced a full rebuild (the scheme is still
    /// correct and current — just not incrementally so).
    RebuiltFull {
        /// Which residue case fired.
        reason: RebuildReason,
        /// Wall-clock seconds for the rebuild.
        seconds: f64,
    },
    /// The scheme was left untouched and is now stale.
    Deferred {
        /// Why nothing could be done yet.
        reason: DeferReason,
    },
}

impl Scheme {
    /// Apply `deltas` to the underlying graph and bring the scheme up
    /// to date, reusing every center tree and cover collection the
    /// batch provably left untouched. On return (except
    /// [`RepairOutcome::Deferred`]) the scheme routes exactly like a
    /// fresh build on the mutated graph.
    ///
    /// Panics on malformed deltas (failing a missing edge, restoring a
    /// present one — see [`GraphDelta`]): delta bookkeeping is the
    /// caller's contract, not a recoverable condition.
    pub fn repair(&mut self, deltas: &[GraphDelta]) -> RepairOutcome {
        let t0 = std::time::Instant::now();
        if deltas.is_empty() {
            return RepairOutcome::Repaired(RepairReport {
                centers_total: self.stats.num_center_trees,
                trees_reused: self.stats.num_center_trees,
                scales_reused: self.stats.num_scales,
                seconds: t0.elapsed().as_secs_f64(),
                ..Default::default()
            });
        }
        let g2 = apply_deltas(&self.g, deltas);
        if dijkstra(&g2, NodeId(0)).dist.contains(&INFINITY) {
            return RepairOutcome::Deferred { reason: DeferReason::Disconnected };
        }
        // Rebuilds keep (or gain) repair state so the *next* repair
        // can be incremental.
        let mut params = self.params;
        params.repairable = true;
        if self.params.hierarchy == HierarchySource::Greedy {
            *self = Scheme::build(g2, params);
            return RepairOutcome::RebuiltFull {
                reason: RebuildReason::GreedyHierarchy,
                seconds: t0.elapsed().as_secs_f64(),
            };
        }
        if self.repair_state.is_none() {
            *self = Scheme::build_on_demand(g2, params);
            return RepairOutcome::RebuiltFull {
                reason: RebuildReason::NotPrepared,
                seconds: t0.elapsed().as_secs_f64(),
            };
        }

        // ---- fresh cheap phases on the mutated graph -----------------
        let n = g2.n();
        let k = params.k;
        let diameter2 = graphkit::diameter_matrix_free(&g2);
        let dec2 = Decomposition::build_on_demand_with_diameter(&g2, k, diameter2);
        let (hier2, ld2) = LandmarkHierarchy::sample_verified_on_demand(
            &g2,
            k,
            params.seed,
            params.landmark_attempts,
            diameter2,
        );
        if hier2.levels() != self.hier.levels() {
            *self = Scheme::build_on_demand_parts(g2, params, dec2, hier2, ld2);
            return RepairOutcome::RebuiltFull {
                reason: RebuildReason::HierarchyChanged,
                seconds: t0.elapsed().as_secs_f64(),
            };
        }
        let impact = delta_impact(&self.g, &g2, deltas);
        let scopes2 = Scheme::on_demand_scopes(&g2, &dec2, &params, n);
        let src = BuildSource::OnDemand { ld: ld2 };
        let mut clock = PhaseClock::start();
        let Prepared { mut plans, centers, members, s_budgets } =
            Scheme::prepare(&g2, &params, &dec2, &hier2, &src, &scopes2, &mut clock);

        // ---- center-tree reuse classification ------------------------
        // Checked at entry; kept as a non-panicking guard so a logic
        // regression degrades to the same full rebuild, not a crash.
        let Some(state) = self.repair_state.as_ref() else {
            *self = Scheme::build_on_demand(g2, params);
            return RepairOutcome::RebuiltFull {
                reason: RebuildReason::NotPrepared,
                seconds: t0.elapsed().as_secs_f64(),
            };
        };
        let mut reused = vec![false; centers.len()];
        let mut jobs: Vec<(u32, &[(u32, Cost)])> = Vec::new();
        let mut centers_added = 0usize;
        for (ci, &c) in centers.iter().enumerate() {
            let mem = members.members(ci);
            match state.centers.binary_search(&c) {
                Ok(oci) if state.members.members(oci) == mem => {
                    let r = mem.iter().map(|&(_, d)| d).max().unwrap_or(0);
                    if impact.old_prox[c as usize] > r && impact.new_prox[c as usize] > r {
                        reused[ci] = true;
                    } else {
                        jobs.push((c, mem));
                    }
                }
                Ok(_) => jobs.push((c, mem)),
                Err(_) => {
                    centers_added += 1;
                    jobs.push((c, mem));
                }
            }
        }
        let removed: Vec<u32> =
            state.centers.iter().copied().filter(|c| centers.binary_search(c).is_err()).collect();
        let rebuilt_old: Vec<u32> = jobs
            .iter()
            .map(|&(c, _)| c)
            .filter(|c| state.centers.binary_search(c).is_ok())
            .collect();
        let trees_rebuilt = jobs.len();
        let trees_reused = centers.len() - trees_rebuilt;

        // ---- rebuild invalidated trees; splice the store -------------
        // Repair always runs the bounded (matrix-free) tree pipeline;
        // for dense-built schemes this is bit-identical output (the
        // bounded run settles every member exactly as the full run's
        // ≤-radius prefix does — the same dense ≡ on-demand invariant
        // tests/proptest_on_demand.rs asserts for whole builds).
        // Spill-file creation failing (tmpdir full or unwritable)
        // degrades to the resident store: higher peak memory, same
        // routing.
        let spill = params.spill.then(SpillWriter::create).and_then(Result::ok);
        let batch = build_center_trees(&g2, &params, &jobs, true, spill.as_ref());
        drop(jobs);
        let TreeBatch { built, bix: mut bix2, lm_bits: batch_bits, labels: batch_labels } = batch;

        // Exact storage re-accounting: subtract the decoded old
        // contributions of rebuilt/removed trees, add the new batch's.
        // Reused trees keep their (identical) contributions untouched.
        let id_bits = bits_for_node(n);
        let mut landmark_bits = self.landmark_bits.clone();
        let mut center_labels = state.center_labels.clone();
        for &c in removed.iter().chain(&rebuilt_old) {
            // An unreadable old record leaves that center's old bits
            // in place: the storage stats over-count (conservative),
            // routing is unaffected.
            if let Ok(ct) = self.center_store.center_tree(c) {
                let (_, bits, _) = index_and_bits(&ct.ert, id_bits);
                for (gid, b) in bits {
                    landmark_bits[gid as usize] -= b;
                }
            }
            center_labels.remove(&c);
        }
        for (acc, add) in landmark_bits.iter_mut().zip(&batch_bits) {
            *acc += add;
        }
        for &(c, l) in &batch_labels {
            center_labels.insert(c, l);
        }
        let max_center_label_bits = center_labels.values().copied().max().unwrap_or(0);

        let center_store = match spill {
            Some(w) => {
                // Rebuilt records are already in the file; reused ones
                // are byte-copied — the stored payload of an identical
                // tree IS the fresh encoding.
                for (ci, &c) in centers.iter().enumerate() {
                    if reused[ci] {
                        // A reused record that can no longer be read
                        // is dropped: routes through that center fall
                        // through to their next level (degraded
                        // delivery, no panic).
                        if let Ok(payload) = self.center_store.payload(c) {
                            w.write(c, &payload);
                        }
                    }
                }
                CenterStore::Spilled(w.finish())
            }
            None => {
                let mut resident: HashMap<u32, Arc<CenterTree>> = built.into_iter().collect();
                for (ci, &c) in centers.iter().enumerate() {
                    if reused[ci] {
                        // Same degradation as the spill branch: an
                        // unreadable reused tree is dropped rather
                        // than panicking the repair.
                        if let Ok(ct) = self.center_store.center_tree(c) {
                            resident.insert(c, ct);
                        }
                    }
                }
                CenterStore::Memory(resident)
            }
        };

        // ---- selective b(u, i) ---------------------------------------
        // Copy-safe iff u's distance vector is unchanged (same scope,
        // same center) AND that center's tree was reused (same search
        // levels). Everything else is re-derived, which needs a tree
        // index — rebuilt centers have one in the batch; reused ones
        // referenced by an affected pair are decoded once here.
        let reused_set: HashSet<u32> =
            centers.iter().enumerate().filter_map(|(ci, &c)| reused[ci].then_some(c)).collect();
        for (u, row) in scopes2.iter().enumerate() {
            for (i, scope) in row.iter().enumerate() {
                if scope.is_none() {
                    continue;
                }
                let c = plans[u][i].center;
                if (impact.dirty[u] || !reused_set.contains(&c)) && !bix2.contains_key(&c) {
                    if let Ok(ct) = center_store.center_tree(c) {
                        let (entry, _, _) = index_and_bits(&ct.ert, id_bits);
                        bix2.insert(c, entry);
                    }
                }
            }
        }
        let old_plans = &self.plans;
        // merge: rows concatenated in chunk (= node id) order; the
        // counters are sums, which commute.
        let b_shards = graphkit::metrics::par_chunks(n, |nodes| {
            let base = nodes.start;
            let mut out = vec![0u8; nodes.len() * k];
            let mut checked = 0usize;
            let mut violations = 0usize;
            let mut recomputed = 0usize;
            for u in nodes {
                for i in 0..k {
                    let Some(scope) = &scopes2[u][i] else { continue };
                    let c = plans[u][i].center;
                    if !impact.dirty[u] && reused_set.contains(&c) {
                        debug_assert_eq!(old_plans[u][i].center, c);
                        debug_assert_eq!(old_plans[u][i].a, plans[u][i].a);
                        out[(u - base) * k + i] = old_plans[u][i].b;
                    } else if let Some(ix) = bix2.get(&c) {
                        let (b, ch, vi) = b_for_scope(scope, ix, n, k);
                        out[(u - base) * k + i] = b;
                        checked += ch;
                        violations += vi;
                        recomputed += 1;
                    } else {
                        // Index underivable (unreadable tree record):
                        // keep the previous budget — routing stays
                        // functional with a possibly stale b(u, i).
                        out[(u - base) * k + i] = old_plans[u][i].b;
                    }
                }
            }
            (out, checked, violations, recomputed)
        });
        let mut lemma3_checked = 0usize;
        let mut lemma3_violations = 0usize;
        let mut b_recomputed = 0usize;
        let mut b_flat = Vec::with_capacity(n * k);
        for (out, checked, violations, recomputed) in b_shards {
            b_flat.extend(out);
            lemma3_checked += checked;
            lemma3_violations += violations;
            b_recomputed += recomputed;
        }
        for (u, row) in plans.iter_mut().enumerate() {
            for (i, plan) in row.iter_mut().enumerate() {
                let b = b_flat[u * k + i];
                if b != 0 {
                    plan.b = b;
                }
            }
        }
        drop(bix2);

        // ---- cover collections per dense scale -----------------------
        let mut scales: Vec<u32> =
            plans.iter().flatten().filter(|p| p.dense).map(|p| p.a).collect();
        scales.sort_unstable();
        scales.dedup();
        let changed_pairs: Vec<(NodeId, NodeId)> = {
            let mut ps: Vec<(u32, u32)> = deltas
                .iter()
                .map(|d| {
                    let (u, v) = d.endpoints();
                    (u.0.min(v.0), u.0.max(v.0))
                })
                .collect();
            ps.sort_unstable();
            ps.dedup();
            ps.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))).collect()
        };
        let mut scale_covers: HashMap<u32, ScaleCover> = HashMap::new();
        let mut scales_reused = 0usize;
        let mut scales_rebuilt = 0usize;
        let mut num_cover_trees = 0usize;
        for &s in &scales {
            // Reusable iff the extended-range member set is unchanged
            // (clean nodes keep their decomposition row; dirty ones are
            // checked explicitly) and no changed edge lies inside it —
            // then the induced subgraph, and the deterministic cover
            // construction seeded by (s, tree index), are identical.
            let reusable = self.scale_covers.contains_key(&s)
                && impact.dirty_nodes.iter().all(|&v| {
                    self.dec.in_extended_range(NodeId(v), s) == dec2.in_extended_range(NodeId(v), s)
                })
                && changed_pairs
                    .iter()
                    .all(|&(p, q)| !(dec2.in_extended_range(p, s) && dec2.in_extended_range(q, s)));
            // `remove` returning `None` despite `reusable` would mean
            // the contains_key check above regressed — fold that case
            // into the rebuild arm instead of asserting it away.
            let sc = match reusable.then(|| self.scale_covers.remove(&s)).flatten() {
                Some(sc) => {
                    scales_reused += 1;
                    sc
                }
                None => {
                    scales_rebuilt += 1;
                    build_scale_cover(&g2, &dec2, &params, s)
                }
            };
            num_cover_trees += sc.routers.len();
            scale_covers.insert(s, sc);
        }

        // ---- commit --------------------------------------------------
        let report = RepairReport {
            changed_edges: changed_pairs.len(),
            dirty_nodes: impact.dirty_nodes.len(),
            centers_total: centers.len(),
            trees_rebuilt,
            trees_reused,
            centers_added,
            centers_removed: removed.len(),
            scales_rebuilt,
            scales_reused,
            b_recomputed,
            seconds: 0.0,
        };
        self.stats.s_budgets = s_budgets;
        self.stats.num_center_trees = centers.len();
        self.stats.total_members = members.items.len();
        self.stats.lemma3_checked = lemma3_checked;
        self.stats.lemma3_violations = lemma3_violations;
        self.stats.num_scales = scale_covers.len();
        self.stats.num_cover_trees = num_cover_trees;
        // stats.phase_seconds still describes the original build; the
        // repair's own timings live in the report.
        self.g = g2;
        self.params = params;
        self.dec = dec2;
        self.hier = hier2;
        self.plans = plans;
        self.center_store = center_store;
        self.landmark_bits = landmark_bits;
        self.max_center_label_bits = max_center_label_bits;
        self.scale_covers = scale_covers;
        self.repair_state = Some(RepairState { centers, members, center_labels });
        RepairOutcome::Repaired(RepairReport { seconds: t0.elapsed().as_secs_f64(), ..report })
    }
}
